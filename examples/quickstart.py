#!/usr/bin/env python3
"""Quickstart: parse SPARQL, classify structure, run a query.

Walks through the library's layers in five minutes:

1. parse a real Wikidata example query;
2. inspect its shallow features (the paper's Table 2 measurements);
3. classify its fragment (§5.2) and shape (§6);
4. build a tiny RDF graph and evaluate queries on both engine profiles;
5. measure tree- and hypertree width of cyclic queries;
6. run the whole study through the stable ``repro.api`` facade.

Run: ``python examples/quickstart.py``
"""

from repro import (
    IRI,
    Graph,
    IndexedEngine,
    Literal,
    NestedLoopEngine,
    Triple,
    canonical_graph,
    canonical_hypergraph,
    classify_fragments,
    classify_shape,
    extract_features,
    hypertree_width,
    parse_query,
    treewidth,
)
from repro.api import analyze_corpora


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Parse the paper's running example ("Locations of archaeological
    #    sites", §3).
    # ------------------------------------------------------------------
    wikidata_query = """
    PREFIX wdt: <http://www.wikidata.org/prop/direct/>
    PREFIX wd: <http://www.wikidata.org/entity/>
    PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
    SELECT ?label ?coord ?subj
    WHERE
    { ?subj wdt:P31/wdt:P279* wd:Q839954 .
      ?subj wdt:P625 ?coord .
      ?subj rdfs:label ?label filter(lang(?label)="en")
    }
    """
    query = parse_query(wikidata_query)
    print(f"query type      : {query.query_type.value}")

    # ------------------------------------------------------------------
    # 2. Shallow features (Table 2 semantics).
    # ------------------------------------------------------------------
    features = extract_features(query)
    print(f"keywords        : {sorted(features.keywords)}")
    print(f"triples         : {features.triple_count}"
          f" (of which {features.path_pattern_count} property path)")
    print(f"uses projection : {features.uses_projection}")

    # ------------------------------------------------------------------
    # 3. Fragment + shape classification on a cyclic CQ.
    # ------------------------------------------------------------------
    cycle = parse_query(
        "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a }"
    )
    fragments = classify_fragments(cycle)
    print(f"\ncycle query is CQ={fragments.is_cq} CQF={fragments.is_cqf} "
          f"CQOF={fragments.is_cqof}")
    graph_shape = classify_shape(canonical_graph(cycle.pattern))
    print(f"shape           : cycle={graph_shape.cycle} "
          f"flower={graph_shape.flower} girth={graph_shape.shortest_cycle}")
    width = treewidth(canonical_graph(cycle.pattern))
    print(f"treewidth       : {width.width} (exact={width.exact})")

    # Predicate variables force the hypergraph view (paper Example 5.1).
    tricky = parse_query("ASK { ?x1 ?x2 ?x3 . ?x3 <urn:a> ?x4 . ?x4 ?x2 ?x5 }")
    hyper = hypertree_width(canonical_hypergraph(tricky.pattern))
    print(f"hypertree width : {hyper.width} "
          f"({hyper.node_count} decomposition nodes)")

    # ------------------------------------------------------------------
    # 4. Evaluate queries on a hand-built graph with both engines.
    # ------------------------------------------------------------------
    data = Graph()
    knows, name = IRI("urn:knows"), IRI("urn:name")
    alice, bob, carol = IRI("urn:alice"), IRI("urn:bob"), IRI("urn:carol")
    data.add(Triple(alice, knows, bob))
    data.add(Triple(bob, knows, carol))
    data.add(Triple(carol, knows, alice))
    for node, label in ((alice, "Alice"), (bob, "Bob"), (carol, "Carol")):
        data.add(Triple(node, name, Literal(label)))

    select = (
        "SELECT ?n WHERE { <urn:alice> <urn:knows>+ ?f . ?f <urn:name> ?n } "
        "ORDER BY ?n"
    )
    for engine in (IndexedEngine(data), NestedLoopEngine(data)):
        rows = engine.evaluate(select)
        names = [str(next(iter(r.values()))) for r in rows]
        print(f"\n{engine.name} engine reachable names: {names}")

    triangle = "ASK { ?x <urn:knows> ?y . ?y <urn:knows> ?z . ?z <urn:knows> ?x }"
    print(f"triangle exists : {IndexedEngine(data).evaluate(triangle)}")

    # ------------------------------------------------------------------
    # 6. The full study through the facade: one call from raw query
    #    texts to every measurement of the paper, renderable in any
    #    registered format and serializable as a JSON snapshot.
    # ------------------------------------------------------------------
    result = analyze_corpora(
        {"quickstart": [wikidata_query, select, triangle, "BROKEN {"]}
    )
    stats = result.study.datasets["quickstart"]
    print(f"\nfacade study    : {stats.total} entries -> {stats.valid} valid "
          f"-> {stats.unique} unique")
    print(f"keywords counted: {sorted(result.study.keyword_counts)}")
    print("(result.render('text'|'markdown'|'csv'|...) prints the full "
          "report; result.save(path) writes a mergeable JSON snapshot)")


if __name__ == "__main__":
    main()
