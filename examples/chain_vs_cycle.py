#!/usr/bin/env python3
"""The paper's Figure 3 experiment: chain vs cycle query workloads.

Generates a gMark-style Bib graph, builds Ask workloads of chain and
cycle conjunctive queries of growing length (the paper's W-3 … W-8),
and runs them on the two engine profiles:

* BG — indexed lookups + greedy join reordering (Blazegraph stand-in);
* PG — full-scan nested-loop joins (PostgreSQL stand-in).

Expected to reproduce the paper's findings in shape: BG beats PG
everywhere, cycles cost more than chains, and PG times out on cycles.

Run: ``python examples/chain_vs_cycle.py [nodes] [timeout_s]``
(defaults: 1500 nodes, 1.0s timeout — the paper used 100k nodes / 300s)
"""

import sys

from repro import IndexedEngine, NestedLoopEngine, bib_schema, generate_graph
from repro.reporting import render_figure3
from repro.workload import generate_workload


def main() -> None:
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    timeout = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    lengths = (3, 4, 5, 6)
    per_workload = 5

    schema = bib_schema()
    print(f"Generating Bib graph with ~{n_nodes} nodes…")
    graph = generate_graph(schema, n_nodes, seed=1)
    print(f"  {len(graph):,} triples")

    engines = {
        "BG": IndexedEngine(graph, timeout=timeout),
        "PG": NestedLoopEngine(graph, timeout=timeout),
    }

    results = []
    for length in lengths:
        for shape in ("chain", "cycle"):
            workload = generate_workload(
                schema, shape, length, per_workload, seed=length
            )
            texts = [q.text for q in workload]
            for name, engine in engines.items():
                result = engine.run_workload(texts, label=f"{shape}-W{length}")
                results.append(result)
                print(
                    f"  {shape}-W{length} on {name}: "
                    f"{result.average_elapsed * 1e3:8.1f} ms avg, "
                    f"{result.timeout_count}/{len(result.runs)} timeouts"
                )

    print()
    print(render_figure3(results))

    print("\nPaper findings to compare against:")
    print("  * BG outperforms PG on every workload")
    print("  * cycle workloads cost more than chain workloads")
    print("  * PG reaches 18-43% timeouts on cycle workloads; BG none")


if __name__ == "__main__":
    main()
