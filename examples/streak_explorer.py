#!/usr/bin/env python3
"""Streak detection (§8): how users refine queries over time.

Generates a synthetic single-day DBpedia-style log containing
"refinement sessions" — a user starts from a seed query and gradually
edits it — then detects streaks with the paper's method (window 30,
normalized Levenshtein ≤ 0.25 after prefix stripping) through the
``repro.api`` facade, and prints the Table 6 length histogram plus the
longest streak found.

The facade runs streak detection as a *sequence pass* of the sharded
pipeline (``metrics=("streaks",)``), so the same call scales to worker
pools and snapshot merging; the window-size sweep at the end uses the
low-level ``find_streaks`` scan directly to show both API levels.

Also sweeps the window size to show the paper's observation that larger
windows yield longer streaks.

Run: ``python examples/streak_explorer.py [n_queries]``
"""

import sys
from typing import Optional, Sequence

from repro import find_streaks, generate_day_log
from repro.api import analyze_corpora
from repro.reporting import render_table6_from_study


def main(argv: Optional[Sequence[str]] = None) -> None:
    argv = sys.argv[1:] if argv is None else list(argv)
    n_queries = int(argv[0]) if argv else 2000

    print(f"Generating a {n_queries}-query day log with refinement sessions…")
    log = generate_day_log(n_queries=n_queries, session_rate=0.3, seed=2016)

    print("Detecting streaks (window=30, threshold 25%)…")
    result = analyze_corpora({"day-log": log}, metrics=("streaks",))
    print(render_table6_from_study(result.study))

    accumulator = result.study.datasets["day-log"].streaks
    print("(paper's longest at w=30 was 169)")
    if accumulator.chains:
        # The accumulator keeps lean chain records (founder, span, and
        # only head-region member positions — that bound is what makes
        # it mergeable); peek into the longest retained one.
        retained = max(accumulator.chains, key=lambda chain: chain.length)
        print(f"A retained {retained.length}-member streak's first members:")
        for index in retained.head_positions[:3] or [retained.start]:
            first_line = log[index].splitlines()[0]
            print(f"  [{index}] {first_line[:70]}")

    print("\nWindow-size sweep (paper: larger windows → longer streaks):")
    print(f"{'window':>7} {'#streaks':>9} {'longest':>8}")
    for window in (5, 15, 30, 60, 120):
        swept = find_streaks(log, window=window)
        longest_length = max((s.length for s in swept), default=0)
        print(f"{window:>7} {len(swept):>9} {longest_length:>8}")


if __name__ == "__main__":
    main()
