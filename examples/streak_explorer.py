#!/usr/bin/env python3
"""Streak detection (§8): how users refine queries over time.

Generates a synthetic single-day DBpedia-style log containing
"refinement sessions" — a user starts from a seed query and gradually
edits it — then detects streaks with the paper's method (window 30,
normalized Levenshtein ≤ 0.25 after prefix stripping) and prints the
Table 6 length histogram plus the longest streak found.

Also sweeps the window size to show the paper's observation that larger
windows yield longer streaks.

Run: ``python examples/streak_explorer.py [n_queries]``
"""

import sys

from repro import find_streaks, generate_day_log
from repro.analysis import streak_length_histogram
from repro.reporting import render_table6


def main() -> None:
    n_queries = int(sys.argv[1]) if len(sys.argv) > 1 else 2000

    print(f"Generating a {n_queries}-query day log with refinement sessions…")
    log = generate_day_log(n_queries=n_queries, session_rate=0.3, seed=2016)

    print("Detecting streaks (window=30, threshold 25%)…")
    streaks = find_streaks(log, window=30)
    histogram = streak_length_histogram(streaks)
    print(render_table6({"day-log": histogram}))

    longest = max(streaks, key=lambda s: s.length)
    print(f"\nLongest streak: {longest.length} queries "
          f"(paper's longest at w=30 was 169)")
    print("Its first three members:")
    for index in longest.indices[:3]:
        first_line = log[index].splitlines()[0]
        print(f"  [{index}] {first_line[:70]}")

    print("\nWindow-size sweep (paper: larger windows → longer streaks):")
    print(f"{'window':>7} {'#streaks':>9} {'longest':>8}")
    for window in (5, 15, 30, 60, 120):
        swept = find_streaks(log, window=window)
        longest_length = max((s.length for s in swept), default=0)
        print(f"{window:>7} {len(swept):>9} {longest_length:>8}")


if __name__ == "__main__":
    main()
