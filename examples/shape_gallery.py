#!/usr/bin/env python3
"""Shape gallery: the paper's Table 4 taxonomy on concrete queries.

Builds one example query per shape class — single edge, chain, chain
set, star, tree, forest, cycle, petal, flower, flower set — classifies
each, and prints the full membership matrix, illustrating why the
paper's rows are *cumulative* (a chain is also a tree, a forest, and a
flower set).  Finishes with the paper's Figure 7 treewidth-3 outlier.

Run: ``python examples/shape_gallery.py``
"""

from repro import canonical_graph, classify_shape, parse_query, treewidth
from repro.analysis.shapes import SHAPE_ORDER

GALLERY = {
    "single edge": "ASK { ?a <urn:p> ?b }",
    "chain": "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?d }",
    "chain set": "ASK { ?a <urn:p> ?b . ?x <urn:q> ?y }",
    "star": "ASK { ?x <urn:p> ?a . ?x <urn:q> ?b . ?x <urn:r> ?c }",
    "tree": (
        "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?b <urn:r> ?d . "
        "?d <urn:s> ?e . ?d <urn:t> ?f }"
    ),
    "forest": (
        "ASK { ?x <urn:p> ?a . ?x <urn:q> ?b . ?x <urn:r> ?c . "
        "?m <urn:s> ?n . ?n <urn:t> ?o }"
    ),
    "cycle": "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a }",
    "petal": (
        "ASK { ?s <urn:p> ?m1 . ?m1 <urn:q> ?t . "
        "?s <urn:r> ?m2 . ?m2 <urn:s> ?t . ?s <urn:t> ?t }"
    ),
    "flower": (
        # A core with two petals and two stamens, like the paper's
        # Figure 6 DBpedia query.
        "ASK { ?core <urn:a> ?p1 . ?p1 <urn:b> ?p2 . ?p2 <urn:c> ?core . "
        "?core <urn:d> ?q1 . ?q1 <urn:e> ?q2 . ?q2 <urn:f> ?core . "
        "?core <urn:g> ?s1 . ?core <urn:h> ?s2 }"
    ),
    "flower set": (
        "ASK { ?core <urn:a> ?p1 . ?p1 <urn:b> ?p2 . ?p2 <urn:c> ?core . "
        "?other <urn:x> ?leaf }"
    ),
}

#: The paper's Figure 7: the single treewidth-3 query in 39M.
FIGURE7 = """
ASK {
  ?subject <urn:nationality> ?nationality .
  ?subject <urn:birthPlace> ?birthPlace .
  ?subject <urn:genre> ?genre .
  ?object <urn:nationality> ?nationality .
  ?object <urn:birthPlace> ?birthPlace .
  ?object <urn:genre> ?genre .
  ?nationality <urn:rel> ?birthPlace .
  ?birthPlace <urn:rel> ?genre .
  ?genre <urn:rel> ?nationality .
}
"""


def main() -> None:
    header = f"{'query shape':<12} | " + " ".join(
        f"{name[:6]:>6}" for name in SHAPE_ORDER
    ) + " |  tw"
    print(header)
    print("-" * len(header))
    for label, text in GALLERY.items():
        graph = canonical_graph(parse_query(text).pattern)
        profile = classify_shape(graph)
        memberships = profile.as_dict()
        row = " ".join(
            f"{'x' if memberships[name] else '·':>6}" for name in SHAPE_ORDER
        )
        width = treewidth(graph).width
        print(f"{label:<12} | {row} | {width:>3}")

    print("\nThe paper's treewidth-3 outlier (Figure 7):")
    graph = canonical_graph(parse_query(FIGURE7).pattern)
    result = treewidth(graph)
    profile = classify_shape(graph)
    print(f"  treewidth = {result.width} (exact={result.exact}); "
          f"flower set = {profile.flower_set}")


if __name__ == "__main__":
    main()
