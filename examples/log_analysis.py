#!/usr/bin/env python3
"""End-to-end log analysis: the paper's full study on a mini corpus.

Generates a scaled-down synthetic corpus calibrated to the paper's 13
query logs, pushes it through the clean → parse → dedup pipeline (§2),
runs every analysis, and prints the paper-style tables: Table 1
(corpus sizes), Table 2 (keywords), Figure 1 (triple counts), Table 3
(operator sets), §4.4 (projection), §5.2 (fragments), Table 4 (shapes),
Table 5 (property paths).

Run: ``python examples/log_analysis.py [scale]``
(default scale 1e-5 ≈ 1,800 queries; try 1e-4 for a 10x larger corpus)
"""

import sys
import time

from repro import build_query_log, generate_corpus, study_corpus
from repro.reporting import (
    render_figure1,
    render_figure5,
    render_fragments,
    render_hypertree,
    render_projection,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1e-5
    started = time.monotonic()

    print(f"Generating corpus at scale {scale:g} of the paper's 180.7M queries…")
    corpus = generate_corpus(scale=scale, seed=2017)
    total_entries = sum(len(entries) for entries in corpus.values())
    print(f"  {total_entries:,} raw log entries across {len(corpus)} datasets")

    print("Running the clean/parse/dedup pipeline (paper §2)…")
    logs = {
        name: build_query_log(name, entries) for name, entries in corpus.items()
    }

    print("Running all analyses on the Unique corpus…\n")
    study = study_corpus(logs, dedup=True)

    for block in (
        render_table1(logs),
        render_table2(study),
        render_figure1(study),
        render_table3(study),
        render_projection(study),
        render_fragments(study),
        render_figure5(study),
        render_table4(study),
        render_hypertree(study),
        render_table5(study),
    ):
        print(block)
        print()

    elapsed = time.monotonic() - started
    print(f"Complete study of {study.query_count:,} unique queries "
          f"in {elapsed:.1f}s.")


if __name__ == "__main__":
    main()
