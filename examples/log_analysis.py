#!/usr/bin/env python3
"""End-to-end log analysis through the stable ``repro.api`` facade.

Generates a scaled-down synthetic corpus calibrated to the paper's 13
query logs, runs the full study (ingestion → analyzer passes →
`CorpusStudy`) in one `analyze_corpora` call, prints the paper-style
report, and demonstrates the snapshot round trip: the study is saved
as versioned JSON, reloaded, and re-rendered byte-identically —
exactly what `repro analyze --save-study` / `repro merge` /
`repro report` do across machines.

Run: ``python examples/log_analysis.py [scale]``
(default scale 1e-5 ≈ 1,800 queries; try 1e-4 for a 10x larger corpus)
"""

import sys
import tempfile
import time
from pathlib import Path

from repro import generate_corpus
from repro.api import analyze_corpora, load_study
from repro.reporting import render_report


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1e-5
    started = time.monotonic()

    print(f"Generating corpus at scale {scale:g} of the paper's 180.7M queries…")
    corpus = generate_corpus(scale=scale, seed=2017)
    total_entries = sum(len(entries) for entries in corpus.values())
    print(f"  {total_entries:,} raw log entries across {len(corpus)} datasets")

    print("Running pipeline + all analyses on the Unique corpus…\n")
    result = analyze_corpora(corpus, dedup=True)

    # The text report: Table 1 through Table 5, byte-identical to
    # `repro analyze`.  Try "markdown", "csv", "json", or "jsonl" too.
    print(result.render("text"))
    print()

    if not result.caveats.clean:
        print(f"coverage caveats: {result.caveats}")

    # Snapshot round trip: save → load → identical study, identical bytes.
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "study.json"
        result.save(snapshot)
        reloaded = load_study(snapshot)
        assert reloaded == result.study
        assert result.render("text") == render_report(reloaded, "text")
        print(f"snapshot round trip OK ({snapshot.stat().st_size:,} bytes of JSON)")

    elapsed = time.monotonic() - started
    print(f"Complete study of {result.study.query_count:,} unique queries "
          f"in {elapsed:.1f}s.")


if __name__ == "__main__":
    main()
