"""Persistent study warehouse: durable, queryable study analytics.

The snapshot codec (:mod:`repro.analysis.snapshot`) made studies
portable; this package makes them *durable and servable*.  A
:class:`StudyWarehouse` is a SQLite file you append study snapshots to
(``repro warehouse ingest`` — an upsert through
:meth:`~repro.analysis.study.CorpusStudy.merge`, idempotent per
snapshot) and query without re-running any analysis: per-dataset
stats, every table cell of the paper, streak histograms, coverage
caveats, and FTS5 full-text search over the query texts the studies
carry.  :mod:`repro.warehouse.service` serves the same warehouse over
HTTP (``repro serve``) with paginated JSON endpoints, rendering
reports through the reporter registry so a warehouse-served report is
byte-identical to ``repro report`` on the equivalently merged
snapshot.
"""

from .store import WAREHOUSE_SCHEMA_VERSION, StudyWarehouse, TABLE_SECTIONS

__all__ = [
    "WAREHOUSE_SCHEMA_VERSION",
    "StudyWarehouse",
    "TABLE_SECTIONS",
]
