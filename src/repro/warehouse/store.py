"""The SQLite-backed study warehouse.

Storage layout (one file, WAL journal, ``synchronous=NORMAL``,
schema-versioned via ``PRAGMA user_version`` — the same pragma idiom
as :mod:`repro.analysis.structure_store`):

* ``meta`` — key/value header: the warehouse kind tag, the corpus
  flavour, the ingest generation counter, the FTS mode.
* ``ingests`` — the append ledger: one row per distinct snapshot
  digest ever merged.  Re-ingesting a byte-equivalent snapshot hits
  the digest and is a no-op, which is what makes ``ingest`` idempotent.
* ``study`` — the merged study's versioned snapshot document (the
  same codec ``save_study`` writes), the warehouse's source of truth:
  reports render from it through the reporter registry, byte-identical
  to ``repro report`` over the equivalently merged snapshot.
* ``datasets`` / ``cells`` / ``streaks`` / ``caveats`` — indexed
  derived tables, rebuilt transactionally at each ingest: per-dataset
  pipeline counters, every measurement cell of the paper's tables in
  the long format of :func:`repro.reporting.reporters.study_long_rows`,
  streak-length histograms, and coverage-caveat counters.  Queries
  over these never touch the study document, let alone re-run any
  analysis.
* ``query_texts`` (+ ``query_fts``, FTS5) — the query texts a study
  carries (non-Ctract property-path samples, streak head/tail texts),
  full-text indexed for ``/search``.

Unlike the structure store — an expendable cache that degrades to a
cold run — the warehouse is *data*: every failure (corrupt file,
foreign or future schema, incompatible ingest) raises a typed
:class:`~repro.exceptions.WarehouseError` naming the problem, and a
failed ingest rolls back, leaving the previous state intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..analysis.snapshot import study_from_dict, study_to_dict
from ..analysis.study import CorpusStudy
from ..exceptions import StudySnapshotError, WarehouseError
from ..reporting.reporters import render_report, study_long_rows
from ..reporting.tables import (
    render_table1_from_study,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6_from_study,
)

__all__ = [
    "TABLE_SECTIONS",
    "WAREHOUSE_KIND",
    "WAREHOUSE_SCHEMA_VERSION",
    "StudyWarehouse",
    "snapshot_digest",
]

#: The ``meta.kind`` tag every warehouse carries; a SQLite file
#: without it is some other application's database, not ours.
WAREHOUSE_KIND = "repro.study_warehouse"

#: Each entry migrates the schema one version forward; entry ``i``
#: brings ``user_version`` ``i`` to ``i + 1``.  Append — never edit —
#: to evolve the schema: existing warehouses replay only the suffix.
_MIGRATIONS: List[List[str]] = [
    # 0 -> 1: the initial layout.
    [
        "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)",
        """
        CREATE TABLE ingests (
            seq INTEGER PRIMARY KEY,
            digest TEXT NOT NULL UNIQUE,
            source TEXT NOT NULL,
            datasets TEXT NOT NULL,
            queries INTEGER NOT NULL
        )
        """,
        "CREATE TABLE study (id INTEGER PRIMARY KEY CHECK (id = 1), body TEXT NOT NULL)",
        """
        CREATE TABLE datasets (
            name TEXT PRIMARY KEY,
            total INTEGER NOT NULL,
            valid INTEGER NOT NULL,
            unique_queries INTEGER NOT NULL,
            analyzed INTEGER NOT NULL,
            select_ask INTEGER NOT NULL,
            triple_sum INTEGER NOT NULL,
            streak_count INTEGER,
            longest_streak INTEGER
        )
        """,
        """
        CREATE TABLE cells (
            section TEXT NOT NULL,
            row TEXT NOT NULL,
            col TEXT NOT NULL,
            value TEXT NOT NULL,
            PRIMARY KEY (section, row, col)
        ) WITHOUT ROWID
        """,
        # Keeps its implicit rowid: histogram buckets render in
        # insertion order, and rowid is the cheapest way to keep it.
        """
        CREATE TABLE streaks (
            dataset TEXT NOT NULL,
            bucket TEXT NOT NULL,
            count INTEGER NOT NULL,
            UNIQUE (dataset, bucket)
        )
        """,
        "CREATE TABLE caveats (name TEXT PRIMARY KEY, dropped INTEGER NOT NULL)",
        """
        CREATE TABLE query_texts (
            id INTEGER PRIMARY KEY,
            dataset TEXT NOT NULL,
            kind TEXT NOT NULL,
            text TEXT NOT NULL,
            UNIQUE (dataset, kind, text)
        )
        """,
    ],
]

#: Version of the current schema, recorded in ``PRAGMA user_version``.
WAREHOUSE_SCHEMA_VERSION = len(_MIGRATIONS)

#: The paper's table numbers mapped to the cell sections that hold
#: their measurements (Table 4 repeats per fragment).
TABLE_SECTIONS: Dict[int, Tuple[str, ...]] = {
    1: ("table1",),
    2: ("table2",),
    3: ("table3",),
    4: ("table4:CQ", "table4:CQF", "table4:CQOF"),
    5: ("table5",),
    6: ("table6",),
}

#: Text renderers for the same table numbers (blocks of the full text
#: report, so a served table is a byte-exact slice of ``repro report``).
_TABLE_RENDERERS = {
    1: render_table1_from_study,
    2: render_table2,
    3: render_table3,
    4: render_table4,
    5: render_table5,
    6: render_table6_from_study,
}

#: Seconds SQLite waits on a locked database before giving up (the
#: service reads while an ingest writes; WAL keeps both moving).
_BUSY_TIMEOUT = 30.0


def snapshot_digest(data: Dict[str, Any]) -> str:
    """Content digest of a study snapshot document (the ingest key).

    Computed over the compact canonical JSON of the snapshot dict —
    byte-equivalent studies (same counters, same insertion order)
    digest equal no matter which file or machine they came from.
    """
    canonical = json.dumps(data, separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _texts_of(study: CorpusStudy) -> List[Tuple[str, str, str]]:
    """The query texts a study carries, as (dataset, kind, text) rows.

    Snapshots do not retain the raw corpus (by design — studies are
    aggregates), but two measurements keep verbatim query text: the
    Table 5 non-Ctract sample and the streak accumulator's head/tail
    texts.  Those are what ``/search`` indexes.
    """
    rows: List[Tuple[str, str, str]] = []
    for text in study.non_ctract:
        rows.append(("", "non_ctract", text))
    for name, stats in study.datasets.items():
        if stats.streaks is None:
            continue
        for text in stats.streaks.head:
            rows.append((name, "streak_head", text))
        for chain in stats.streaks.chains:
            rows.append((name, "streak_tail", chain.tail))
    return rows


class StudyWarehouse:
    """One open study-warehouse database file.

    Construct via :meth:`open`; usable as a context manager.  All
    methods raise :class:`~repro.exceptions.WarehouseError` on
    warehouse-level problems — never a bare ``sqlite3`` error.
    """

    def __init__(self, connection: sqlite3.Connection, path: str, readonly: bool) -> None:
        self._connection = connection
        self.path = path
        self.readonly = readonly
        #: Parsed-study cache, keyed by the ingest generation.
        self._study_cache: Optional[Tuple[int, CorpusStudy]] = None

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def open(
        cls, path: Union[str, Path], *, readonly: bool = False
    ) -> "StudyWarehouse":
        """Open (and, writable, create/migrate) the warehouse at *path*.

        Read-only handles require an existing, initialized warehouse.
        Raises :class:`~repro.exceptions.WarehouseError` when the file
        is not a study warehouse: corrupt, foreign, or written by a
        newer schema than this build knows.
        """
        resolved = str(path)
        try:
            if readonly:
                if not Path(resolved).exists():
                    raise WarehouseError(f"{resolved}: no such warehouse")
                uri = f"file:{Path(resolved).resolve().as_posix()}?mode=ro"
                # The HTTP service shares one read-only handle across
                # request threads, serialized by its own lock.
                connection = sqlite3.connect(
                    uri, uri=True, timeout=_BUSY_TIMEOUT, check_same_thread=False
                )
            else:
                connection = sqlite3.connect(resolved, timeout=_BUSY_TIMEOUT)
        except sqlite3.Error as error:
            raise WarehouseError(f"{resolved}: cannot open ({error})") from error
        try:
            if not readonly:
                connection.execute("PRAGMA journal_mode=WAL")
                connection.execute("PRAGMA synchronous=NORMAL")
            version = connection.execute("PRAGMA user_version").fetchone()[0]
            has_tables = (
                connection.execute(
                    "SELECT name FROM sqlite_master"
                    " WHERE type = 'table' AND name = 'meta'"
                ).fetchone()
                is not None
            )
            if version == 0 and not has_tables:
                if (
                    connection.execute(
                        "SELECT name FROM sqlite_master WHERE type = 'table'"
                    ).fetchone()
                    is not None
                ):
                    raise WarehouseError(
                        f"{resolved}: not a study warehouse "
                        "(a foreign SQLite database)"
                    )
                if readonly:
                    raise WarehouseError(f"{resolved}: warehouse is not initialized")
            elif version > WAREHOUSE_SCHEMA_VERSION or not has_tables:
                raise WarehouseError(
                    f"{resolved}: unsupported warehouse schema {version} "
                    f"(this build reads versions 1..{WAREHOUSE_SCHEMA_VERSION})"
                )
            if not readonly:
                cls._migrate(connection, version)
            kind_row = connection.execute(
                "SELECT value FROM meta WHERE key = 'kind'"
            ).fetchone()
            if kind_row is None or kind_row[0] != WAREHOUSE_KIND:
                raise WarehouseError(
                    f"{resolved}: not a study warehouse "
                    f"(kind {kind_row[0] if kind_row else None!r})"
                )
        except sqlite3.Error as error:
            connection.close()
            raise WarehouseError(
                f"{resolved}: not a usable warehouse ({error})"
            ) from error
        except WarehouseError:
            connection.close()
            raise
        return cls(connection, resolved, readonly)

    @classmethod
    def _migrate(cls, connection: sqlite3.Connection, version: int) -> None:
        """Replay the migration suffix from *version* to current."""
        for target, statements in enumerate(_MIGRATIONS[version:], start=version + 1):
            with connection:
                for statement in statements:
                    connection.execute(statement)
                connection.execute(f"PRAGMA user_version = {target}")
        if version == 0:
            with connection:
                fts = "fts5"
                try:
                    connection.execute(
                        "CREATE VIRTUAL TABLE query_fts USING fts5("
                        "text, content='query_texts', content_rowid='id')"
                    )
                except sqlite3.OperationalError:  # pragma: no cover - no FTS5
                    fts = "like"
                connection.executemany(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    [("kind", WAREHOUSE_KIND), ("generation", "0"), ("fts", fts)],
                )

    def close(self) -> None:
        """Close the database handle (idempotent)."""
        try:
            self._connection.close()
        except sqlite3.Error:  # pragma: no cover - close never fails in practice
            pass

    def __enter__(self) -> "StudyWarehouse":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- small helpers --------------------------------------------------

    def _meta(self, key: str, default: Optional[str] = None) -> Optional[str]:
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else row[0]

    @property
    def generation(self) -> int:
        """Number of state-changing ingests so far (cache key)."""
        return int(self._meta("generation", "0"))

    def _guard(self, error: sqlite3.Error) -> "WarehouseError":
        return WarehouseError(f"{self.path}: warehouse query failed ({error})")

    # -- ingest ---------------------------------------------------------

    def ingest(self, study: CorpusStudy, *, source: str = "<memory>") -> str:
        """Merge *study* into the warehouse; returns ``"merged"`` or
        ``"unchanged"``.

        The upsert is :meth:`CorpusStudy.merge`, so
        ``ingest(a); ingest(b)`` leaves exactly the state of
        ``ingest(merge(a, b))``, and re-ingesting a byte-equivalent
        snapshot (same content digest) is a no-op — shard files can be
        re-shipped safely.  Everything — ledger row, study document,
        derived tables, FTS index — commits in one transaction;
        incompatible studies (corpus flavour, streak parameters) raise
        :class:`~repro.exceptions.WarehouseError` before anything is
        written.
        """
        if self.readonly:
            raise WarehouseError(f"{self.path}: warehouse opened read-only")
        incoming = study_to_dict(study)
        digest = snapshot_digest(incoming)
        try:
            known = self._connection.execute(
                "SELECT 1 FROM ingests WHERE digest = ?", (digest,)
            ).fetchone()
        except sqlite3.Error as error:
            raise self._guard(error) from error
        if known is not None:
            return "unchanged"
        current = self.study()
        # Merge a *copy* (dict round trip): CorpusStudy.merge mutates
        # the left side, and the caller keeps ownership of `study`.
        incoming_study = study_from_dict(incoming)
        if current is None:
            merged = incoming_study
        else:
            try:
                merged = current.merge(incoming_study)
            except ValueError as error:
                raise WarehouseError(
                    f"cannot ingest {source}: {error}"
                ) from error
        body = json.dumps(study_to_dict(merged), indent=2)
        try:
            with self._connection:
                self._connection.execute(
                    "INSERT INTO ingests (digest, source, datasets, queries)"
                    " VALUES (?, ?, ?, ?)",
                    (
                        digest,
                        source,
                        json.dumps(list(study.datasets)),
                        study.query_count,
                    ),
                )
                self._connection.execute(
                    "INSERT OR REPLACE INTO study (id, body) VALUES (1, ?)", (body,)
                )
                self._rebuild_derived(merged)
                self._connection.execute(
                    "UPDATE meta SET value = ? WHERE key = 'generation'",
                    (str(self.generation + 1),),
                )
        except sqlite3.Error as error:
            raise self._guard(error) from error
        self._study_cache = None
        return "merged"

    def _rebuild_derived(self, study: CorpusStudy) -> None:
        """Rebuild the indexed derived tables from *study* (caller holds
        the transaction)."""
        connection = self._connection
        for table in ("datasets", "cells", "streaks", "caveats", "query_texts"):
            connection.execute(f"DELETE FROM {table}")
        connection.executemany(
            "INSERT INTO datasets (name, total, valid, unique_queries,"
            " analyzed, select_ask, triple_sum, streak_count, longest_streak)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    name,
                    stats.total,
                    stats.valid,
                    stats.unique,
                    stats.queries,
                    stats.select_ask,
                    stats.triple_sum,
                    None if stats.streaks is None else stats.streaks.streak_count,
                    None if stats.streaks is None else stats.streaks.longest,
                )
                for name, stats in study.datasets.items()
            ],
        )
        connection.executemany(
            "INSERT OR REPLACE INTO cells (section, row, col, value)"
            " VALUES (?, ?, ?, ?)",
            study_long_rows(study),
        )
        connection.executemany(
            "INSERT INTO streaks (dataset, bucket, count) VALUES (?, ?, ?)",
            [
                (name, bucket, count)
                for name, histogram in study.streak_histograms().items()
                for bucket, count in histogram.items()
            ],
        )
        connection.executemany(
            "INSERT INTO caveats (name, dropped) VALUES (?, ?)",
            [
                ("shape_limit_skipped", study.shape_limit_skipped),
                ("non_ctract_truncated", study.non_ctract_truncated),
            ],
        )
        connection.executemany(
            "INSERT OR IGNORE INTO query_texts (dataset, kind, text)"
            " VALUES (?, ?, ?)",
            _texts_of(study),
        )
        if self._meta("fts") == "fts5":
            connection.execute(
                "INSERT INTO query_fts(query_fts) VALUES ('rebuild')"
            )

    # -- the merged study -----------------------------------------------

    def study(self) -> Optional[CorpusStudy]:
        """The merged study, or ``None`` for an empty warehouse.

        Parsed from the stored snapshot document and cached per ingest
        generation, so repeated renders don't re-decode."""
        generation = self.generation
        if self._study_cache is not None and self._study_cache[0] == generation:
            return self._study_cache[1]
        try:
            row = self._connection.execute(
                "SELECT body FROM study WHERE id = 1"
            ).fetchone()
        except sqlite3.Error as error:
            raise self._guard(error) from error
        if row is None:
            return None
        try:
            study = study_from_dict(json.loads(row[0]))
        except (StudySnapshotError, json.JSONDecodeError) as error:
            raise WarehouseError(
                f"{self.path}: stored study document is unreadable ({error})"
            ) from error
        self._study_cache = (generation, study)
        return study

    def _require_study(self) -> CorpusStudy:
        study = self.study()
        if study is None:
            raise WarehouseError(
                f"{self.path}: warehouse is empty (nothing ingested yet)"
            )
        return study

    def render(self, format: str = "text") -> str:
        """The full report in *format*, through the reporter registry.

        Byte-identical to ``repro report`` over the equivalently merged
        snapshot — the warehouse stores exactly that snapshot."""
        return render_report(self._require_study(), format)

    def table_text(self, table: int) -> str:
        """Table *table* (1–6) as its text-report block.

        The block is a byte-exact slice of the full text report (same
        renderer, same study)."""
        renderer = _TABLE_RENDERERS.get(table)
        if renderer is None:
            raise WarehouseError(f"no such table {table} (the paper has tables 1-6)")
        block = renderer(self._require_study())
        if block is None:
            raise WarehouseError(
                "table 6 has no data: no ingested study ran the streaks metric"
            )
        return block

    # -- indexed queries ------------------------------------------------

    def datasets(
        self, *, limit: int = 50, offset: int = 0
    ) -> Tuple[int, List[Dict[str, Any]]]:
        """Per-dataset pipeline counters, paginated (total, items)."""
        try:
            total = self._connection.execute(
                "SELECT COUNT(*) FROM datasets"
            ).fetchone()[0]
            rows = self._connection.execute(
                "SELECT name, total, valid, unique_queries, analyzed,"
                " select_ask, triple_sum, streak_count, longest_streak"
                " FROM datasets ORDER BY rowid LIMIT ? OFFSET ?",
                (limit, offset),
            ).fetchall()
        except sqlite3.Error as error:
            raise self._guard(error) from error
        items = [
            {
                "name": name,
                "total": total_q,
                "valid": valid,
                "unique": unique,
                "analyzed": analyzed,
                "select_ask": select_ask,
                "triple_sum": triple_sum,
                "streak_count": streak_count,
                "longest_streak": longest_streak,
            }
            for (
                name,
                total_q,
                valid,
                unique,
                analyzed,
                select_ask,
                triple_sum,
                streak_count,
                longest_streak,
            ) in rows
        ]
        return total, items

    def dataset(self, name: str) -> Optional[Dict[str, Any]]:
        """One dataset's row, or ``None`` when unknown."""
        _, items = self.datasets(limit=1_000_000, offset=0)
        for item in items:
            if item["name"] == name:
                return item
        return None

    def table_cells(
        self,
        table: int,
        *,
        dataset: Optional[str] = None,
        limit: int = 50,
        offset: int = 0,
    ) -> Tuple[int, List[Dict[str, str]]]:
        """Table *table*'s measurement cells, paginated (total, items).

        Tables 1 and 6 are per-dataset and can be scoped with
        *dataset*; tables 2–5 are corpus-wide (the scope is ignored
        beyond validating the dataset exists — callers do that)."""
        sections = TABLE_SECTIONS.get(table)
        if sections is None:
            raise WarehouseError(f"no such table {table} (the paper has tables 1-6)")
        where = f"section IN ({', '.join('?' for _ in sections)})"
        arguments: List[Any] = list(sections)
        if dataset is not None and table == 1:
            where += " AND row = ?"
            arguments.append(dataset)
        elif dataset is not None and table == 6:
            where += " AND col = ?"
            arguments.append(dataset)
        try:
            total = self._connection.execute(
                f"SELECT COUNT(*) FROM cells WHERE {where}", arguments
            ).fetchone()[0]
            rows = self._connection.execute(
                f"SELECT section, row, col, value FROM cells WHERE {where}"
                " ORDER BY section, row, col LIMIT ? OFFSET ?",
                [*arguments, limit, offset],
            ).fetchall()
        except sqlite3.Error as error:
            raise self._guard(error) from error
        items = [
            {"section": section, "row": row, "column": col, "value": value}
            for section, row, col, value in rows
        ]
        return total, items

    def section_cells(
        self, section: str, *, limit: int = 50, offset: int = 0
    ) -> Tuple[int, List[Dict[str, str]]]:
        """All cells of one long-format *section* (e.g. ``figure1``)."""
        try:
            total = self._connection.execute(
                "SELECT COUNT(*) FROM cells WHERE section = ?", (section,)
            ).fetchone()[0]
            rows = self._connection.execute(
                "SELECT section, row, col, value FROM cells WHERE section = ?"
                " ORDER BY row, col LIMIT ? OFFSET ?",
                (section, limit, offset),
            ).fetchall()
        except sqlite3.Error as error:
            raise self._guard(error) from error
        items = [
            {"section": sec, "row": row, "column": col, "value": value}
            for sec, row, col, value in rows
        ]
        return total, items

    def streak_histograms(
        self, *, limit: int = 50, offset: int = 0
    ) -> Tuple[int, List[Dict[str, Any]]]:
        """Per-dataset streak digests, paginated (total, items)."""
        try:
            total = self._connection.execute(
                "SELECT COUNT(*) FROM datasets WHERE streak_count IS NOT NULL"
            ).fetchone()[0]
            names = self._connection.execute(
                "SELECT name, streak_count, longest_streak FROM datasets"
                " WHERE streak_count IS NOT NULL"
                " ORDER BY rowid LIMIT ? OFFSET ?",
                (limit, offset),
            ).fetchall()
            items = []
            for name, count, longest in names:
                histogram = {
                    bucket: bucket_count
                    for bucket, bucket_count in self._connection.execute(
                        "SELECT bucket, count FROM streaks WHERE dataset = ?"
                        " ORDER BY rowid",
                        (name,),
                    )
                }
                items.append(
                    {
                        "dataset": name,
                        "streak_count": count,
                        "longest": longest,
                        "histogram": histogram,
                    }
                )
        except sqlite3.Error as error:
            raise self._guard(error) from error
        return total, items

    def caveats(self) -> Dict[str, int]:
        """Coverage-caveat counters (both zero on clean corpora)."""
        try:
            rows = self._connection.execute(
                "SELECT name, dropped FROM caveats ORDER BY name"
            ).fetchall()
        except sqlite3.Error as error:
            raise self._guard(error) from error
        return {name: dropped for name, dropped in rows}

    def search(
        self, query: str, *, limit: int = 50, offset: int = 0
    ) -> Tuple[int, List[Dict[str, str]]]:
        """Full-text search over the indexed query texts.

        Uses FTS5 ``MATCH`` (phrase/boolean syntax supported) when the
        warehouse was built with FTS5, a plain substring scan
        otherwise.  A syntactically invalid FTS expression raises
        :class:`~repro.exceptions.WarehouseError`."""
        if not query.strip():
            raise WarehouseError("empty search query")
        if self._meta("fts") == "fts5":
            try:
                total = self._connection.execute(
                    "SELECT COUNT(*) FROM query_fts WHERE query_fts MATCH ?",
                    (query,),
                ).fetchone()[0]
                rows = self._connection.execute(
                    "SELECT q.dataset, q.kind, q.text"
                    " FROM query_fts f JOIN query_texts q ON q.id = f.rowid"
                    " WHERE query_fts MATCH ? ORDER BY rank, q.id"
                    " LIMIT ? OFFSET ?",
                    (query, limit, offset),
                ).fetchall()
            except sqlite3.OperationalError as error:
                raise WarehouseError(
                    f"invalid search query {query!r} ({error})"
                ) from error
            except sqlite3.Error as error:
                raise self._guard(error) from error
        else:  # pragma: no cover - builds without FTS5
            escaped = (
                query.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
            )
            pattern = f"%{escaped}%"
            try:
                total = self._connection.execute(
                    "SELECT COUNT(*) FROM query_texts"
                    " WHERE text LIKE ? ESCAPE '\\'",
                    (pattern,),
                ).fetchone()[0]
                rows = self._connection.execute(
                    "SELECT dataset, kind, text FROM query_texts"
                    " WHERE text LIKE ? ESCAPE '\\' ORDER BY id"
                    " LIMIT ? OFFSET ?",
                    (pattern, limit, offset),
                ).fetchall()
            except sqlite3.Error as error:
                raise self._guard(error) from error
        items = [
            {"dataset": dataset, "kind": kind, "text": text}
            for dataset, kind, text in rows
        ]
        return total, items

    # -- introspection --------------------------------------------------

    def ingest_log(self) -> List[Dict[str, Any]]:
        """The append ledger: every distinct snapshot ever merged."""
        try:
            rows = self._connection.execute(
                "SELECT seq, digest, source, datasets, queries"
                " FROM ingests ORDER BY seq"
            ).fetchall()
        except sqlite3.Error as error:
            raise self._guard(error) from error
        return [
            {
                "seq": seq,
                "digest": digest,
                "source": source,
                "datasets": json.loads(datasets),
                "queries": queries,
            }
            for seq, digest, source, datasets, queries in rows
        ]

    def stats(self) -> Dict[str, Any]:
        """Warehouse-level facts for ``repro warehouse stats``."""
        try:
            counts = {
                table: self._connection.execute(
                    f"SELECT COUNT(*) FROM {table}"
                ).fetchone()[0]
                for table in ("ingests", "datasets", "cells", "query_texts")
            }
        except sqlite3.Error as error:
            raise self._guard(error) from error
        study = self.study()
        try:
            size = os.path.getsize(self.path)
        except OSError:  # pragma: no cover - file vanished mid-run
            size = 0
        return {
            "path": self.path,
            "warehouse_schema": WAREHOUSE_SCHEMA_VERSION,
            "generation": self.generation,
            "fts": self._meta("fts", "like"),
            "corpus": (
                None if study is None else ("Unique" if study.dedup else "Valid")
            ),
            "ingests": counts["ingests"],
            "datasets": counts["datasets"],
            "cells": counts["cells"],
            "query_texts": counts["query_texts"],
            "size_bytes": size,
        }
