"""Stdlib-only HTTP query/report service over a study warehouse.

``repro serve WAREHOUSE`` binds a :class:`WarehouseServer` — a
threading :mod:`http.server` over one read-only
:class:`~repro.warehouse.store.StudyWarehouse` handle (requests
serialize on a lock; SQLite's WAL keeps concurrent ingests from a
separate process safe) — and answers GET requests with paginated JSON:

========================================  =================================
``/``                                     service index (endpoints, facts)
``/datasets``                             per-dataset pipeline counters
``/datasets/{name}``                      one dataset's counters
``/datasets/{name}/tables/{1..6}``        table cells, dataset-scoped
``/tables/{1..6}``                        table cells (or text block)
``/streaks``                              per-dataset streak histograms
``/caveats``                              coverage-caveat counters
``/search?q=``                            FTS5 search over query texts
``/report``                               the full report, any format
========================================  =================================

List endpoints take ``?limit=`` (default 50, max 500) and
``?offset=``; table and report endpoints take ``?format=`` — ``json``
(cells) or ``text`` (the exact text-report block).  ``/report`` renders
through the reporter registry, so its bytes equal ``repro report`` on
the equivalently merged snapshot (invariant 11).

No third-party runtime dependency is introduced: everything is
:mod:`http.server`, :mod:`json`, and :mod:`urllib.parse`.
"""

from __future__ import annotations

import json
import threading
from http import HTTPStatus
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from ..exceptions import WarehouseError
from ..reporting.reporters import get_reporter
from .store import StudyWarehouse

__all__ = [
    "DEFAULT_LIMIT",
    "MAX_LIMIT",
    "WarehouseServer",
    "start_server",
]

#: Items per page when ``?limit=`` is absent.
DEFAULT_LIMIT = 50

#: Upper bound on ``?limit=`` (the service is read-mostly, but an
#: unbounded page is still an easy accidental self-DoS).
MAX_LIMIT = 500

#: (path template, one-line description) — served on ``/``.
_ENDPOINTS = (
    ("/datasets", "per-dataset pipeline counters (paginated)"),
    ("/datasets/{name}", "one dataset's counters"),
    ("/datasets/{name}/tables/{1..6}", "table cells scoped to a dataset"),
    ("/tables/{1..6}", "table cells (?format=text for the report block)"),
    ("/streaks", "per-dataset streak histograms (paginated)"),
    ("/caveats", "coverage-caveat counters"),
    ("/search?q=", "full-text search over indexed query texts"),
    ("/report", "full report (?format= any registered reporter)"),
)


class _BadRequest(Exception):
    """Maps to a 400 response with the message as the error body."""


def _positive_param(query: Dict[str, List[str]], name: str, default: int) -> int:
    values = query.get(name)
    if not values:
        return default
    try:
        number = int(values[-1])
    except ValueError:
        raise _BadRequest(f"{name} must be an integer, got {values[-1]!r}") from None
    if number < 0:
        raise _BadRequest(f"{name} must be >= 0, got {number}")
    return number


def _page_params(query: Dict[str, List[str]]) -> Tuple[int, int]:
    limit = _positive_param(query, "limit", DEFAULT_LIMIT)
    offset = _positive_param(query, "offset", 0)
    if not 1 <= limit <= MAX_LIMIT:
        raise _BadRequest(f"limit must be within 1..{MAX_LIMIT}, got {limit}")
    return limit, offset


def _page(total: int, limit: int, offset: int, items: List[Any]) -> Dict[str, Any]:
    """The JSON envelope every list endpoint shares."""
    return {"total": total, "limit": limit, "offset": offset, "items": items}


class _Handler(BaseHTTPRequestHandler):
    """One GET request against the server's warehouse."""

    server: "WarehouseServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        """Route request logging through the server (quiet by default)."""
        if self.server.verbose:  # pragma: no cover - CLI-only switch
            super().log_message(format, *args)

    def _respond(self, status: int, payload: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _json(self, data: Any, status: int = HTTPStatus.OK) -> None:
        payload = (json.dumps(data, indent=2) + "\n").encode("utf-8")
        self._respond(status, payload, "application/json; charset=utf-8")

    def _text(self, text: str) -> None:
        if not text.endswith("\n"):
            text += "\n"
        self._respond(
            HTTPStatus.OK, text.encode("utf-8"), "text/plain; charset=utf-8"
        )

    def _error(self, status: int, message: str) -> None:
        self._json({"error": message}, status=status)

    # -- dispatch -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch one GET request (every route is read-only)."""
        parsed = urlparse(self.path)
        segments = [part for part in parsed.path.split("/") if part]
        query = parse_qs(parsed.query)
        try:
            with self.server.lock:
                self._route(segments, query)
        except _BadRequest as error:
            self._error(HTTPStatus.BAD_REQUEST, str(error))
        except WarehouseError as error:
            # Empty warehouse / missing table data are "not found";
            # anything else over a valid route is a server-side problem.
            self._error(HTTPStatus.NOT_FOUND, str(error))
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def _route(self, segments: List[str], query: Dict[str, List[str]]) -> None:
        warehouse = self.server.warehouse
        if not segments:
            stats = warehouse.stats()
            self._json(
                {
                    "service": "repro study warehouse",
                    "endpoints": [
                        {"path": path, "description": description}
                        for path, description in _ENDPOINTS
                    ],
                    "warehouse": stats,
                }
            )
        elif segments == ["caveats"]:
            caveats = warehouse.caveats()
            self._json(
                {**caveats, "clean": not any(caveats.values())}
            )
        elif segments == ["streaks"]:
            limit, offset = _page_params(query)
            total, items = warehouse.streak_histograms(limit=limit, offset=offset)
            self._json(_page(total, limit, offset, items))
        elif segments == ["search"]:
            terms = query.get("q", [])
            if not terms or not terms[-1].strip():
                raise _BadRequest("missing search term: use /search?q=...")
            limit, offset = _page_params(query)
            try:
                total, items = warehouse.search(
                    terms[-1], limit=limit, offset=offset
                )
            except WarehouseError as error:
                raise _BadRequest(str(error)) from None
            self._json(_page(total, limit, offset, items))
        elif segments == ["report"]:
            formats = query.get("format", ["text"])
            try:
                get_reporter(formats[-1])
            except ValueError as error:
                raise _BadRequest(str(error)) from None
            rendered = warehouse.render(formats[-1])
            if formats[-1] == "json":
                self._respond(
                    HTTPStatus.OK,
                    rendered.encode("utf-8"),
                    "application/json; charset=utf-8",
                )
            else:
                self._text(rendered)
        elif segments[0] == "tables" and len(segments) == 2:
            self._table(segments[1], dataset=None, query=query)
        elif segments[0] == "datasets":
            self._datasets(segments[1:], query)
        else:
            self._error(HTTPStatus.NOT_FOUND, f"no such endpoint /{'/'.join(segments)}")

    def _datasets(self, rest: List[str], query: Dict[str, List[str]]) -> None:
        warehouse = self.server.warehouse
        if not rest:
            limit, offset = _page_params(query)
            total, items = warehouse.datasets(limit=limit, offset=offset)
            self._json(_page(total, limit, offset, items))
            return
        row = warehouse.dataset(rest[0])
        if row is None:
            self._error(HTTPStatus.NOT_FOUND, f"no such dataset {rest[0]!r}")
            return
        if len(rest) == 1:
            self._json(row)
        elif len(rest) == 3 and rest[1] == "tables":
            self._table(rest[2], dataset=rest[0], query=query)
        else:
            self._error(
                HTTPStatus.NOT_FOUND, f"no such endpoint under /datasets/{rest[0]}"
            )

    def _table(
        self, raw: str, *, dataset: Optional[str], query: Dict[str, List[str]]
    ) -> None:
        warehouse = self.server.warehouse
        try:
            table = int(raw)
        except ValueError:
            raise _BadRequest(f"table must be 1..6, got {raw!r}") from None
        formats = query.get("format", ["json"])
        if formats[-1] == "text":
            # The text form is corpus-wide by definition: the block is a
            # byte-exact slice of the full `repro report` document.
            self._text(warehouse.table_text(table))
            return
        if formats[-1] != "json":
            raise _BadRequest(
                f"table format must be 'json' or 'text', got {formats[-1]!r}"
            )
        limit, offset = _page_params(query)
        total, items = warehouse.table_cells(
            table, dataset=dataset, limit=limit, offset=offset
        )
        self._json(_page(total, limit, offset, items))


class WarehouseServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one read-only warehouse handle.

    Request handlers serialize warehouse access on :attr:`lock` (one
    SQLite handle, many request threads).  Use as a context manager, or
    call :meth:`close` — which also closes the warehouse handle."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        warehouse: StudyWarehouse,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.warehouse = warehouse
        self.verbose = verbose
        self.lock = threading.Lock()

    @property
    def url(self) -> str:
        """The service's root URL, with the actually-bound port."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}/"

    def close(self) -> None:
        """Shut the socket and the warehouse handle down (idempotent)."""
        self.server_close()
        self.warehouse.close()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def start_server(
    path: Union[str, Path], *, host: str = "127.0.0.1", port: int = 0, verbose: bool = False
) -> WarehouseServer:
    """Open *path* read-only and bind a :class:`WarehouseServer` on
    *host*:*port* (0 picks a free port; see :attr:`WarehouseServer.url`).

    The caller drives the serve loop — ``serve_forever()`` for the CLI,
    a background thread plus :meth:`~WarehouseServer.close` in tests.
    Raises :class:`~repro.exceptions.WarehouseError` for an unusable
    warehouse file and ``OSError`` for an unbindable address."""
    warehouse = StudyWarehouse.open(path, readonly=True)
    try:
        return WarehouseServer((host, port), warehouse, verbose=verbose)
    except OSError:
        warehouse.close()
        raise
