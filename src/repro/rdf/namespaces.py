"""Namespace and prefix management.

SPARQL queries abbreviate IRIs with ``PREFIX`` declarations; the parser
expands prefixed names through a :class:`NamespaceManager`.  This module
also ships the well-known vocabularies that appear throughout the logs
studied by the paper (rdf, rdfs, owl, foaf, dbo, wdt, …) so that example
queries and generated workloads read naturally.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .terms import IRI

__all__ = ["Namespace", "NamespaceManager", "WELL_KNOWN_PREFIXES"]


class Namespace:
    """A convenience factory for IRIs under a common base.

    >>> FOAF = Namespace("http://xmlns.com/foaf/0.1/")
    >>> FOAF.name
    IRI(value='http://xmlns.com/foaf/0.1/name')
    """

    def __init__(self, base: str) -> None:
        self._base = base

    @property
    def base(self) -> str:
        """The namespace IRI string."""
        return self._base

    def term(self, local: str) -> IRI:
        """The IRI of *local* inside this namespace."""
        return IRI(self._base + local)

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __getitem__(self, local: str) -> IRI:
        return self.term(local)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


#: Prefixes that real SPARQL endpoints (and the paper's logs) use heavily.
WELL_KNOWN_PREFIXES: Dict[str, str] = {
    "rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
    "rdfs": "http://www.w3.org/2000/01/rdf-schema#",
    "owl": "http://www.w3.org/2002/07/owl#",
    "xsd": "http://www.w3.org/2001/XMLSchema#",
    "foaf": "http://xmlns.com/foaf/0.1/",
    "dc": "http://purl.org/dc/elements/1.1/",
    "dcterms": "http://purl.org/dc/terms/",
    "skos": "http://www.w3.org/2004/02/skos/core#",
    "dbo": "http://dbpedia.org/ontology/",
    "dbr": "http://dbpedia.org/resource/",
    "dbp": "http://dbpedia.org/property/",
    "wd": "http://www.wikidata.org/entity/",
    "wdt": "http://www.wikidata.org/prop/direct/",
    "p": "http://www.wikidata.org/prop/",
    "ps": "http://www.wikidata.org/prop/statement/",
    "pq": "http://www.wikidata.org/prop/qualifier/",
    "geo": "http://www.w3.org/2003/01/geo/wgs84_pos#",
    "swrc": "http://swrc.ontoware.org/ontology#",
    "bio": "http://purl.org/vocab/bio/0.1/",
}


class NamespaceManager:
    """Bidirectional prefix ↔ namespace mapping.

    Used by the parser to expand prefixed names and by the serializer to
    compact IRIs back into readable form.
    """

    def __init__(self, initial: Optional[Dict[str, str]] = None) -> None:
        self._prefix_to_ns: Dict[str, str] = {}
        self._ns_to_prefix: Dict[str, str] = {}
        if initial:
            for prefix, namespace in initial.items():
                self.bind(prefix, namespace)

    @classmethod
    def with_well_known(cls) -> "NamespaceManager":
        """A manager preloaded with the well-known prefixes."""
        return cls(WELL_KNOWN_PREFIXES)

    def bind(self, prefix: str, namespace: str) -> None:
        """Bind *prefix* to *namespace*, replacing any previous binding."""
        old = self._prefix_to_ns.get(prefix)
        if old is not None and self._ns_to_prefix.get(old) == prefix:
            del self._ns_to_prefix[old]
        self._prefix_to_ns[prefix] = namespace
        # First prefix bound to a namespace wins for compaction.
        self._ns_to_prefix.setdefault(namespace, prefix)

    def expand(self, prefix: str, local: str) -> IRI:
        """Expand ``prefix:local`` to an absolute IRI.

        Raises :class:`KeyError` if the prefix is unbound, which the
        SPARQL parser converts into a syntax error.
        """
        return IRI(self._prefix_to_ns[prefix] + local)

    def namespace_for(self, prefix: str) -> Optional[str]:
        """The namespace bound to *prefix*, or ``None``."""
        return self._prefix_to_ns.get(prefix)

    def compact(self, iri: IRI) -> Optional[str]:
        """Return ``prefix:local`` for *iri* if a binding matches."""
        best: Optional[Tuple[str, str]] = None
        for namespace, prefix in self._ns_to_prefix.items():
            if iri.value.startswith(namespace):
                if best is None or len(namespace) > len(best[0]):
                    best = (namespace, prefix)
        if best is None:
            return None
        namespace, prefix = best
        local = iri.value[len(namespace):]
        if "/" in local or "#" in local or not local:
            return None
        return f"{prefix}:{local}"

    def bindings(self) -> Iterator[Tuple[str, str]]:
        """All (prefix, namespace) bindings, in insertion order."""
        return iter(sorted(self._prefix_to_ns.items()))

    def __len__(self) -> int:
        return len(self._prefix_to_ns)

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefix_to_ns
