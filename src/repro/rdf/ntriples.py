"""N-Triples reading and writing.

A minimal, strict N-Triples 1.1 implementation used for test fixtures,
example data files, and dumping generated graphs.  Only the features of
the N-Triples grammar are supported (no Turtle abbreviations).

Paper mapping: instance-data IO for the Figure 3 engine experiment.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, TextIO, Union

from .graph import Graph
from .terms import IRI, BlankNode, Literal, Triple

__all__ = ["dumps", "loads", "dump", "load", "NTriplesError"]


class NTriplesError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""

    def __init__(self, message: str, line_number: int) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_IRI_RE = re.compile(r"<([^<>\"{}|^`\\\x00-\x20]*)>")
_BNODE_RE = re.compile(r"_:([A-Za-z0-9][A-Za-z0-9._-]*)")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\\n\r]|\\.)*)"'
    r"(?:@([a-zA-Z]+(?:-[a-zA-Z0-9]+)*)|\^\^<([^<>\s]*)>)?"
)

_UNESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
    "b": "\b",
    "f": "\f",
    "'": "'",
}


def _unescape(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(text):
            raise ValueError("dangling escape")
        nxt = text[i + 1]
        if nxt in _UNESCAPES:
            out.append(_UNESCAPES[nxt])
            i += 2
        elif nxt == "u":
            out.append(chr(int(text[i + 2 : i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(text[i + 2 : i + 10], 16)))
            i += 10
        else:
            raise ValueError(f"unknown escape: \\{nxt}")
    return "".join(out)


def _parse_term(text: str, pos: int, line_number: int) -> tuple:
    """Parse one term starting at *pos*; return (term, new_pos)."""
    while pos < len(text) and text[pos] in " \t":
        pos += 1
    if pos >= len(text):
        raise NTriplesError("unexpected end of statement", line_number)
    match = _IRI_RE.match(text, pos)
    if match:
        return IRI(match.group(1)), match.end()
    match = _BNODE_RE.match(text, pos)
    if match:
        return BlankNode(match.group(1)), match.end()
    match = _LITERAL_RE.match(text, pos)
    if match:
        try:
            lexical = _unescape(match.group(1))
        except ValueError as exc:
            raise NTriplesError(str(exc), line_number) from exc
        language, datatype = match.group(2), match.group(3)
        return Literal(lexical, language=language, datatype=datatype), match.end()
    raise NTriplesError(f"cannot parse term at column {pos}", line_number)


def iter_statements(lines: Iterable[str]) -> Iterator[Triple]:
    """Yield triples from N-Triples *lines*, skipping blanks/comments."""
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        subject, pos = _parse_term(line, 0, line_number)
        predicate, pos = _parse_term(line, pos, line_number)
        obj, pos = _parse_term(line, pos, line_number)
        rest = line[pos:].strip()
        if rest != ".":
            raise NTriplesError(f"expected '.' but found {rest!r}", line_number)
        if not isinstance(predicate, IRI):
            raise NTriplesError("predicate must be an IRI", line_number)
        try:
            yield Triple(subject, predicate, obj)
        except ValueError as exc:
            raise NTriplesError(str(exc), line_number) from exc


def loads(text: str) -> Graph:
    """Parse an N-Triples document into a :class:`Graph`."""
    return Graph(iter_statements(text.splitlines()))


def load(fp: TextIO) -> Graph:
    """Parse an N-Triples stream into a :class:`Graph`."""
    return Graph(iter_statements(fp))


def dumps(graph: Union[Graph, Iterable[Triple]]) -> str:
    """Serialize *graph* as N-Triples, sorted for determinism."""
    triples = sorted(graph, key=Triple.sort_key)
    return "".join(triple.sparql_text() + "\n" for triple in triples)


def dump(graph: Union[Graph, Iterable[Triple]], fp: TextIO) -> None:
    """Write triples to *fp* in canonical N-Triples lines."""
    fp.write(dumps(graph))
