"""RDF data model: terms, triples, graphs, namespaces, N-Triples IO."""

from .graph import Graph
from .namespaces import Namespace, NamespaceManager, WELL_KNOWN_PREFIXES
from .terms import (
    IRI,
    BlankNode,
    Literal,
    Term,
    Triple,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)
from . import ntriples, turtle

__all__ = [
    "Graph",
    "Namespace",
    "NamespaceManager",
    "WELL_KNOWN_PREFIXES",
    "IRI",
    "BlankNode",
    "Literal",
    "Term",
    "Triple",
    "Variable",
    "XSD_BOOLEAN",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_INTEGER",
    "XSD_STRING",
    "ntriples",
    "turtle",
]
