"""RDF data model: terms, triples, graphs, namespaces, N-Triples IO.

Paper mapping: the RDF preliminaries of sec 3, backing the Figure 3
engines and the synthetic corpus.
"""

from . import ntriples, turtle
from .graph import Graph
from .namespaces import WELL_KNOWN_PREFIXES, Namespace, NamespaceManager
from .terms import (
    IRI,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    BlankNode,
    Literal,
    Term,
    Triple,
    Variable,
)

__all__ = [
    "Graph",
    "Namespace",
    "NamespaceManager",
    "WELL_KNOWN_PREFIXES",
    "IRI",
    "BlankNode",
    "Literal",
    "Term",
    "Triple",
    "Variable",
    "XSD_BOOLEAN",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_INTEGER",
    "XSD_STRING",
    "ntriples",
    "turtle",
]
