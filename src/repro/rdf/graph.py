"""In-memory RDF graph with triple-pattern indexes.

The store keeps three hash indexes (SPO, POS, OSP) so that every
triple-pattern access path — any combination of bound/unbound subject,
predicate, object — is answered by dictionary lookups rather than scans.
This is the substrate under the ``IndexedEngine`` (the paper's
Blazegraph stand-in); the ``NestedLoopEngine`` deliberately bypasses the
indexes and scans :meth:`Graph.scan` instead.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set

from .terms import IRI, BlankNode, Literal, Term, Triple

__all__ = ["Graph"]

_SPO = 0
_POS = 1
_OSP = 2


class Graph:
    """A set of RDF triples with SPO/POS/OSP indexes.

    The class supports the mutation and lookup operations the engines
    and generators need: add/remove/contains, pattern matching with any
    subset of positions bound, and simple cardinality statistics used by
    the join-order optimizer.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None) -> None:
        # Insertion-ordered containers (dicts with None values) instead
        # of sets: iteration order — and therefore the time an ASK-style
        # early-exit evaluation takes to reach its first match — is a
        # function of construction order, not of per-process string-hash
        # randomization.  Deterministic inputs stay deterministic.
        self._triples: Dict[Triple, None] = {}
        # index[level1][level2] -> ordered set of level3 values
        self._spo: Dict[Term, Dict[Term, Dict[Term, None]]] = defaultdict(dict)
        self._pos: Dict[Term, Dict[Term, Dict[Term, None]]] = defaultdict(dict)
        self._osp: Dict[Term, Dict[Term, Dict[Term, None]]] = defaultdict(dict)
        self._predicate_counts: Dict[Term, int] = defaultdict(int)
        if triples is not None:
            for triple in triples:
                self.add(triple)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> bool:
        """Add *triple*; return True if it was not already present."""
        if triple in self._triples:
            return False
        self._triples[triple] = None
        s, p, o = triple
        self._spo[s].setdefault(p, {})[o] = None
        self._pos[p].setdefault(o, {})[s] = None
        self._osp[o].setdefault(s, {})[p] = None
        self._predicate_counts[p] += 1
        return True

    def add_spo(self, s: Term, p: Term, o: Term) -> bool:
        """Add one triple; returns False when it was already present."""
        return self.add(Triple(s, p, o))

    def remove(self, triple: Triple) -> bool:
        """Remove *triple*; return True if it was present."""
        if triple not in self._triples:
            return False
        self._triples.pop(triple, None)
        s, p, o = triple
        self._discard(self._spo, s, p, o)
        self._discard(self._pos, p, o, s)
        self._discard(self._osp, o, s, p)
        self._predicate_counts[p] -= 1
        if self._predicate_counts[p] <= 0:
            del self._predicate_counts[p]
        return True

    @staticmethod
    def _discard(
        index: Dict[Term, Dict[Term, Dict[Term, None]]], a: Term, b: Term, c: Term
    ) -> None:
        second = index.get(a)
        if second is None:
            return
        third = second.get(b)
        if third is None:
            return
        third.pop(c, None)
        if not third:
            del second[b]
        if not second:
            del index[a]

    def update(self, triples: Iterable[Triple]) -> int:
        """Add all *triples*; return the number actually inserted."""
        return sum(1 for triple in triples if self.add(triple))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def scan(self) -> Iterator[Triple]:
        """Unindexed full scan (used by the nested-loop engine)."""
        return iter(self._triples)

    def match(
        self,
        s: Optional[Term] = None,
        p: Optional[Term] = None,
        o: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the given bound positions.

        ``None`` means "unbound".  Uses the cheapest index for the
        binding pattern; every access path is supported.
        """
        if s is not None and p is not None and o is not None:
            try:
                triple = Triple(s, p, o)
            except ValueError:
                # A term in an impossible position (e.g. a join bound a
                # subject to a literal): no data triple can match.
                return
            if triple in self._triples:
                yield triple
            return
        if s is not None and p is not None:
            for obj in self._spo.get(s, {}).get(p, ()):
                yield Triple(s, p, obj)
            return
        if p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield Triple(subj, p, o)
            return
        if s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):
                yield Triple(s, pred, o)
            return
        if s is not None:
            for pred, objs in self._spo.get(s, {}).items():
                for obj in objs:
                    yield Triple(s, pred, obj)
            return
        if p is not None:
            for obj, subjs in self._pos.get(p, {}).items():
                for subj in subjs:
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield Triple(subj, pred, o)
            return
        yield from self._triples

    def count_matches(
        self,
        s: Optional[Term] = None,
        p: Optional[Term] = None,
        o: Optional[Term] = None,
    ) -> int:
        """Exact cardinality of :meth:`match` without materializing it
        when an index answers the question directly."""
        if s is None and p is None and o is None:
            return len(self._triples)
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None and s is None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None and p is None:
            return len(self._osp.get(o, {}).get(s, ()))
        if p is not None and s is None and o is None:
            return self._predicate_counts.get(p, 0)
        return sum(1 for _ in self.match(s, p, o))

    # ------------------------------------------------------------------
    # Statistics and vocabulary
    # ------------------------------------------------------------------
    def subjects(self) -> Set[Term]:
        """All distinct subjects."""
        return set(self._spo)

    def predicates(self) -> Set[Term]:
        """All distinct predicates."""
        return set(self._pos)

    def objects(self) -> Set[Term]:
        """All distinct objects."""
        return set(self._osp)

    def nodes(self) -> Set[Term]:
        """All terms appearing in subject or object position."""
        return self.subjects() | self.objects()

    def predicate_histogram(self) -> Dict[Term, int]:
        """Occurrence count per predicate."""
        return dict(self._predicate_counts)

    def describe(self, node: Term) -> List[Triple]:
        """All triples where *node* is subject or object (SPARQL
        DESCRIBE approximation: concise bounded description without
        blank-node closure)."""
        seen: Set[Triple] = set()
        result: List[Triple] = []
        if isinstance(node, (IRI, BlankNode)):
            for triple in self.match(s=node):
                if triple not in seen:
                    seen.add(triple)
                    result.append(triple)
        if isinstance(node, (IRI, BlankNode, Literal)):
            for triple in self.match(o=node):
                if triple not in seen:
                    seen.add(triple)
                    result.append(triple)
        return result

    def copy(self) -> "Graph":
        """An independent copy of the graph."""
        return Graph(self._triples)

    def __repr__(self) -> str:
        return f"Graph(len={len(self._triples)})"
