"""Turtle reader/writer.

RDF dumps (DBpedia, Wikidata) ship as Turtle; this module parses the
Turtle 1.1 core — prefixes, ``a``, semicolon/comma predicate-object
lists, blank-node property lists, collections, numeric/boolean
literals — by reusing the SPARQL tokenizer (Turtle's triples grammar is
a subset of SPARQL's triples block).

Not supported (rare in data dumps): ``@base``-relative resolution
beyond simple joining, and the ``GRAPH`` forms of TriG.

Paper mapping: instance-data IO for the Figure 3 engine experiment.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, TextIO

from ..exceptions import ReproError
from ..sparql.tokenizer import Token, TokenType, tokenize
from .graph import Graph
from .namespaces import NamespaceManager
from .terms import (
    IRI,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    BlankNode,
    Literal,
    Term,
    Triple,
)

__all__ = ["TurtleError", "loads", "load", "dumps", "dump"]

RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
RDF_TYPE = IRI(RDF_NS + "type")
RDF_FIRST = IRI(RDF_NS + "first")
RDF_REST = IRI(RDF_NS + "rest")
RDF_NIL = IRI(RDF_NS + "nil")


class TurtleError(ReproError):
    """A document is not valid Turtle (with source position)."""

    def __init__(self, message: str, token: Optional[Token] = None) -> None:
        if token is not None:
            message = f"{message} at line {token.line}, column {token.column}"
        super().__init__(message)


class _TurtleParser:
    def __init__(self, text: str) -> None:
        try:
            self._tokens = tokenize(text)
        except ReproError as exc:
            raise TurtleError(str(exc)) from exc
        self._pos = 0
        self._namespaces = NamespaceManager()
        self._base: Optional[str] = None
        self._bnode_ids = itertools.count()
        self.triples: List[Triple] = []

    # -- token helpers ---------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[min(self._pos, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._peek()
        if token.type != TokenType.EOF:
            self._pos += 1
        return token

    def _expect_punct(self, symbol: str) -> None:
        token = self._peek()
        if not token.is_punct(symbol):
            raise TurtleError(f"expected {symbol!r}, found {token.value!r}", token)
        self._next()

    def _fresh_bnode(self) -> BlankNode:
        return BlankNode(f"__t{next(self._bnode_ids)}")

    # -- entry -----------------------------------------------------------
    def parse(self) -> List[Triple]:
        """Parse the whole document and return its triples."""
        while self._peek().type != TokenType.EOF:
            token = self._peek()
            # "@prefix" lexes as a LANGTAG token ("@" + name); SPARQL-
            # style "PREFIX" lexes as a keyword.  Accept both, as
            # Turtle 1.1 does.
            at_prefix = (
                token.type == TokenType.LANGTAG
                and token.value.lower() in ("prefix", "base")
            )
            if token.is_keyword("PREFIX") or (at_prefix and token.value.lower() == "prefix"):
                self._parse_prefix()
            elif token.is_keyword("BASE") or (at_prefix and token.value.lower() == "base"):
                self._parse_base()
            else:
                self._parse_statement()
        return self.triples

    def _parse_prefix(self) -> None:
        directive = self._next()
        at_form = directive.type == TokenType.LANGTAG
        name = self._peek()
        if name.type != TokenType.PNAME or not name.value.endswith(":"):
            raise TurtleError("expected prefix name", name)
        self._next()
        iri = self._peek()
        if iri.type != TokenType.IRIREF:
            raise TurtleError("expected namespace IRI", iri)
        self._next()
        self._namespaces.bind(name.value[:-1], iri.value)
        if at_form:
            self._expect_punct(".")
        elif self._peek().is_punct("."):
            self._next()

    def _parse_base(self) -> None:
        self._next()
        iri = self._peek()
        if iri.type != TokenType.IRIREF:
            raise TurtleError("expected base IRI", iri)
        self._next()
        self._base = iri.value
        if self._peek().is_punct("."):
            self._next()

    # -- statements ------------------------------------------------------
    def _parse_statement(self) -> None:
        token = self._peek()
        if token.is_punct("[") or token.type == TokenType.ANON:
            subject = self._parse_blank_property_list()
            if not self._peek().is_punct("."):
                self._parse_predicate_object_list(subject)
        else:
            subject = self._parse_subject()
            self._parse_predicate_object_list(subject)
        self._expect_punct(".")

    def _parse_subject(self) -> Term:
        token = self._peek()
        if token.type == TokenType.IRIREF:
            self._next()
            return IRI(self._resolve(token.value))
        if token.type == TokenType.PNAME:
            return self._expand_pname(self._next())
        if token.type == TokenType.BLANK_NODE:
            self._next()
            return BlankNode(token.value)
        if token.is_punct("(") or token.type == TokenType.NIL:
            return self._parse_collection()
        raise TurtleError(f"expected subject, found {token.value!r}", token)

    def _parse_predicate_object_list(self, subject: Term) -> None:
        while True:
            predicate = self._parse_predicate()
            while True:
                obj = self._parse_object()
                self._emit(subject, predicate, obj)
                if not self._peek().is_punct(","):
                    break
                self._next()
            if not self._peek().is_punct(";"):
                return
            while self._peek().is_punct(";"):
                self._next()
            token = self._peek()
            if token.is_punct(".") or token.is_punct("]"):
                return  # trailing semicolon

    def _parse_predicate(self) -> IRI:
        token = self._peek()
        if token.type == TokenType.KEYWORD and token.value == "a":
            self._next()
            return RDF_TYPE
        if token.type == TokenType.IRIREF:
            self._next()
            return IRI(self._resolve(token.value))
        if token.type == TokenType.PNAME:
            return self._expand_pname(self._next())
        raise TurtleError(f"expected predicate, found {token.value!r}", token)

    def _parse_object(self) -> Term:
        token = self._peek()
        if token.type == TokenType.IRIREF:
            self._next()
            return IRI(self._resolve(token.value))
        if token.type == TokenType.PNAME:
            return self._expand_pname(self._next())
        if token.type == TokenType.BLANK_NODE:
            self._next()
            return BlankNode(token.value)
        if token.type == TokenType.ANON:
            self._next()
            return self._fresh_bnode()
        if token.is_punct("["):
            return self._parse_blank_property_list()
        if token.is_punct("(") or token.type == TokenType.NIL:
            return self._parse_collection()
        if token.type == TokenType.STRING:
            return self._parse_literal()
        if token.type in (TokenType.INTEGER, TokenType.DECIMAL, TokenType.DOUBLE):
            return self._parse_number(positive=True)
        if token.is_punct("-") or token.is_punct("+"):
            sign = self._next().value
            number = self._parse_number(positive=sign == "+")
            return number
        if token.is_keyword("TRUE", "FALSE"):
            self._next()
            return Literal(token.value.lower(), datatype=XSD_BOOLEAN)
        raise TurtleError(f"expected object, found {token.value!r}", token)

    def _parse_literal(self) -> Literal:
        token = self._next()
        nxt = self._peek()
        if nxt.type == TokenType.LANGTAG:
            self._next()
            return Literal(token.value, language=nxt.value)
        if nxt.is_punct("^^"):
            self._next()
            datatype_token = self._peek()
            if datatype_token.type == TokenType.IRIREF:
                self._next()
                return Literal(token.value, datatype=self._resolve(datatype_token.value))
            if datatype_token.type == TokenType.PNAME:
                return Literal(
                    token.value,
                    datatype=self._expand_pname(self._next()).value,
                )
            raise TurtleError("expected datatype IRI", datatype_token)
        return Literal(token.value)

    def _parse_number(self, positive: bool) -> Literal:
        token = self._peek()
        if token.type == TokenType.INTEGER:
            datatype = XSD_INTEGER
        elif token.type == TokenType.DECIMAL:
            datatype = XSD_DECIMAL
        elif token.type == TokenType.DOUBLE:
            datatype = XSD_DOUBLE
        else:
            raise TurtleError(f"expected number, found {token.value!r}", token)
        self._next()
        lexical = token.value if positive else "-" + token.value
        return Literal(lexical, datatype=datatype)

    def _parse_blank_property_list(self) -> BlankNode:
        token = self._peek()
        if token.type == TokenType.ANON:
            self._next()
            return self._fresh_bnode()
        self._expect_punct("[")
        node = self._fresh_bnode()
        if not self._peek().is_punct("]"):
            self._parse_predicate_object_list(node)
        self._expect_punct("]")
        return node

    def _parse_collection(self) -> Term:
        token = self._peek()
        if token.type == TokenType.NIL:
            self._next()
            return RDF_NIL
        self._expect_punct("(")
        items: List[Term] = []
        while not self._peek().is_punct(")"):
            if self._peek().type == TokenType.EOF:
                raise TurtleError("unterminated collection", self._peek())
            items.append(self._parse_object())
        self._next()
        if not items:
            return RDF_NIL
        head = self._fresh_bnode()
        node: Term = head
        for index, item in enumerate(items):
            self._emit(node, RDF_FIRST, item)
            if index + 1 < len(items):
                nxt = self._fresh_bnode()
                self._emit(node, RDF_REST, nxt)
                node = nxt
            else:
                self._emit(node, RDF_REST, RDF_NIL)
        return head

    # -- helpers -----------------------------------------------------------
    def _expand_pname(self, token: Token) -> IRI:
        prefix, _, local = token.value.partition(":")
        namespace = self._namespaces.namespace_for(prefix)
        if namespace is None:
            raise TurtleError(f"undeclared prefix {prefix!r}", token)
        return IRI(namespace + local.replace("\\", ""))

    def _resolve(self, value: str) -> str:
        if self._base is None or "://" in value or value.startswith("urn:"):
            return value
        if value.startswith("#") or not value:
            return self._base + value
        base = self._base.rsplit("/", 1)[0] + "/" if "/" in self._base else self._base
        return base + value

    def _emit(self, subject: Term, predicate: IRI, obj: Term) -> None:
        try:
            self.triples.append(Triple(subject, predicate, obj))
        except ValueError as exc:
            raise TurtleError(str(exc)) from exc


def loads(text: str) -> Graph:
    """Parse a Turtle document into a :class:`Graph`."""
    return Graph(_TurtleParser(text).parse())


def load(fp: TextIO) -> Graph:
    """Parse a Turtle stream into a :class:`Graph`."""
    return loads(fp.read())


def dumps(graph: Graph, namespaces: Optional[NamespaceManager] = None) -> str:
    """Serialize *graph* as Turtle, grouping by subject with ';' lists.

    When *namespaces* is given, IRIs are compacted to prefixed names
    and the corresponding ``@prefix`` directives are emitted.
    """
    manager = namespaces

    def term_text(term: Term) -> str:
        """Serialize *term*, preferring a prefixed name when bound."""
        if manager is not None and isinstance(term, IRI):
            compact = manager.compact(term)
            if compact is not None:
                return compact
        if term == RDF_TYPE:
            return "a"
        return term.sparql_text()

    lines: List[str] = []
    used_prefixes = set()
    by_subject: dict = {}
    for triple in sorted(graph, key=Triple.sort_key):
        by_subject.setdefault(triple.subject, []).append(triple)
    body: List[str] = []
    for subject, triples in by_subject.items():
        parts = []
        for triple in triples:
            predicate_text = term_text(triple.predicate)
            object_text = term_text(triple.object)
            for text in (predicate_text, object_text, term_text(subject)):
                if ":" in text and not text.startswith(("<", '"', "_:")):
                    used_prefixes.add(text.split(":", 1)[0])
            parts.append(f"{predicate_text} {object_text}")
        body.append(f"{term_text(subject)} " + " ;\n    ".join(parts) + " .")
    if manager is not None:
        for prefix, namespace in manager.bindings():
            if prefix in used_prefixes or prefix == "":
                lines.append(f"@prefix {prefix}: <{namespace}> .")
        if lines:
            lines.append("")
    lines.extend(body)
    return "\n".join(lines) + ("\n" if body else "")


def dump(graph: Graph, fp: TextIO, namespaces: Optional[NamespaceManager] = None) -> None:
    """Write *graph* as Turtle with prefix declarations."""
    fp.write(dumps(graph, namespaces))
