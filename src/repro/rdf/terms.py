"""RDF term model.

Terms are the atoms of RDF data and SPARQL patterns: IRIs, literals,
blank nodes, and (in patterns only) variables.  All terms are immutable,
hashable, and totally ordered so they can be used as dictionary keys,
set members, and sort keys throughout the library.

The ordering follows SPARQL's ``ORDER BY`` term ordering: blank nodes
sort before IRIs, which sort before literals; variables (which never
occur in data) sort last.

Paper mapping: the term model of the sec 3 preliminaries, shared by
parser, analyses and engines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = [
    "Term",
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "Triple",
    "TermLike",
    "XSD_STRING",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_BOOLEAN",
    "RDF_LANGSTRING",
]

XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = XSD + "string"
XSD_INTEGER = XSD + "integer"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_BOOLEAN = XSD + "boolean"
RDF_LANGSTRING = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

# Sort keys for the SPARQL term ordering.
_KIND_BLANK = 0
_KIND_IRI = 1
_KIND_LITERAL = 2
_KIND_VARIABLE = 3

_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}

_VARNAME_RE = re.compile(r"^[A-Za-z_À-￿0-9][A-Za-z_À-￿0-9]*$")


def _escape_literal(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in value)


class Term:
    """Abstract base class for RDF terms.

    Subclasses define ``_kind`` (the SPARQL ordering bucket) and
    ``sparql_text()`` (the lexical form used in query/data text).
    """

    __slots__ = ()
    _kind: int = -1

    def sparql_text(self) -> str:
        """The term in SPARQL surface syntax."""
        raise NotImplementedError

    def sort_key(self) -> Tuple:
        """Total-order key across term kinds (SPARQL's TERM ordering)."""
        raise NotImplementedError

    def is_variable(self) -> bool:
        """Whether this term is a variable."""
        return isinstance(self, Variable)

    def is_constant(self) -> bool:
        """Whether this term is a constant (IRI or literal)."""
        return not isinstance(self, (Variable, BlankNode))

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()


@dataclass(frozen=True, order=False)
class IRI(Term):
    """An IRI reference, stored in absolute (expanded) form."""

    value: str

    _kind = _KIND_IRI

    def sparql_text(self) -> str:
        """The IRI in angle-bracket syntax."""
        return f"<{self.value}>"

    def sort_key(self) -> Tuple:
        """Total-order key across term kinds (SPARQL's TERM ordering)."""
        return (_KIND_IRI, self.value)

    def __str__(self) -> str:
        return self.value

    def local_name(self) -> str:
        """Heuristic local name: the part after the last '#' or '/'."""
        for sep in ("#", "/"):
            if sep in self.value:
                return self.value.rsplit(sep, 1)[1]
        return self.value


@dataclass(frozen=True, order=False)
class Literal(Term):
    """An RDF literal with optional language tag or datatype IRI.

    Following RDF 1.1, a literal has exactly one of:
      * a language tag (datatype is implicitly ``rdf:langString``),
      * an explicit datatype IRI,
      * neither (datatype is implicitly ``xsd:string``).
    """

    lexical: str
    language: Optional[str] = None
    datatype: Optional[str] = None

    _kind = _KIND_LITERAL

    def __post_init__(self) -> None:
        if self.language is not None and self.datatype is not None:
            raise ValueError("a literal cannot have both language and datatype")

    @property
    def effective_datatype(self) -> str:
        """The literal's datatype IRI, with the plain/langString defaults."""
        if self.language is not None:
            return RDF_LANGSTRING
        return self.datatype or XSD_STRING

    def sparql_text(self) -> str:
        """The literal in quoted surface syntax with tags."""
        body = f'"{_escape_literal(self.lexical)}"'
        if self.language is not None:
            return f"{body}@{self.language}"
        if self.datatype is not None:
            return f"{body}^^<{self.datatype}>"
        return body

    def sort_key(self) -> Tuple:
        """Total-order key across term kinds (SPARQL's TERM ordering)."""
        return (_KIND_LITERAL, self.lexical, self.language or "", self.datatype or "")

    def __str__(self) -> str:
        return self.lexical

    def is_numeric(self) -> bool:
        """Whether the literal carries a numeric XSD datatype."""
        return self.datatype in (XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE)

    def python_value(self) -> Union[str, int, float, bool]:
        """Best-effort conversion to a Python value for filter evaluation."""
        if self.datatype == XSD_INTEGER:
            return int(self.lexical)
        if self.datatype in (XSD_DECIMAL, XSD_DOUBLE):
            return float(self.lexical)
        if self.datatype == XSD_BOOLEAN:
            return self.lexical in ("true", "1")
        return self.lexical


@dataclass(frozen=True, order=False)
class BlankNode(Term):
    """A blank node with a local label (scope: one document/query)."""

    label: str

    _kind = _KIND_BLANK

    def sparql_text(self) -> str:
        """The blank node in ``_:label`` syntax."""
        return f"_:{self.label}"

    def sort_key(self) -> Tuple:
        """Total-order key across term kinds (SPARQL's TERM ordering)."""
        return (_KIND_BLANK, self.label)

    def __str__(self) -> str:
        return f"_:{self.label}"


@dataclass(frozen=True, order=False)
class Variable(Term):
    """A SPARQL query variable (never occurs in data)."""

    name: str

    _kind = _KIND_VARIABLE

    def __post_init__(self) -> None:
        if not self.name or not _VARNAME_RE.match(self.name):
            raise ValueError(f"invalid variable name: {self.name!r}")

    def sparql_text(self) -> str:
        """The variable in ``?name`` syntax."""
        return f"?{self.name}"

    def sort_key(self) -> Tuple:
        """Total-order key across term kinds (SPARQL's TERM ordering)."""
        return (_KIND_VARIABLE, self.name)

    def __str__(self) -> str:
        return f"?{self.name}"


TermLike = Union[IRI, Literal, BlankNode, Variable]


@dataclass(frozen=True, order=False)
class Triple:
    """A ground RDF triple (subject, predicate, object).

    In data, subject ∈ IRI ∪ BlankNode, predicate ∈ IRI, and object ∈
    IRI ∪ BlankNode ∪ Literal.  The constructor validates positions so
    that a :class:`~repro.rdf.graph.Graph` only ever holds valid RDF.
    """

    subject: Term
    predicate: Term
    object: Term

    def __post_init__(self) -> None:
        if not isinstance(self.subject, (IRI, BlankNode)):
            raise ValueError(f"invalid triple subject: {self.subject!r}")
        if not isinstance(self.predicate, IRI):
            raise ValueError(f"invalid triple predicate: {self.predicate!r}")
        if not isinstance(self.object, (IRI, BlankNode, Literal)):
            raise ValueError(f"invalid triple object: {self.object!r}")

    def sparql_text(self) -> str:
        """The triple as ``s p o .`` surface syntax."""
        return (
            f"{self.subject.sparql_text()} {self.predicate.sparql_text()} "
            f"{self.object.sparql_text()} ."
        )

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def sort_key(self) -> Tuple:
        """Component-wise sort key for deterministic triple ordering."""
        return (
            self.subject.sort_key(),
            self.predicate.sort_key(),
            self.object.sort_key(),
        )
