"""repro — reproduction of "An Analytical Study of Large SPARQL Query
Logs" (Bonifati, Martens, Timm; VLDB 2017).

The library has six layers:

* :mod:`repro.rdf` — RDF terms, triples, indexed graph store, N-Triples;
* :mod:`repro.sparql` — SPARQL 1.1 tokenizer, parser, AST, serializer;
* :mod:`repro.engine` — query evaluation with two engine profiles
  (indexed vs nested-loop) for the paper's Figure 3 experiment;
* :mod:`repro.workload` — gMark-style graph/query generation and the
  calibrated synthetic log corpus standing in for the private logs;
* :mod:`repro.logs` — log formats and the clean/parse/dedup pipeline;
* :mod:`repro.analysis` — the paper's analyses: keyword/operator
  statistics, fragment classification (CQ/CQF/CQOF), canonical
  graph/hypergraph shapes, tree- and hypertree width, property-path
  taxonomy, and streak detection.

The stable programmatic surface is :mod:`repro.api`::

    from repro.api import analyze, load_study, merge_studies

    result = analyze("endpoint.log", workers=4)   # the full study
    print(result.render("markdown"))              # any registered format
    result.save("study.json")                     # portable snapshot
    merged = merge_studies([load_study("a.json"), load_study("b.json")])

Lower-level quickstart::

    from repro import parse_query, classify_shape, canonical_graph
    query = parse_query("ASK WHERE { ?x <urn:p> ?y . ?y <urn:p> ?x }")
    shape = classify_shape(canonical_graph(query.pattern))
    assert shape.cycle
"""

from .analysis import (
    canonical_graph,
    canonical_hypergraph,
    classify_fragments,
    classify_operators,
    classify_path,
    classify_shape,
    extract_features,
    find_streaks,
    hypertree_width,
    treewidth,
)
from .analysis.parallel import (
    build_query_log_parallel,
    build_query_logs_parallel,
    measure_chunk,
    merge_shards,
    study_corpus_parallel,
)
from .analysis.study import CorpusStudy, DatasetStats, measure_query, study_corpus
# The root exports the facade's merge_studies (dedup inferred from the
# studies themselves); the parallel drivers' lower-level variant stays
# importable from repro.analysis.parallel.
from .api import (
    AnalysisRequest,
    AnalysisResult,
    AnalysisSession,
    CoverageCaveats,
    WatchCycle,
    WatchSession,
    analyze,
    analyze_corpora,
    load_study,
    merge_studies,
    open_warehouse,
    save_study,
)
from .engine import IndexedEngine, NestedLoopEngine
from .exceptions import (
    EvaluationError,
    EvaluationTimeout,
    LogFormatError,
    ReporterRegistrationError,
    ReproError,
    SparqlSyntaxError,
    StudySnapshotError,
    WarehouseError,
    WatchStateError,
    WorkloadError,
)
from .logs import LogShard, ParseCache, QueryLog, build_query_log, process_entries
from .rdf import IRI, BlankNode, Graph, Literal, Triple, Variable
from .reporting import (
    Reporter,
    get_reporter,
    register_reporter,
    render_report,
    reporter_names,
)
from .sparql import parse_query, serialize_query
from .warehouse import StudyWarehouse
from .workload import (
    bib_schema,
    generate_corpus,
    generate_day_log,
    generate_graph,
    generate_workload,
)

__version__ = "1.7.0"

__all__ = [
    "AnalysisRequest",
    "AnalysisResult",
    "AnalysisSession",
    "CoverageCaveats",
    "WatchCycle",
    "WatchSession",
    "WatchStateError",
    "analyze",
    "analyze_corpora",
    "load_study",
    "open_warehouse",
    "save_study",
    "StudySnapshotError",
    "StudyWarehouse",
    "WarehouseError",
    "Reporter",
    "get_reporter",
    "register_reporter",
    "render_report",
    "reporter_names",
    "canonical_graph",
    "canonical_hypergraph",
    "classify_fragments",
    "classify_operators",
    "classify_path",
    "classify_shape",
    "extract_features",
    "find_streaks",
    "hypertree_width",
    "treewidth",
    "CorpusStudy",
    "DatasetStats",
    "measure_query",
    "study_corpus",
    "build_query_log_parallel",
    "build_query_logs_parallel",
    "measure_chunk",
    "merge_shards",
    "merge_studies",
    "study_corpus_parallel",
    "IndexedEngine",
    "NestedLoopEngine",
    "EvaluationError",
    "EvaluationTimeout",
    "LogFormatError",
    "ReporterRegistrationError",
    "ReproError",
    "SparqlSyntaxError",
    "WorkloadError",
    "LogShard",
    "ParseCache",
    "QueryLog",
    "build_query_log",
    "process_entries",
    "Graph",
    "IRI",
    "BlankNode",
    "Literal",
    "Triple",
    "Variable",
    "parse_query",
    "serialize_query",
    "bib_schema",
    "generate_corpus",
    "generate_day_log",
    "generate_graph",
    "generate_workload",
    "__version__",
]
