"""``python -m repro`` entry point.

Paper mapping: the command-line surface over every reproduced table and
figure (`repro --help`).
"""

import sys

from .cli import main

sys.exit(main())
