"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze FILE [FILE...]`` — run the paper's full study over files of
  SPARQL queries (one query per line with ``\\n`` escapes, blank-line
  separated blocks, or Apache access-log lines) and print the tables.
* ``corpus --scale S --out DIR`` — generate the calibrated synthetic
  corpus, one ``.log`` file of access-log lines per dataset.
* ``figure3 [--nodes N] [--timeout T]`` — run the chain/cycle engine
  experiment and print Figure 3.
* ``streaks FILE|--synthetic N`` — detect streaks (Table 6) in an
  ordered query log.

The CLI is a thin veneer over the public API; every command is covered
by the test suite through :func:`main`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis import find_streaks, streak_length_histogram
from .analysis.context import DEFAULT_SHAPE_NODE_LIMIT, AnalysisOptions
from .analysis.parallel import build_query_logs_parallel
from .analysis.passes import PASS_NAMES, resolve_passes
from .analysis.study import study_corpus
from .engine import IndexedEngine, NestedLoopEngine
from .logs import (
    ParseCache,
    build_query_log,
    dataset_name,
    encode_access_log_line,
    iter_entries,
    read_entries,
)
from .reporting import (
    render_figure3,
    render_pass_profile,
    render_study,
    render_table6,
)
from .workload import (
    bib_schema,
    generate_corpus,
    generate_day_log,
    generate_graph,
    generate_workload,
)

__all__ = ["main", "read_query_file"]


def read_query_file(path: Path) -> List[str]:
    """Read queries from *path* (a file, gzip file, or log directory).

    Delegates to :mod:`repro.logs.sources`: the format is auto-detected
    (access-log lines, one query per line with literal ``\\n`` escapes,
    or blank-line separated multi-line queries) and gzip input is
    decompressed transparently.
    """
    return read_entries(path)


def _cmd_analyze(args: argparse.Namespace) -> int:
    metrics = None
    if args.metrics is not None:
        metrics = tuple(
            name.strip() for name in args.metrics.split(",") if name.strip()
        )
        if not metrics:
            print(
                f"analyze: --metrics selects no passes; "
                f"available: {', '.join(PASS_NAMES)}",
                file=sys.stderr,
            )
            return 2
        try:
            # Validation lives in one place: the registry resolver.
            resolve_passes(metrics)
        except ValueError as error:
            print(f"analyze: {error}", file=sys.stderr)
            return 2
    options = AnalysisOptions(
        metrics=metrics,
        shape_node_limit=args.shape_node_limit,
        profile=args.profile_passes,
    )
    paths = [Path(file_name) for file_name in args.files]
    seen: dict = {}
    for path in paths:
        name = dataset_name(path)
        if name in seen:
            # A dict of corpora would silently drop the first file.
            print(
                f"analyze: inputs {seen[name]} and {path} both map to "
                f"dataset name {name!r}; rename one",
                file=sys.stderr,
            )
            return 2
        seen[name] = path
    # --stream: lazy ingestion, entries are chunked straight off disk
    # with bounded in-flight chunks — peak memory is O(workers × chunk),
    # not O(log size).  Identical output to the in-memory path.
    corpora = {
        dataset_name(path): iter_entries(path) if args.stream else read_query_file(path)
        for path in paths
    }
    if args.stream or args.workers != 1:
        # One pool over all files: small logs share the worker start-up.
        logs = build_query_logs_parallel(
            corpora, workers=args.workers, chunk_size=args.chunk_size
        )
    else:
        # One parse cache across all files: duplicate-heavy logs (and
        # texts recurring across endpoint logs) skip re-parsing.
        cache = ParseCache()
        logs = {
            name: build_query_log(name, queries, cache=cache)
            for name, queries in corpora.items()
        }
    study = study_corpus(
        logs,
        dedup=not args.keep_duplicates,
        workers=args.workers,
        chunk_size=args.chunk_size,
        options=options,
    )
    print(render_study(study, logs))
    if args.profile_passes and study.pass_profile is not None:
        print()
        print(render_pass_profile(study.pass_profile))
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    corpus = generate_corpus(scale=args.scale, seed=args.seed)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, queries in corpus.items():
        safe = name.replace("/", "_")
        path = out_dir / f"{safe}.log"
        with path.open("w", encoding="utf-8") as handle:
            for query in queries:
                handle.write(encode_access_log_line(query) + "\n")
        print(f"wrote {len(queries):>6} entries to {path}")
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    schema = bib_schema()
    graph = generate_graph(schema, args.nodes, seed=args.seed)
    print(f"graph: {len(graph):,} triples")
    engines = {
        "BG": IndexedEngine(graph, timeout=args.timeout),
        "PG": NestedLoopEngine(graph, timeout=args.timeout),
    }
    results = []
    for length in args.lengths:
        for shape in ("chain", "cycle"):
            workload = generate_workload(
                schema, shape, length, args.queries, seed=length
            )
            texts = [q.text for q in workload]
            for engine in engines.values():
                results.append(
                    engine.run_workload(texts, label=f"{shape}-W{length}")
                )
    print(render_figure3(results))
    return 0


def _cmd_streaks(args: argparse.Namespace) -> int:
    if args.synthetic:
        queries: Sequence[str] = generate_day_log(
            n_queries=args.synthetic, seed=args.seed
        )
        name = f"synthetic-{args.synthetic}"
    else:
        if not args.file:
            print("streaks: provide FILE or --synthetic N", file=sys.stderr)
            return 2
        path = Path(args.file)
        queries = read_query_file(path)
        name = path.stem
    streaks = find_streaks(queries, window=args.window, threshold=args.threshold)
    histogram = streak_length_histogram(streaks)
    print(render_table6({name: histogram}))
    if streaks:
        longest = max(s.length for s in streaks)
        print(f"\nlongest streak: {longest} queries")
    return 0


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return number


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analytics for SPARQL query logs (VLDB 2017 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="run the full study on query files")
    analyze.add_argument(
        "files",
        nargs="+",
        help="query/log files (one log each; plain or gzip) or log directories",
    )
    analyze.add_argument(
        "--keep-duplicates",
        action="store_true",
        help="analyze the Valid corpus instead of the Unique one (appendix mode)",
    )
    analyze.add_argument(
        "--stream",
        action="store_true",
        help="stream entries lazily from disk with bounded in-flight chunks "
        "(peak memory O(workers x chunk-size); output identical to the "
        "in-memory pass)",
    )
    analyze.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for parsing and measuring "
        "(output is identical to the serial pass)",
    )
    analyze.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="entries per shard (default: ~4 chunks per worker, or "
        "1024 when streaming)",
    )
    analyze.add_argument(
        "--metrics",
        default=None,
        metavar="PASS[,PASS...]",
        help="comma-separated analyzer passes to run "
        f"(default: all of {', '.join(PASS_NAMES)}); tables owned by "
        "unselected passes render with zero counts",
    )
    analyze.add_argument(
        "--shape-node-limit",
        type=_positive_int,
        default=DEFAULT_SHAPE_NODE_LIMIT,
        metavar="N",
        help="skip shape/treewidth analysis for canonical graphs with "
        f"more than N nodes (default {DEFAULT_SHAPE_NODE_LIMIT}; skipped "
        "queries are counted and reported)",
    )
    analyze.add_argument(
        "--profile-passes",
        action="store_true",
        help="print per-pass wall time and structural-cache hit rate "
        "after the report",
    )
    analyze.set_defaults(func=_cmd_analyze)

    corpus = commands.add_parser("corpus", help="generate the synthetic corpus")
    corpus.add_argument("--scale", type=float, default=1e-5)
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument("--out", default="corpus-out")
    corpus.set_defaults(func=_cmd_corpus)

    figure3 = commands.add_parser("figure3", help="chain vs cycle engine experiment")
    figure3.add_argument("--nodes", type=int, default=1500)
    figure3.add_argument("--timeout", type=float, default=2.0)
    figure3.add_argument("--queries", type=int, default=5)
    figure3.add_argument(
        "--lengths", type=int, nargs="+", default=[3, 4, 5, 6]
    )
    figure3.add_argument("--seed", type=int, default=1)
    figure3.set_defaults(func=_cmd_figure3)

    streaks = commands.add_parser("streaks", help="detect streaks (Table 6)")
    streaks.add_argument("file", nargs="?", help="ordered query log file")
    streaks.add_argument("--synthetic", type=int, default=0, metavar="N")
    streaks.add_argument("--window", type=int, default=30)
    streaks.add_argument("--threshold", type=float, default=0.25)
    streaks.add_argument("--seed", type=int, default=0)
    streaks.set_defaults(func=_cmd_streaks)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
