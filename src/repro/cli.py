"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze FILE [FILE...]`` — run the paper's full study over files of
  SPARQL queries (one query per line with ``\\n`` escapes, blank-line
  separated blocks, or Apache access-log lines) and report it in any
  registered format (``--format``); ``--save-study`` checkpoints the
  study as a portable JSON snapshot.
* ``merge STUDY.json [STUDY.json...]`` — combine saved study snapshots
  (e.g. from different machines or shards) into one.
* ``report STUDY.json`` — render a saved snapshot in any format.
* ``corpus --scale S --out DIR`` — generate the calibrated synthetic
  corpus, one ``.log`` file of access-log lines per dataset.
* ``figure3 [--nodes N] [--timeout T]`` — run the chain/cycle engine
  experiment and print Figure 3.
* ``streaks FILE|--synthetic N`` — detect streaks (Table 6) in an
  ordered query log.
* ``watch FILE [FILE...] --state DIR`` — incremental always-on
  analysis: tail growing logs with resumable cursors, fold each new
  suffix into a checkpointed study, and print a diff report per cycle
  (what changed in Tables 1–6); killing and restarting resumes from
  the last durable checkpoint.
* ``cache stats|clear PATH`` — inspect or empty a persistent structure
  cache written by ``analyze --structure-cache``.
* ``warehouse ingest|query|stats`` — maintain and query a persistent
  study warehouse (a SQLite file study snapshots are upserted into);
  queries are answered from the warehouse without re-running analysis.
* ``serve WAREHOUSE`` — serve a warehouse over HTTP with paginated
  JSON endpoints (stdlib ``http.server``; no extra dependencies).

The CLI is a thin veneer over :mod:`repro.api`; every command is
covered by the test suite through :func:`main`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis.context import DEFAULT_SHAPE_NODE_LIMIT, DEFAULT_STRUCTURE_CACHE_SIZE
from .analysis.passes import PASS_NAMES, SEQUENCE_PASS_NAMES
from .analysis.structure_store import StructureStore
from .analysis.streaks import DEFAULT_STREAK_THRESHOLD, DEFAULT_STREAK_WINDOW
from .api import (
    AnalysisRequest,
    AnalysisSession,
    CorpusStudy,
    WatchSession,
    load_study,
    save_study,
)
from .engine import IndexedEngine, NestedLoopEngine
from .exceptions import StudySnapshotError, WarehouseError, WatchStateError
from .warehouse import StudyWarehouse
from .logs import encode_access_log_line, read_entries
from .reporting import (
    get_reporter,
    render_figure3,
    render_pass_profile,
    render_report,
    render_table6_from_study,
    reporter_names,
)
from .workload import (
    bib_schema,
    generate_corpus,
    generate_day_log,
    generate_graph,
    generate_workload,
)

__all__ = ["main", "read_query_file"]


def read_query_file(path: Path) -> List[str]:
    """Deprecated alias of :func:`repro.logs.read_entries`.

    Kept one release for callers of the pre-facade CLI module; new code
    should use :func:`repro.logs.read_entries` (same behavior: format
    auto-detection, gzip, log directories).
    """
    warnings.warn(
        "repro.cli.read_query_file is deprecated; "
        "use repro.logs.read_entries instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return read_entries(path)


def _emit(output: str) -> None:
    """Write a rendered report to stdout with exactly one trailing newline."""
    if not output.endswith("\n"):
        output += "\n"
    sys.stdout.write(output)


def _cmd_analyze(args: argparse.Namespace) -> int:
    metrics = None
    if args.metrics is not None:
        metrics = tuple(
            name.strip() for name in args.metrics.split(",") if name.strip()
        )
        if not metrics:
            print(
                f"analyze: --metrics selects no passes; "
                f"available: {', '.join(PASS_NAMES)}",
                file=sys.stderr,
            )
            return 2
    try:
        get_reporter(args.format)
    except ValueError as error:
        print(f"analyze: {error}", file=sys.stderr)
        return 2
    request = AnalysisRequest(
        inputs=tuple(args.files),
        dedup=not args.keep_duplicates,
        metrics=metrics,
        shape_node_limit=args.shape_node_limit,
        cache_size=args.cache_size,
        profile=args.profile_passes,
        stream=args.stream,
        workers=args.workers,
        chunk_size=args.chunk_size,
        streak_window=args.streak_window,
        streak_threshold=args.streak_threshold,
        lean=args.lean,
        structure_cache_path=args.structure_cache,
    )
    try:
        with AnalysisSession() as session:
            result = session.run(request)
    except (ValueError, OSError) as error:
        # Bad options and unreadable inputs exit the same way: code 2
        # with a one-line message, never a traceback.
        print(f"analyze: {error}", file=sys.stderr)
        return 2
    if args.save_study:
        try:
            result.save(args.save_study)
        except OSError as error:
            print(f"analyze: cannot write study snapshot: {error}", file=sys.stderr)
            return 2
    _emit(result.render(args.format))
    if args.profile_passes and result.profile is not None and args.format == "text":
        print()
        print(render_pass_profile(result.profile))
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    # Load-and-merge one snapshot at a time (same semantics and bytes
    # as `merge_studies`, bounded memory) so every failure names the
    # offending file: with a dozen shards on the command line, "schema
    # version 99" alone is not actionable.
    merged: Optional[CorpusStudy] = None
    for path in args.studies:
        try:
            study = load_study(path)
        except (StudySnapshotError, OSError) as error:
            print(f"merge: {path}: {error}", file=sys.stderr)
            return 2
        try:
            if merged is None:
                merged = CorpusStudy(dedup=study.dedup)
            merged.merge(study)
        except ValueError as error:
            print(f"merge: {path}: {error}", file=sys.stderr)
            return 2
    if args.out:
        try:
            save_study(merged, args.out)
        except OSError as error:
            print(f"merge: cannot write {args.out}: {error}", file=sys.stderr)
            return 2
        print(
            f"wrote merged study of {len(merged.datasets)} dataset(s) "
            f"to {args.out}"
        )
    else:
        # The registry's json reporter IS the snapshot format; going
        # through it keeps `repro merge` stdout byte-identical to
        # `repro report --format json` by construction.
        _emit(render_report(merged, "json"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        reporter = get_reporter(args.format)
    except ValueError as error:
        print(f"report: {error}", file=sys.stderr)
        return 2
    try:
        study = load_study(args.study)
    except (StudySnapshotError, OSError) as error:
        print(f"report: {error}", file=sys.stderr)
        return 2
    _emit(reporter.render(study))
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    corpus = generate_corpus(scale=args.scale, seed=args.seed)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, queries in corpus.items():
        safe = name.replace("/", "_")
        path = out_dir / f"{safe}.log"
        with path.open("w", encoding="utf-8") as handle:
            for query in queries:
                handle.write(encode_access_log_line(query) + "\n")
        print(f"wrote {len(queries):>6} entries to {path}")
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    schema = bib_schema()
    graph = generate_graph(schema, args.nodes, seed=args.seed)
    print(f"graph: {len(graph):,} triples")
    engines = {
        "BG": IndexedEngine(graph, timeout=args.timeout),
        "PG": NestedLoopEngine(graph, timeout=args.timeout),
    }
    results = []
    for length in args.lengths:
        for shape in ("chain", "cycle"):
            workload = generate_workload(
                schema, shape, length, args.queries, seed=length
            )
            texts = [q.text for q in workload]
            for engine in engines.values():
                results.append(
                    engine.run_workload(texts, label=f"{shape}-W{length}")
                )
    print(render_figure3(results))
    return 0


def _cmd_streaks(args: argparse.Namespace) -> int:
    """Thin wrapper over the facade: ``repro streaks`` is ``repro
    analyze --metrics streaks`` printing only the Table 6 block."""
    common = dict(
        metrics=("streaks",),
        streak_window=args.window,
        streak_threshold=args.threshold,
        workers=args.workers,
        chunk_size=args.chunk_size,
        # Sequence-only → lean ingestion by default; --full-ingestion
        # restores the parse/dedup pipeline (identical Table 6 bytes).
        lean=False if args.full_ingestion else None,
    )
    if args.synthetic:
        queries: Sequence[str] = generate_day_log(
            n_queries=args.synthetic, seed=args.seed
        )
        name = f"synthetic-{args.synthetic}"
        request = AnalysisRequest(corpora={name: queries}, **common)  # type: ignore[arg-type]
    else:
        if not args.file:
            print("streaks: provide FILE or --synthetic N", file=sys.stderr)
            return 2
        request = AnalysisRequest(inputs=(args.file,), **common)  # type: ignore[arg-type]
    try:
        with AnalysisSession() as session:
            result = session.run(request)
    except (ValueError, OSError) as error:
        print(f"streaks: {error}", file=sys.stderr)
        return 2
    block = render_table6_from_study(result.study)
    if block is None:  # pragma: no cover - the metric always attaches state
        print("streaks: no streak state was produced", file=sys.stderr)
        return 2
    print(block)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """Incremental always-on analysis over growing logs."""
    metrics = None
    if args.metrics is not None:
        metrics = tuple(
            name.strip() for name in args.metrics.split(",") if name.strip()
        )
        if not metrics:
            print(
                f"watch: --metrics selects no passes; "
                f"available: {', '.join(PASS_NAMES)}",
                file=sys.stderr,
            )
            return 2
    try:
        session = WatchSession(
            tuple(args.files),
            args.state,
            metrics=metrics,
            streak_window=args.streak_window,
            streak_threshold=args.streak_threshold,
            shape_node_limit=args.shape_node_limit,
            warehouse_path=args.warehouse,
        )
    except (ValueError, WatchStateError, OSError) as error:
        print(f"watch: {error}", file=sys.stderr)
        return 2
    remaining = args.cycles  # 0 means: run until interrupted
    try:
        while True:
            drain = remaining == 1 and not args.no_drain
            outcome = session.cycle(drain=drain)
            print(
                f"cycle {outcome.generation}: "
                f"{outcome.total_new} new entries"
                + (" (drained)" if drain else "")
            )
            if outcome.diff:
                _emit(outcome.diff)
            if remaining:
                remaining -= 1
                if not remaining:
                    break
            if args.interval > 0:
                time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    except (ValueError, WatchStateError, StudySnapshotError, OSError) as error:
        print(f"watch: {error}", file=sys.stderr)
        return 2
    print(f"study checkpoint: {session.study_path}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect (`stats`) or empty (`clear`) a persistent structure cache."""
    path = Path(args.store)
    if not path.exists():
        print(f"cache: {args.store}: no such file", file=sys.stderr)
        return 2
    if args.action == "stats":
        store = StructureStore.open(path, readonly=True)
        if store is None:
            print(f"cache: {args.store} is not a usable structure cache",
                  file=sys.stderr)
            return 2
        stats = store.stats()
        store.close()
        print(f"store:           {stats['path']}")
        print(f"store schema:    {stats['store_schema']}")
        print(f"code version:    {stats['code_version']}")
        print(f"entries:         {stats['entries']:,} "
              f"({stats['size_bytes']:,} bytes on disk)")
        print(f"  current:       {stats['current']:,} "
              f"(graphs {stats['graph_entries']:,}, "
              f"hypergraphs {stats['hypergraph_entries']:,})")
        print(f"  stale:         {stats['stale']:,} "
              "(other code versions; never served)")
        return 0
    # clear: a corrupt store can't be opened, but clearing one is
    # exactly what its owner wants — remove the files wholesale.
    store = StructureStore.open(path)
    if store is None:
        for extra in ("", "-wal", "-shm", ".meta.json"):
            Path(str(path) + extra).unlink(missing_ok=True)
        print(f"removed unusable cache {args.store}")
        return 0
    removed = store.clear()
    store.close()
    print(f"cleared {removed:,} entries from {args.store}")
    return 0


def _emit_page(total: int, items: List[dict]) -> None:
    """Print one page of warehouse query results as indented JSON."""
    _emit(json.dumps({"total": total, "items": items}, indent=2))


def _cmd_warehouse_ingest(args: argparse.Namespace) -> int:
    try:
        with StudyWarehouse.open(args.store) as warehouse:
            for path in args.studies:
                try:
                    study = load_study(path)
                except (StudySnapshotError, OSError) as error:
                    print(f"warehouse: {path}: {error}", file=sys.stderr)
                    return 2
                outcome = warehouse.ingest(study, source=str(path))
                print(f"{outcome:>9}  {path}")
            stats = warehouse.stats()
    except WarehouseError as error:
        print(f"warehouse: {error}", file=sys.stderr)
        return 2
    print(
        f"warehouse holds {stats['datasets']} dataset(s) "
        f"from {stats['ingests']} snapshot(s)"
    )
    return 0


def _cmd_warehouse_query(args: argparse.Namespace) -> int:
    if args.dataset is not None and args.table is None:
        print("warehouse: --dataset requires --table", file=sys.stderr)
        return 2
    try:
        get_reporter(args.format)
    except ValueError as error:
        print(f"warehouse: {error}", file=sys.stderr)
        return 2
    try:
        with StudyWarehouse.open(args.store, readonly=True) as warehouse:
            if args.search is not None:
                total, items = warehouse.search(
                    args.search, limit=args.limit, offset=args.offset
                )
                _emit_page(total, items)
            elif args.datasets:
                total, items = warehouse.datasets(
                    limit=args.limit, offset=args.offset
                )
                _emit_page(total, items)
            elif args.streaks:
                total, items = warehouse.streak_histograms(
                    limit=args.limit, offset=args.offset
                )
                _emit_page(total, items)
            elif args.caveats:
                _emit(json.dumps(warehouse.caveats(), indent=2))
            elif args.table is not None:
                if args.dataset is not None:
                    total, items = warehouse.table_cells(
                        args.table,
                        dataset=args.dataset,
                        limit=args.limit,
                        offset=args.offset,
                    )
                    _emit_page(total, items)
                else:
                    # The corpus-wide text block is a byte-exact slice
                    # of the full `repro report` document.
                    _emit(warehouse.table_text(args.table))
            else:
                _emit(warehouse.render(args.format))
    except WarehouseError as error:
        print(f"warehouse: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_warehouse_stats(args: argparse.Namespace) -> int:
    try:
        with StudyWarehouse.open(args.store, readonly=True) as warehouse:
            stats = warehouse.stats()
            log = warehouse.ingest_log()
    except WarehouseError as error:
        print(f"warehouse: {error}", file=sys.stderr)
        return 2
    print(f"warehouse:       {stats['path']}")
    print(f"schema:          {stats['warehouse_schema']}")
    print(f"generation:      {stats['generation']}")
    print(f"text search:     {stats['fts']}")
    print(f"corpus:          {stats['corpus'] or '(empty)'}")
    print(f"snapshots:       {stats['ingests']:,}")
    print(f"datasets:        {stats['datasets']:,}")
    print(f"table cells:     {stats['cells']:,}")
    print(f"query texts:     {stats['query_texts']:,}")
    print(f"size on disk:    {stats['size_bytes']:,} bytes")
    for entry in log:
        print(f"  [{entry['seq']}] {entry['source']}: "
              f"{', '.join(entry['datasets'])} ({entry['queries']:,} queries)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .warehouse.service import start_server

    try:
        server = start_server(
            args.store, host=args.host, port=args.port, verbose=args.verbose
        )
    except WarehouseError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"serve: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    print(f"serving {args.store} at {server.url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.close()
    return 0


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return number


def _workers_arg(value: str):
    """``--workers``: a positive integer, or ``auto`` for all CPUs."""
    if value.strip().lower() == "auto":
        return "auto"
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 or 'auto', got {value}"
        ) from None
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1 or 'auto', got {value}")
    return number


def _nonnegative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return number


def _distribution_version() -> str:
    """Installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def _add_format_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        default="text",
        metavar="FMT",
        help="report format: one of "
        f"{', '.join(reporter_names())} (default: text)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analytics for SPARQL query logs (VLDB 2017 reproduction).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_distribution_version()}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="run the full study on query files")
    analyze.add_argument(
        "files",
        nargs="+",
        help="query/log files (one log each; plain or gzip) or log directories",
    )
    analyze.add_argument(
        "--keep-duplicates",
        action="store_true",
        help="analyze the Valid corpus instead of the Unique one (appendix mode)",
    )
    analyze.add_argument(
        "--stream",
        action="store_true",
        help="stream entries lazily from disk with bounded in-flight chunks "
        "(peak memory O(workers x chunk-size); output identical to the "
        "in-memory pass)",
    )
    analyze.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        metavar="N",
        help="worker processes for parsing and measuring, or 'auto' for "
        "all CPUs — the recommended setting on multi-core machines "
        "(output is identical to the serial pass)",
    )
    analyze.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="entries per shard (default: adaptive — chunks start small "
        "and grow toward ~8 per worker, capped at 1024 when streaming)",
    )
    analyze.add_argument(
        "--metrics",
        default=None,
        metavar="PASS[,PASS...]",
        help="comma-separated analyzer passes to run "
        f"(default: all of {', '.join(PASS_NAMES)}); tables owned by "
        "unselected passes render with zero counts; sequence passes "
        f"({', '.join(SEQUENCE_PASS_NAMES)}) are opt-in by name and scan "
        "the ordered raw stream during ingestion",
    )
    analyze.add_argument(
        "--streak-window",
        type=_positive_int,
        default=DEFAULT_STREAK_WINDOW,
        metavar="N",
        help="streak lookbehind window for `--metrics streaks` "
        f"(default {DEFAULT_STREAK_WINDOW}, the paper's setting)",
    )
    analyze.add_argument(
        "--streak-threshold",
        type=float,
        default=DEFAULT_STREAK_THRESHOLD,
        metavar="X",
        help="normalized-Levenshtein similarity threshold for "
        f"`--metrics streaks` (default {DEFAULT_STREAK_THRESHOLD})",
    )
    lean_group = analyze.add_mutually_exclusive_group()
    lean_group.add_argument(
        "--lean",
        dest="lean",
        action="store_const",
        const=True,
        default=None,
        help="skip SPARQL parsing, deduplication and AST retention "
        "during ingestion; requires a sequence-only --metrics selection "
        "(e.g. --metrics streaks).  The default already ingests leanly "
        "for such selections — this flag makes it an explicit, "
        "validated assertion.  Valid/Unique report 0 in lean runs",
    )
    lean_group.add_argument(
        "--full-ingestion",
        dest="lean",
        action="store_const",
        const=False,
        help="force the full clean -> parse -> dedup pipeline even for "
        "sequence-only --metrics selections (restores Valid/Unique "
        "counts at full ingestion cost; streak output is identical)",
    )
    analyze.add_argument(
        "--shape-node-limit",
        type=_positive_int,
        default=DEFAULT_SHAPE_NODE_LIMIT,
        metavar="N",
        help="skip shape/treewidth analysis for canonical graphs with "
        f"more than N nodes (default {DEFAULT_SHAPE_NODE_LIMIT}; skipped "
        "queries are counted and reported)",
    )
    analyze.add_argument(
        "--cache-size",
        type=_nonnegative_int,
        default=DEFAULT_STRUCTURE_CACHE_SIZE,
        metavar="N",
        help="capacity of the in-memory structural-signature cache "
        f"(default {DEFAULT_STRUCTURE_CACHE_SIZE}; 0 disables it — the "
        "cache is transparent, so results are identical either way)",
    )
    analyze.add_argument(
        "--structure-cache",
        default=None,
        metavar="PATH",
        help="persist structural results (shape/treewidth/hypertree per "
        "signature) to a SQLite store at PATH, shared across runs: warm "
        "runs serve repeated shapes from disk and are byte-identical to "
        "cold ones.  Inspect with `repro cache stats`; an unusable file "
        "degrades to a cold run with a warning",
    )
    analyze.add_argument(
        "--profile-passes",
        action="store_true",
        help="print per-pass wall time and structural-cache hit rate "
        "after the report (text format only)",
    )
    analyze.add_argument(
        "--save-study",
        default=None,
        metavar="PATH",
        help="also write the study as a versioned JSON snapshot — a "
        ".gz suffix gzip-compresses it (reload with `repro report`, "
        "combine with `repro merge`, ingest with `repro warehouse`)",
    )
    _add_format_option(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    merge = commands.add_parser(
        "merge", help="combine saved study snapshots into one"
    )
    merge.add_argument(
        "studies",
        nargs="+",
        metavar="STUDY.json",
        help="snapshots written by `repro analyze --save-study` (merged "
        "in argument order, which fixes tie-breaking in the tables)",
    )
    merge.add_argument(
        "--out",
        "-o",
        default=None,
        metavar="PATH",
        help="write the merged snapshot here (default: print JSON to stdout)",
    )
    merge.set_defaults(func=_cmd_merge)

    report = commands.add_parser(
        "report", help="render a saved study snapshot"
    )
    report.add_argument(
        "study",
        metavar="STUDY.json",
        help="a snapshot written by `repro analyze --save-study` or `repro merge`",
    )
    _add_format_option(report)
    report.set_defaults(func=_cmd_report)

    watch = commands.add_parser(
        "watch",
        help="incremental always-on analysis: tail growing logs into a "
        "checkpointed study with per-cycle diff reports",
    )
    watch.add_argument(
        "files",
        nargs="+",
        help="query/log files (plain or gzip) or log directories to tail "
        "(one dataset each, like `analyze`)",
    )
    watch.add_argument(
        "--state",
        required=True,
        metavar="DIR",
        help="state directory holding the resumable checkpoint "
        "(checkpoint.json + study.json; created on first use, resumed "
        "on every later run)",
    )
    watch.add_argument(
        "--cycles",
        type=_nonnegative_int,
        default=1,
        metavar="N",
        help="number of ingest cycles to run (default 1; 0 runs until "
        "interrupted)",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="sleep between cycles (default 2.0; ignored after the last)",
    )
    watch.add_argument(
        "--no-drain",
        action="store_true",
        help="leave an unterminated final line/block for the next run "
        "instead of consuming it on the last scheduled cycle",
    )
    watch.add_argument(
        "--metrics",
        default=None,
        metavar="PASS[,PASS...]",
        help="analyzer passes to run, fixed at the first checkpoint "
        f"(default: all of {', '.join(PASS_NAMES)}; resuming with a "
        "different selection is an error)",
    )
    watch.add_argument(
        "--streak-window",
        type=_positive_int,
        default=DEFAULT_STREAK_WINDOW,
        metavar="N",
        help="streak lookbehind window for `--metrics streaks` "
        f"(default {DEFAULT_STREAK_WINDOW})",
    )
    watch.add_argument(
        "--streak-threshold",
        type=float,
        default=DEFAULT_STREAK_THRESHOLD,
        metavar="X",
        help="normalized-Levenshtein similarity threshold for "
        f"`--metrics streaks` (default {DEFAULT_STREAK_THRESHOLD})",
    )
    watch.add_argument(
        "--shape-node-limit",
        type=_positive_int,
        default=DEFAULT_SHAPE_NODE_LIMIT,
        metavar="N",
        help="skip shape/treewidth analysis above N canonical-graph "
        f"nodes (default {DEFAULT_SHAPE_NODE_LIMIT})",
    )
    watch.add_argument(
        "--warehouse",
        default=None,
        metavar="PATH",
        help="also ingest each cycle's delta into this study warehouse "
        "(created if missing; the warehouse then tracks the checkpoint)",
    )
    watch.set_defaults(func=_cmd_watch)

    cache = commands.add_parser(
        "cache",
        help="inspect or clear a persistent structure cache "
        "(see `analyze --structure-cache`)",
    )
    cache.add_argument(
        "action",
        choices=("stats", "clear"),
        help="stats: entry counts by kind and code version; "
        "clear: delete every entry (all code versions)",
    )
    cache.add_argument(
        "store",
        metavar="PATH",
        help="a store file written by `repro analyze --structure-cache`",
    )
    cache.set_defaults(func=_cmd_cache)

    warehouse = commands.add_parser(
        "warehouse",
        help="maintain and query a persistent study warehouse "
        "(a SQLite file of ingested study snapshots)",
    )
    warehouse_commands = warehouse.add_subparsers(
        dest="warehouse_command", required=True
    )

    wh_ingest = warehouse_commands.add_parser(
        "ingest",
        help="upsert study snapshots into a warehouse (idempotent per "
        "snapshot; the file is created on first use)",
    )
    wh_ingest.add_argument(
        "store",
        metavar="WAREHOUSE",
        help="the warehouse file (created if missing)",
    )
    wh_ingest.add_argument(
        "studies",
        nargs="+",
        metavar="STUDY.json",
        help="snapshots written by `repro analyze --save-study` or "
        "`repro merge --out` (plain or gzip)",
    )
    wh_ingest.set_defaults(func=_cmd_warehouse_ingest)

    wh_query = warehouse_commands.add_parser(
        "query",
        help="answer report/table/search queries from a warehouse "
        "without re-running any analysis",
    )
    wh_query.add_argument(
        "store", metavar="WAREHOUSE", help="a warehouse file"
    )
    selector = wh_query.add_mutually_exclusive_group()
    selector.add_argument(
        "--table",
        type=_positive_int,
        default=None,
        metavar="N",
        help="print one table (1-6): the byte-exact text block of the "
        "full report, or dataset-scoped JSON cells with --dataset",
    )
    selector.add_argument(
        "--datasets",
        action="store_true",
        help="list per-dataset pipeline counters as JSON",
    )
    selector.add_argument(
        "--streaks",
        action="store_true",
        help="print per-dataset streak histograms (Table 6 data) as JSON",
    )
    selector.add_argument(
        "--caveats",
        action="store_true",
        help="print coverage-caveat counters as JSON",
    )
    selector.add_argument(
        "--search",
        default=None,
        metavar="TERM",
        help="full-text search over the query texts the studies carry",
    )
    wh_query.add_argument(
        "--dataset",
        default=None,
        metavar="NAME",
        help="with --table: JSON cells scoped to one dataset",
    )
    wh_query.add_argument(
        "--limit",
        type=_positive_int,
        default=50,
        metavar="N",
        help="page size for list output (default 50)",
    )
    wh_query.add_argument(
        "--offset",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="page offset for list output (default 0)",
    )
    _add_format_option(wh_query)
    wh_query.set_defaults(func=_cmd_warehouse_query)

    wh_stats = warehouse_commands.add_parser(
        "stats", help="print warehouse-level facts and the ingest log"
    )
    wh_stats.add_argument(
        "store", metavar="WAREHOUSE", help="a warehouse file"
    )
    wh_stats.set_defaults(func=_cmd_warehouse_stats)

    serve = commands.add_parser(
        "serve",
        help="serve a study warehouse over HTTP (paginated JSON "
        "endpoints; stdlib http.server, no extra dependencies)",
    )
    serve.add_argument(
        "store", metavar="WAREHOUSE", help="a warehouse file"
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="HOST",
        help="address to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=_nonnegative_int,
        default=8080,
        metavar="PORT",
        help="port to bind (default 8080; 0 picks a free port)",
    )
    serve.add_argument(
        "--verbose",
        action="store_true",
        help="log each request to stderr",
    )
    serve.set_defaults(func=_cmd_serve)

    corpus = commands.add_parser("corpus", help="generate the synthetic corpus")
    corpus.add_argument("--scale", type=float, default=1e-5)
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument("--out", default="corpus-out")
    corpus.set_defaults(func=_cmd_corpus)

    figure3 = commands.add_parser("figure3", help="chain vs cycle engine experiment")
    figure3.add_argument("--nodes", type=int, default=1500)
    figure3.add_argument("--timeout", type=float, default=2.0)
    figure3.add_argument("--queries", type=int, default=5)
    figure3.add_argument(
        "--lengths", type=int, nargs="+", default=[3, 4, 5, 6]
    )
    figure3.add_argument("--seed", type=int, default=1)
    figure3.set_defaults(func=_cmd_figure3)

    streaks = commands.add_parser(
        "streaks",
        help="detect streaks (Table 6); shorthand for "
        "`analyze --metrics streaks`",
    )
    streaks.add_argument("file", nargs="?", help="ordered query log file")
    streaks.add_argument("--synthetic", type=int, default=0, metavar="N")
    streaks.add_argument("--window", type=_positive_int, default=DEFAULT_STREAK_WINDOW)
    streaks.add_argument(
        "--threshold", type=float, default=DEFAULT_STREAK_THRESHOLD
    )
    streaks.add_argument("--seed", type=int, default=0)
    streaks.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        metavar="N",
        help="worker processes, or 'auto' for all CPUs (the sharded "
        "scan is byte-identical to the serial one)",
    )
    streaks.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="entries per shard (default: adaptive, sized to the input)",
    )
    streaks.add_argument(
        "--full-ingestion",
        action="store_true",
        help="run the full clean -> parse -> dedup pipeline instead of "
        "the default lean scan (Table 6 output is byte-identical; only "
        "ingestion cost differs)",
    )
    streaks.set_defaults(func=_cmd_streaks)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse *argv* (default ``sys.argv``) and run the command."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
