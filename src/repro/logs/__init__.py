"""Log ingestion: access-log formats, lazy on-disk sources, and the
clean/parse/dedup pipeline.

Paper mapping: the clean -> parse -> dedup pipeline of sec 2 producing
Table 1's Total/Valid/Unique corpora.
"""

from .formats import (
    LogEntry,
    encode_access_log_line,
    iter_queries,
    parse_access_log_line,
)
from .pipeline import (
    LogShard,
    ParseCache,
    ParsedQuery,
    QueryLog,
    build_query_log,
    process_entries,
)
from .sources import (
    dataset_name,
    detect_format,
    iter_entries,
    iter_file_entries,
    open_text,
    read_entries,
    source_paths,
)

__all__ = [
    "LogEntry",
    "encode_access_log_line",
    "iter_queries",
    "parse_access_log_line",
    "LogShard",
    "ParseCache",
    "ParsedQuery",
    "QueryLog",
    "build_query_log",
    "process_entries",
    "dataset_name",
    "detect_format",
    "iter_entries",
    "iter_file_entries",
    "open_text",
    "read_entries",
    "source_paths",
]
