"""Log ingestion: access-log formats and the clean/parse/dedup pipeline."""

from .formats import (
    LogEntry,
    encode_access_log_line,
    iter_queries,
    parse_access_log_line,
)
from .pipeline import (
    LogShard,
    ParseCache,
    ParsedQuery,
    QueryLog,
    build_query_log,
    process_entries,
)

__all__ = [
    "LogEntry",
    "encode_access_log_line",
    "iter_queries",
    "parse_access_log_line",
    "LogShard",
    "ParseCache",
    "ParsedQuery",
    "QueryLog",
    "build_query_log",
    "process_entries",
]
