"""Endpoint log-line formats.

Real SPARQL endpoint logs (the USEWOD and Openlink files the paper
analyzed) are HTTP access logs whose request lines carry the query
URL-encoded in a ``query=`` parameter.  This module round-trips that
format so the pipeline can be exercised end-to-end: raw access-log
lines in, query texts out.
"""

from __future__ import annotations

import re
import urllib.parse
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..exceptions import LogFormatError

__all__ = ["LogEntry", "encode_access_log_line", "parse_access_log_line", "iter_queries"]

_REQUEST_RE = re.compile(
    r'^(?P<host>\S+) \S+ \S+ \[(?P<time>[^\]]*)\] '
    r'"(?P<method>GET|POST) (?P<path>\S+) HTTP/[\d.]+" '
    r"(?P<status>\d{3}) (?P<size>\d+|-)"
)


@dataclass(frozen=True)
class LogEntry:
    """One decoded log line."""

    host: str
    timestamp: str
    method: str
    path: str
    status: int
    query: Optional[str]  # decoded query text, if the line carried one


def encode_access_log_line(
    query: str,
    host: str = "192.0.2.1",
    timestamp: str = "01/Jan/2015:00:00:00 +0000",
    endpoint: str = "/sparql",
    status: int = 200,
) -> str:
    """Render *query* as an Apache-combined-style access-log line."""
    encoded = urllib.parse.quote(query, safe="")
    return (
        f'{host} - - [{timestamp}] '
        f'"GET {endpoint}?query={encoded}&format=json HTTP/1.1" {status} 1234'
    )


def parse_access_log_line(line: str) -> LogEntry:
    """Decode one access-log line.

    Raises :class:`~repro.exceptions.LogFormatError` if the line is not
    an access-log line at all.  Lines without a ``query=`` parameter
    decode with ``query=None`` — these are the "entries that were not
    queries" the paper's cleaning step drops.
    """
    match = _REQUEST_RE.match(line)
    if match is None:
        raise LogFormatError(f"not an access-log line: {line[:80]!r}")
    path = match.group("path")
    query_text: Optional[str] = None
    if "?" in path:
        _, _, query_string = path.partition("?")
        parameters = urllib.parse.parse_qs(query_string, keep_blank_values=True)
        values = parameters.get("query")
        if values:
            query_text = values[0]
    return LogEntry(
        host=match.group("host"),
        timestamp=match.group("time"),
        method=match.group("method"),
        path=path,
        status=int(match.group("status")),
        query=query_text,
    )


def iter_queries(lines: Iterable[str]) -> Iterator[str]:
    """Extract the query texts from access-log *lines*, skipping
    non-query lines (malformed lines are skipped too — cleaning, not
    validation, happens here)."""
    for line in lines:
        try:
            entry = parse_access_log_line(line)
        except LogFormatError:
            continue
        if entry.query is not None:
            yield entry.query
