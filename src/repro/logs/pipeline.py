"""The log-processing pipeline of the paper's §2.

Raw log entries go through three stages:

1. **Cleaning** — entries that are not queries (HTTP requests without a
   ``query=`` parameter, junk lines) are dropped; the survivors make up
   the *Total* column of Table 1.
2. **Parsing** — each candidate query is parsed; parse failures are
   counted, and the parseable queries form the *Valid* column.  (The
   paper used Apache Jena 3.0.1; we use :mod:`repro.sparql`.)
3. **Deduplication** — exact duplicates are removed, yielding the
   *Unique* column on which the paper's main-body analysis runs.

The pipeline is built around the mergeable :class:`LogShard`
accumulator: one shard is the result of running clean → parse → dedup
over a slice of the raw stream, and :meth:`LogShard.merge` combines
shards so the stream can be processed in chunks (possibly on several
worker processes, see :mod:`repro.analysis.parallel`) without changing
the result.  Deduplication is two-phase: each shard keeps a
text → count map, and the maps are merged before the unique stream is
materialized.

The :class:`QueryLog` produced here is the input to every analysis in
:mod:`repro.analysis.study`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..exceptions import SparqlSyntaxError
from ..rdf.namespaces import WELL_KNOWN_PREFIXES
from ..sparql import ast, parse_query

__all__ = [
    "ParsedQuery",
    "ParseCache",
    "LogShard",
    "QueryLog",
    "build_query_log",
    "process_entries",
]


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed query together with its raw text and multiplicity."""

    text: str
    query: ast.Query
    count: int  # occurrences in the Valid stream


class ParseCache:
    """Parse-result cache keyed by query text.

    Real endpoint logs are extremely duplicate-heavy (the paper's Valid
    vs Unique gap in Table 1), so re-parsing the same text is the main
    avoidable cost of the pipeline.  A cache instance can be shared
    across several :func:`build_query_log` calls — e.g. one cache for a
    whole multi-file ``repro analyze`` run.  Entries are keyed by text
    only, so all calls must use the same prefix environment; the cache
    pins the environment of its first parse and raises on a mismatch
    rather than returning ASTs parsed under the wrong prefixes.
    """

    __slots__ = ("_entries", "_prefixes", "_last_prefixes_obj", "hits", "misses")

    def __init__(self) -> None:
        self._entries: Dict[str, Optional[ast.Query]] = {}
        self._prefixes: Optional[Dict[str, str]] = None
        self._last_prefixes_obj: Optional[Dict[str, str]] = None
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, text: str) -> bool:
        return text in self._entries

    def parse(
        self, text: str, prefixes: Optional[Dict[str, str]] = None
    ) -> Optional[ast.Query]:
        """Parse *text* (``None`` for invalid queries), memoized."""
        if prefixes is not self._last_prefixes_obj:
            # One full comparison per distinct mapping object; streams
            # passing the same dict repeatedly take the identity path.
            if self._prefixes is None:
                self._prefixes = dict(prefixes) if prefixes else {}
            elif (prefixes or {}) != self._prefixes:
                raise ValueError(
                    "ParseCache is shared across different prefix environments; "
                    "use a fresh cache per prefix mapping"
                )
            self._last_prefixes_obj = prefixes
        try:
            cached = self._entries[text]
        except KeyError:
            self.misses += 1
        else:
            self.hits += 1
            return cached
        try:
            result: Optional[ast.Query] = parse_query(text, extra_prefixes=prefixes)
        except (SparqlSyntaxError, RecursionError):
            result = None
        self._entries[text] = result
        return result


@dataclass
class LogShard:
    """Mergeable partial result of the clean → parse → dedup pipeline.

    ``order`` records the first-occurrence order of unique valid texts,
    ``counts`` their multiplicities, and ``parsed`` their ASTs.  Merging
    two shards (in stream order) yields exactly the shard the serial
    pipeline would have produced over the concatenated input.
    """

    total: int = 0
    valid: int = 0
    order: List[str] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    parsed: Dict[str, ast.Query] = field(default_factory=dict)
    #: Order-aware accumulators (e.g. streak detection) fed from this
    #: slice of the *raw* entry stream, keyed by sequence-pass name.
    #: Opaque at this layer: anything with a stream-order ``merge`` fits
    #: (see :class:`repro.analysis.passes.SequencePass`).
    sequences: Dict[str, Any] = field(default_factory=dict)

    def merge(self, other: "LogShard") -> "LogShard":
        """Fold *other* (the next slice of the stream) into this shard."""
        self.total += other.total
        self.valid += other.valid
        for text in other.order:
            if text not in self.parsed:
                self.parsed[text] = other.parsed[text]
                self.order.append(text)
        for text, count in other.counts.items():
            self.counts[text] = self.counts.get(text, 0) + count
        for name, accumulator in other.sequences.items():
            mine = self.sequences.get(name)
            if mine is None:
                self.sequences[name] = accumulator
            else:
                mine.merge(accumulator)
        return self

    def to_query_log(self, name: str) -> "QueryLog":
        """Materialize the Table 1 view of this shard."""
        log = QueryLog(
            name=name, total=self.total, valid=self.valid,
            sequences=dict(self.sequences),
        )
        for text in self.order:
            log.parsed.append(
                ParsedQuery(text=text, query=self.parsed[text], count=self.counts[text])
            )
        return log


@dataclass
class QueryLog:
    """One dataset's processed log with Table 1 counters."""

    name: str
    total: int = 0
    valid: int = 0
    parsed: List[ParsedQuery] = field(default_factory=list)
    #: Sequence-pass accumulators over this log's ordered raw stream
    #: (``repro.analysis.study`` copies them onto the dataset stats,
    #: like the Table 1 counters).  Empty unless ingestion ran with a
    #: sequence metric selected.
    sequences: Dict[str, Any] = field(default_factory=dict)

    @property
    def unique(self) -> int:
        """Number of unique valid queries (Table 1's Unique column)."""
        return len(self.parsed)

    def unique_queries(self) -> Iterable[ParsedQuery]:
        """The deduplicated stream (main-body analyses)."""
        return iter(self.parsed)

    def valid_queries(self) -> Iterable[ParsedQuery]:
        """The duplicate-retaining stream (appendix analyses): each
        unique query repeated ``count`` times."""
        for parsed in self.parsed:
            for _ in range(parsed.count):
                yield parsed

    def summary_row(self) -> Tuple[str, int, int, int]:
        """The dataset's Table 1 row: (name, total, valid, unique)."""
        return (self.name, self.total, self.valid, self.unique)


def process_entries(
    raw_queries: Iterable[str],
    extra_prefixes: Optional[Dict[str, str]] = None,
    cache: Optional[ParseCache] = None,
) -> LogShard:
    """Run clean → parse → dedup over one slice of the raw stream.

    Endpoints pre-declare common prefixes, so parsing uses
    :data:`~repro.rdf.namespaces.WELL_KNOWN_PREFIXES` (plus
    *extra_prefixes*) before declaring an entry invalid.
    """
    shard = LogShard()
    prefixes = dict(WELL_KNOWN_PREFIXES)
    if extra_prefixes:
        prefixes.update(extra_prefixes)
    if cache is None:
        cache = ParseCache()
    for text in raw_queries:
        shard.total += 1
        query = cache.parse(text, prefixes)
        if query is None:
            continue
        shard.valid += 1
        if text not in shard.counts:
            shard.order.append(text)
            shard.parsed[text] = query
            shard.counts[text] = 1
        else:
            shard.counts[text] += 1
    return shard


def build_query_log(
    name: str,
    raw_queries: Iterable[str],
    extra_prefixes: Optional[Dict[str, str]] = None,
    *,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    cache: Optional[ParseCache] = None,
) -> QueryLog:
    """Run the clean → parse → dedup pipeline over raw query texts.

    *raw_queries* is the post-cleaning stream (strings that look like
    queries) and may be a one-shot lazy iterator, e.g. from
    :func:`repro.logs.sources.iter_entries`: both the serial pass and
    the chunked workers path consume it incrementally, so peak memory
    is bounded by the chunk window plus the deduplicated unique state —
    never the raw log size.  Entries failing to parse count toward
    Total but not Valid.  With ``workers != 1`` the stream is split
    into chunks that are parsed on worker processes with bounded
    in-flight chunks and merged in stream order; the result is
    identical to the serial pass, but *cache* is ignored — caches
    cannot cross process boundaries, so each pool worker keeps its own.
    """
    if workers != 1:
        from ..analysis.parallel import build_query_log_parallel

        return build_query_log_parallel(
            name,
            raw_queries,
            extra_prefixes=extra_prefixes,
            workers=workers,
            chunk_size=chunk_size,
        )
    return process_entries(raw_queries, extra_prefixes, cache).to_query_log(name)
