"""The log-processing pipeline of the paper's §2.

Raw log entries go through three stages:

1. **Cleaning** — entries that are not queries (HTTP requests without a
   ``query=`` parameter, junk lines) are dropped; the survivors make up
   the *Total* column of Table 1.
2. **Parsing** — each candidate query is parsed; parse failures are
   counted, and the parseable queries form the *Valid* column.  (The
   paper used Apache Jena 3.0.1; we use :mod:`repro.sparql`.)
3. **Deduplication** — exact duplicates are removed, yielding the
   *Unique* column on which the paper's main-body analysis runs.

The :class:`QueryLog` produced here is the input to every analysis in
:mod:`repro.analysis.study`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import SparqlSyntaxError
from ..rdf.namespaces import WELL_KNOWN_PREFIXES
from ..sparql import ast, parse_query

__all__ = ["ParsedQuery", "QueryLog", "build_query_log"]


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed query together with its raw text and multiplicity."""

    text: str
    query: ast.Query
    count: int  # occurrences in the Valid stream


@dataclass
class QueryLog:
    """One dataset's processed log with Table 1 counters."""

    name: str
    total: int = 0
    valid: int = 0
    parsed: List[ParsedQuery] = field(default_factory=list)

    @property
    def unique(self) -> int:
        return len(self.parsed)

    def unique_queries(self) -> Iterable[ParsedQuery]:
        """The deduplicated stream (main-body analyses)."""
        return iter(self.parsed)

    def valid_queries(self) -> Iterable[ParsedQuery]:
        """The duplicate-retaining stream (appendix analyses): each
        unique query repeated ``count`` times."""
        for parsed in self.parsed:
            for _ in range(parsed.count):
                yield parsed

    def summary_row(self) -> Tuple[str, int, int, int]:
        return (self.name, self.total, self.valid, self.unique)


def build_query_log(
    name: str,
    raw_queries: Iterable[str],
    extra_prefixes: Optional[Dict[str, str]] = None,
) -> QueryLog:
    """Run the clean → parse → dedup pipeline over raw query texts.

    *raw_queries* is the post-cleaning stream (strings that look like
    queries); entries failing to parse count toward Total but not
    Valid.  Endpoints pre-declare common prefixes, so parsing retries
    with :data:`~repro.rdf.namespaces.WELL_KNOWN_PREFIXES` before
    declaring an entry invalid.
    """
    log = QueryLog(name=name)
    by_text: Dict[str, ParsedQuery] = {}
    prefixes = dict(WELL_KNOWN_PREFIXES)
    if extra_prefixes:
        prefixes.update(extra_prefixes)
    order: List[str] = []
    counts: Dict[str, int] = {}
    parsed_cache: Dict[str, Optional[ast.Query]] = {}

    for text in raw_queries:
        log.total += 1
        cached = parsed_cache.get(text, _MISSING)
        if cached is _MISSING:
            try:
                cached = parse_query(text, extra_prefixes=prefixes)
            except SparqlSyntaxError:
                cached = None
            except RecursionError:
                cached = None
            parsed_cache[text] = cached
            if cached is not None:
                order.append(text)
        if cached is None:
            continue
        log.valid += 1
        counts[text] = counts.get(text, 0) + 1

    for text in order:
        query = parsed_cache[text]
        assert query is not None
        log.parsed.append(ParsedQuery(text=text, query=query, count=counts[text]))
    return log


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
