"""Lazy log-entry sources: plain text, gzip, and log directories.

The paper's corpus is hundreds of millions of logged queries; reading a
log into one Python list (what the CLI originally did) bounds corpus
size by the heap.  This module turns files on disk into *lazy* streams
of raw query texts, so the streaming drivers in
:mod:`repro.analysis.parallel` can keep peak memory proportional to the
chunk size, never the log size.

Three on-disk entry formats are auto-detected with the CLI's historical
classification rules (applied to the peek window described below,
rather than to the whole file):

* **access-log** — Apache-style lines carrying the query URL-encoded in
  a ``query=`` parameter; decoded via
  :func:`repro.logs.formats.iter_queries` (cleaning happens there:
  malformed and query-less lines are dropped).
* **blocks** — multi-line queries separated by blank lines.
* **lines** — one query per line, with literal ``\\n`` escapes allowed.

Detection peeks at the first :data:`DETECT_LINES` lines only (the first
10 for the access-log signature, the whole peek window for the
blank-line test), buffers them, and replays them in front of the rest of
the stream — so a multi-gigabyte file is never materialized just to
pick a parser.  Files whose first blank line appears beyond the peek
window parse as ``lines``; real logs declare their shape immediately.

Compression is detected from the gzip magic bytes, not the file name,
so misnamed ``.log`` files that are actually gzipped still stream.  A
directory source streams its files in sorted name order, each with its
own format detection, as one concatenated stream.
"""

from __future__ import annotations

import gzip
import io
from itertools import chain, islice
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from .formats import iter_queries

__all__ = [
    "DETECT_LINES",
    "dataset_name",
    "detect_format",
    "iter_entries",
    "iter_file_entries",
    "iter_text_lines",
    "open_text",
    "read_entries",
    "source_paths",
]

PathLike = Union[str, Path]

#: gzip member header magic (RFC 1952).
_GZIP_MAGIC = b"\x1f\x8b"

#: How many leading lines format detection may buffer.
DETECT_LINES = 4096

#: How many of those lines the access-log signature check examines.
_ACCESS_LOG_PROBE = 10


def open_text(path: PathLike) -> io.TextIOBase:
    """Open *path* as text, transparently decompressing gzip.

    Compression is recognized by magic bytes rather than extension, so
    a gzipped stream named ``endpoint.log`` still opens correctly.
    Decoding matches the historical CLI reader: UTF-8 with
    ``errors="replace"``, so byte junk in real logs cannot abort a run.
    """
    path = Path(path)
    with path.open("rb") as probe:
        magic = probe.read(len(_GZIP_MAGIC))
    if magic == _GZIP_MAGIC:
        # gzip.open owns (and closes) its own underlying file handle.
        return io.TextIOWrapper(
            gzip.open(path, "rb"), encoding="utf-8", errors="replace"
        )
    return path.open("r", encoding="utf-8", errors="replace")


def iter_text_lines(path: PathLike) -> Iterator[str]:
    """Lazily yield the lines of *path* (gzip-aware), without newlines."""
    with open_text(path) as handle:
        for line in handle:
            yield line.rstrip("\n")


def detect_format(lines: Sequence[str]) -> str:
    """Classify a sample of leading lines as an entry format.

    Returns ``"access-log"``, ``"blocks"``, or ``"lines"``.  The same
    rules the CLI has always used: an HTTP request marker in the first
    ten lines wins; otherwise any blank line in the sample means
    blank-line-separated blocks; otherwise one query per line.
    """
    head = lines[:_ACCESS_LOG_PROBE]
    if any('"GET ' in line or '"POST ' in line for line in head):
        return "access-log"
    if any(not line.strip() for line in lines):
        return "blocks"
    return "lines"


def _iter_blocks(lines: Iterable[str]) -> Iterator[str]:
    current: List[str] = []
    for line in lines:
        if line.strip():
            current.append(line)
        elif current:
            yield "\n".join(current)
            current = []
    if current:
        yield "\n".join(current)


def _iter_lines(lines: Iterable[str]) -> Iterator[str]:
    for line in lines:
        if line.strip():
            yield line.replace("\\n", "\n")


_PARSERS: Dict[str, Callable[[Iterable[str]], Iterator[str]]] = {
    "access-log": iter_queries,
    "blocks": _iter_blocks,
    "lines": _iter_lines,
}


def iter_file_entries(path: PathLike, format: Optional[str] = None) -> Iterator[str]:
    """Lazily yield raw query texts from one log file.

    With ``format=None`` the format is auto-detected from the first
    :data:`DETECT_LINES` lines; the peeked lines are replayed, so
    nothing is lost and nothing beyond the peek window is buffered.
    """
    if format is not None and format not in _PARSERS:
        raise ValueError(
            f"unknown log format {format!r}; expected one of {sorted(_PARSERS)}"
        )
    lines: Iterator[str] = iter_text_lines(path)
    if format is None:
        head = list(islice(lines, DETECT_LINES))
        format = detect_format(head)
        lines = chain(head, lines)
    return _PARSERS[format](lines)


def source_paths(path: PathLike) -> List[Path]:
    """Resolve a source to concrete files: a file is itself; a
    directory is its regular (non-hidden) files in sorted name order."""
    path = Path(path)
    if path.is_dir():
        return sorted(
            entry
            for entry in path.iterdir()
            if entry.is_file() and not entry.name.startswith(".")
        )
    return [path]


def iter_entries(path: PathLike, format: Optional[str] = None) -> Iterator[str]:
    """Lazily yield raw query texts from a file or log directory.

    Directory sources concatenate their files in sorted name order;
    each file gets its own format detection, so a directory may mix
    access logs with plain query files.
    """
    for file_path in source_paths(path):
        yield from iter_file_entries(file_path, format)


def read_entries(path: PathLike, format: Optional[str] = None) -> List[str]:
    """Materialized :func:`iter_entries` (the in-memory ingestion path)."""
    return list(iter_entries(path, format))


def dataset_name(path: PathLike) -> str:
    """Dataset label for a source path: base name minus ``.gz`` and the
    final extension (``dbpedia.log.gz`` → ``dbpedia``; a directory is
    its own name, dots and all)."""
    path = Path(path)
    if path.is_dir():
        return path.name
    if path.suffix == ".gz":
        path = path.with_suffix("")
    return path.stem if path.suffix else path.name
