"""Stable public API facade: sessions, requests, results, snapshots.

Everything the CLI (and any downstream program) needs to run the
paper's study lives behind three small types:

* :class:`AnalysisRequest` — a frozen, typed description of *what* to
  analyze: file inputs or in-memory corpora, the corpus flavour
  (``dedup``), the pass selection and limits, and the execution knobs
  (workers, chunk size, streaming ingestion).
* :class:`AnalysisSession` — the orchestrator: resolves inputs, runs
  ingestion (clean → parse → dedup) and the analyzer-pass study, and
  wraps the outcome.  One session serves many requests, holding a
  persistent worker pool that multi-worker runs reuse.
* :class:`AnalysisResult` — the outcome: the
  :class:`~repro.analysis.study.CorpusStudy`, the processed
  :class:`~repro.logs.pipeline.QueryLog` objects (when ingestion ran
  in-session), the optional :class:`~repro.analysis.passes.PassProfile`
  and the :class:`CoverageCaveats`.  Results render through the
  reporter registry (:meth:`AnalysisResult.render`) and serialize to
  versioned JSON snapshots (:meth:`AnalysisResult.save` /
  :func:`load_study`) that can be shipped between machines and merged.

Quickstart::

    from repro.api import analyze

    result = analyze("endpoint.log", workers=4)
    print(result.render("text"))          # the paper's tables
    result.save("study.json")             # portable snapshot

    from repro.api import load_study, merge_studies
    merged = merge_studies([load_study("a.json"), load_study("b.json")])

All invariants of the underlying drivers hold through the facade:
serial ≡ sharded ≡ streamed byte-identity, and
``merge(load(a), load(b)) ≡ merge(a, b)`` round-trips exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from .analysis.context import (
    DEFAULT_SHAPE_NODE_LIMIT,
    DEFAULT_STRUCTURE_CACHE_SIZE,
    AnalysisOptions,
)
from .analysis.parallel import (
    TransportStats,
    WorkerPool,
    build_query_logs_parallel,
    resolve_workers,
)
from .analysis.passes import (
    PassProfile,
    resolve_passes,
    resolve_sequence_passes,
    sequence_only_selection,
)
from .analysis.incremental import WatchCycle, WatchSession
from .analysis.snapshot import load_study, save_study
from .analysis.streaks import DEFAULT_STREAK_THRESHOLD, DEFAULT_STREAK_WINDOW
from .analysis.study import CorpusStudy, study_corpus
from .logs import ParseCache, QueryLog, build_query_log, dataset_name, iter_entries
from .logs.sources import read_entries
from .reporting.reporters import render_report

__all__ = [
    "AnalysisRequest",
    "AnalysisResult",
    "AnalysisSession",
    "CoverageCaveats",
    "WatchCycle",
    "WatchSession",
    "analyze",
    "analyze_corpora",
    "load_study",
    "merge_studies",
    "open_warehouse",
    "save_study",
]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class AnalysisRequest:
    """A typed, immutable description of one study run.

    Exactly one of *inputs* (paths to query/log files, gzip files, or
    log directories — dataset names derive from the file stems) or
    *corpora* (a name → raw-query-texts mapping, values may be one-shot
    iterators) must be provided.
    """

    #: Files/directories to ingest; dataset names come from the stems.
    inputs: Tuple[PathLike, ...] = ()
    #: In-memory corpora: dataset name → raw query texts.
    corpora: Optional[Mapping[str, Iterable[str]]] = None
    #: ``True`` → Unique corpus (paper main body); ``False`` → Valid
    #: corpus, weighting every query by its multiplicity (appendix).
    dedup: bool = True
    #: Analyzer passes to run (``None`` = every per-query pass; the
    #: ``streaks`` sequence pass is opt-in by name); see
    #: ``repro.analysis.passes``.
    metrics: Optional[Tuple[str, ...]] = None
    #: Skip the structure pass above this canonical-graph node count.
    shape_node_limit: int = DEFAULT_SHAPE_NODE_LIMIT
    #: Capacity of the structural-signature cache (0 disables).
    cache_size: int = DEFAULT_STRUCTURE_CACHE_SIZE
    #: Collect per-pass wall times onto the result's profile.
    profile: bool = False
    #: Lookbehind window of the ``streaks`` sequence pass (§8).
    streak_window: int = DEFAULT_STREAK_WINDOW
    #: Normalized-Levenshtein similarity threshold for streaks.
    streak_threshold: float = DEFAULT_STREAK_THRESHOLD
    #: Stream file inputs lazily (bounded-memory ingestion).
    stream: bool = False
    #: Worker processes for ingestion and measurement: a positive int
    #: (1 = in-process) or ``"auto"`` for all CPUs available to this
    #: process — the recommended setting on multi-core machines.
    workers: Union[int, str] = 1
    #: Entries per shard; ``None`` uses the adaptive schedule (chunks
    #: start small and grow geometrically — see
    #: :func:`repro.analysis.parallel.adaptive_chunk_sizes`).
    chunk_size: Optional[int] = None
    #: Extra PREFIX declarations assumed by the endpoint's parser.
    extra_prefixes: Optional[Mapping[str, str]] = None
    #: Lean ingestion: skip SPARQL parsing, deduplication and AST
    #: retention — only legal when *metrics* selects sequence passes
    #: exclusively (they read the raw ordered stream).  ``None`` (the
    #: default) auto-enables lean mode for exactly those selections;
    #: ``False`` forces full ingestion, ``True`` asserts lean and
    #: fails validation if a per-query pass is also selected.
    lean: Optional[bool] = None
    #: Path of the persistent cross-run structure store (SQLite).
    #: ``None`` (the default) keeps structural caching in-memory only.
    #: Warm runs are byte-identical to cold runs; an unusable store
    #: file degrades to a cold run with a warning, never an error.
    structure_cache_path: Optional[PathLike] = None

    def lean_ingestion(self) -> bool:
        """Whether this request ingests leanly (see :attr:`lean`)."""
        if self.lean is not None:
            return self.lean
        return sequence_only_selection(self.metrics)

    def options(self) -> AnalysisOptions:
        """The per-query analysis options this request implies."""
        return AnalysisOptions(
            metrics=self.metrics,
            shape_node_limit=self.shape_node_limit,
            cache_size=self.cache_size,
            profile=self.profile,
            streak_window=self.streak_window,
            streak_threshold=self.streak_threshold,
            lean_ingestion=self.lean_ingestion(),
            structure_cache_path=(
                None
                if self.structure_cache_path is None
                else str(self.structure_cache_path)
            ),
        )

    def validate(self) -> None:
        """Raise ``ValueError`` on contradictions a run would hit later."""
        if self.inputs and self.corpora is not None:
            raise ValueError("provide either inputs or corpora, not both")
        if not self.inputs and self.corpora is None:
            raise ValueError("nothing to analyze: provide inputs or corpora")
        if isinstance(self.workers, str):
            if self.workers != "auto":
                raise ValueError(
                    f"workers must be a positive integer or 'auto', "
                    f"got {self.workers!r}"
                )
        elif self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.shape_node_limit < 1:
            raise ValueError(
                f"shape_node_limit must be >= 1, got {self.shape_node_limit}"
            )
        if self.cache_size < 0:
            raise ValueError(
                f"cache_size must be >= 0 (0 disables), got {self.cache_size}"
            )
        if self.streak_window < 1:
            raise ValueError(
                f"streak_window must be >= 1, got {self.streak_window}"
            )
        if not 0.0 <= self.streak_threshold <= 1.0:
            raise ValueError(
                f"streak_threshold must be within [0, 1], "
                f"got {self.streak_threshold}"
            )
        resolve_passes(self.metrics)  # unknown metric names raise here
        if self.lean:
            if not resolve_sequence_passes(self.metrics):
                raise ValueError(
                    "lean ingestion requires a sequence metric "
                    "(e.g. metrics=('streaks',))"
                )
            if not sequence_only_selection(self.metrics):
                raise ValueError(
                    "lean ingestion skips parsing, but the selected "
                    "metrics include per-query passes that need parsed "
                    "queries; drop them or use lean=False"
                )
        if self.inputs:
            seen: Dict[str, PathLike] = {}
            for path in self.inputs:
                name = dataset_name(Path(path))
                if name in seen:
                    raise ValueError(
                        f"inputs {seen[name]} and {path} both map to dataset "
                        f"name {name!r}; rename one"
                    )
                seen[name] = path


@dataclass(frozen=True)
class CoverageCaveats:
    """Data the analysis limits dropped (and accounted for) in a run."""

    #: Queries whose canonical graph exceeded the shape-node limit.
    shape_limit_skipped: int = 0
    #: Non-Ctract path expressions beyond the Table 5 sample cap.
    non_ctract_truncated: int = 0

    @classmethod
    def from_study(cls, study: CorpusStudy) -> "CoverageCaveats":
        """Read the drop counters off a finished study."""
        return cls(
            shape_limit_skipped=study.shape_limit_skipped,
            non_ctract_truncated=study.non_ctract_truncated,
        )

    @property
    def clean(self) -> bool:
        """``True`` when no limit dropped anything."""
        return not (self.shape_limit_skipped or self.non_ctract_truncated)


@dataclass
class AnalysisResult:
    """The outcome of one study run (or a loaded/merged snapshot)."""

    #: Every measurement of the paper, with per-dataset stats.
    study: CorpusStudy
    #: Processed logs when ingestion ran in-session; ``None`` for
    #: results rebuilt from snapshots (Table 1 still renders — the
    #: pipeline counters live on ``study.datasets``).
    logs: Optional[Dict[str, QueryLog]] = None
    #: The request that produced this result, when known.
    request: Optional[AnalysisRequest] = None

    @property
    def profile(self) -> Optional[PassProfile]:
        """Per-pass wall times and cache stats of a profiled run."""
        return self.study.pass_profile

    @property
    def caveats(self) -> CoverageCaveats:
        """What the analysis limits dropped (all zero on clean runs)."""
        return CoverageCaveats.from_study(self.study)

    def render(self, format: str = "text") -> str:
        """Render through the reporter registry (`text`, `json`, …)."""
        return render_report(self.study, format)

    def to_dict(self) -> Dict[str, object]:
        """The study's versioned JSON-native snapshot."""
        return self.study.to_dict()

    def save(self, path: PathLike) -> None:
        """Write the snapshot to *path* (reload via :func:`load_study`)."""
        save_study(self.study, path)

    @classmethod
    def load(cls, path: PathLike) -> "AnalysisResult":
        """Rebuild a result from a saved snapshot (no logs attached)."""
        return cls(study=load_study(path))

    def merge(self, other: "AnalysisResult") -> "AnalysisResult":
        """Fold *other* into this result (stream order, in place).

        The logs survive only when the two sides cover disjoint
        datasets; on overlap they are dropped (set to ``None``) rather
        than letting one side's :class:`QueryLog` silently shadow the
        other while the study stats sum — Table 1 still renders from
        the merged per-dataset stats either way."""
        self.study.merge(other.study)
        if (
            self.logs is not None
            and other.logs is not None
            and not set(self.logs) & set(other.logs)
        ):
            self.logs.update(other.logs)
        else:
            self.logs = None
        return self


class AnalysisSession:
    """Orchestrates ingestion → analyzer passes → study.

    Every :meth:`run` resolves its request from scratch — no parse
    caches or prefix environments leak between runs — but the session
    owns one persistent :class:`~repro.analysis.parallel.WorkerPool`,
    created lazily on the first multi-worker run and reused across
    requests, datasets and corpora, so repeated runs don't pay the
    worker start-up cost again.  (Worker-side caches staying warm
    across runs is safe: they are keyed per configuration and
    transparent — results never change, only timings.)

    Usable as a context manager; :meth:`close` shuts the pool down and
    is idempotent.  Single-worker sessions never spawn a pool.
    """

    def __init__(self) -> None:
        self._pool: Optional[WorkerPool] = None

    def close(self) -> None:
        """Shut down the session's worker pool, if one was created."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _pool_for(self, workers: int) -> Optional[WorkerPool]:
        """The session pool sized for *workers* (``None`` when in-process).

        A size change replaces the pool; otherwise the existing one —
        and its warm worker caches — is reused as-is."""
        if workers <= 1:
            return None
        if self._pool is not None and self._pool.workers != workers:
            self._pool.close()
            self._pool = None
        if self._pool is None:
            self._pool = WorkerPool(workers)
        return self._pool

    def run(self, request: AnalysisRequest) -> AnalysisResult:
        """Execute *request* end to end and wrap the outcome."""
        request.validate()
        pool = self._pool_for(resolve_workers(request.workers))
        transport = TransportStats()
        logs = self.ingest(request, pool=pool, transport=transport)
        study = self.measure(logs, request, pool=pool, transport=transport)
        if request.profile:
            # Shipped-bytes/merge-time accounting rides the profile (a
            # lean sequence-only run has no measure-phase profile yet).
            if study.pass_profile is None:
                study.pass_profile = PassProfile()
            transport.add_to_profile(study.pass_profile)
        return AnalysisResult(study=study, logs=logs, request=request)

    def ingest(
        self,
        request: AnalysisRequest,
        *,
        pool: Optional[WorkerPool] = None,
        transport: Optional[TransportStats] = None,
    ) -> Dict[str, QueryLog]:
        """Clean → parse → dedup the request's inputs into query logs.

        Sequence metrics (``streaks``) are computed here — the ordered
        raw stream no longer exists after deduplication — by the
        chunked driver, whose per-chunk accumulators stitch back to the
        exact serial scan.  A sequence-only selection ingests leanly by
        default (no parse/dedup/AST retention; see
        :attr:`AnalysisRequest.lean`)."""
        corpora = self._resolve_corpora(request)
        prefixes = dict(request.extra_prefixes) if request.extra_prefixes else None
        sequences = resolve_sequence_passes(request.metrics)
        workers = pool.workers if pool is not None else resolve_workers(request.workers)
        if request.stream or workers != 1 or sequences:
            # One pool over all datasets: small logs share the worker
            # start-up; lazy sources keep peak memory O(workers × chunk).
            return build_query_logs_parallel(
                corpora,
                prefixes,
                workers=workers,
                chunk_size=request.chunk_size,
                options=request.options() if sequences else None,
                pool=pool,
                transport=transport,
            )
        # Serial path: one parse cache across all datasets, so texts
        # recurring across endpoint logs are parsed once.
        cache = ParseCache()
        return {
            name: build_query_log(name, texts, prefixes, cache=cache)
            for name, texts in corpora.items()
        }

    def measure(
        self,
        logs: Mapping[str, QueryLog],
        request: AnalysisRequest,
        *,
        pool: Optional[WorkerPool] = None,
        transport: Optional[TransportStats] = None,
    ) -> CorpusStudy:
        """Run the analyzer-pass study over already-processed logs."""
        return study_corpus(
            logs,
            dedup=request.dedup,
            workers=pool.workers if pool is not None else resolve_workers(request.workers),
            chunk_size=request.chunk_size,
            options=request.options(),
            pool=pool,
            transport=transport,
        )

    def _resolve_corpora(
        self, request: AnalysisRequest
    ) -> Mapping[str, Iterable[str]]:
        if request.corpora is not None:
            return request.corpora
        paths = [Path(path) for path in request.inputs]
        if request.stream:
            return {dataset_name(path): iter_entries(path) for path in paths}
        return {dataset_name(path): read_entries(path) for path in paths}


def analyze(*inputs: PathLike, **kwargs: object) -> AnalysisResult:
    """One-call facade over files: ``analyze("a.log", workers=4)``.

    Keyword arguments are :class:`AnalysisRequest` fields."""
    request = AnalysisRequest(inputs=tuple(inputs), **kwargs)  # type: ignore[arg-type]
    with AnalysisSession() as session:
        return session.run(request)


def analyze_corpora(
    corpora: Mapping[str, Iterable[str]], **kwargs: object
) -> AnalysisResult:
    """One-call facade over in-memory corpora (name → raw texts)."""
    request = AnalysisRequest(corpora=corpora, **kwargs)  # type: ignore[arg-type]
    with AnalysisSession() as session:
        return session.run(request)


def merge_studies(
    studies: Iterable[CorpusStudy], dedup: Optional[bool] = None
) -> CorpusStudy:
    """Merge studies (typically loaded snapshots) in the given order.

    ``merge_studies([load_study(a), load_study(b)])`` renders the same
    report bytes as merging the in-memory studies directly — snapshots
    preserve counter insertion order, which report rendering depends
    on.  All studies must share the same corpus flavour.

    With the default ``dedup=None`` the flavour is inferred from the
    first study (so at least one is required).  Passing ``dedup``
    explicitly keeps the pre-1.1 root-level signature working: the
    merge starts from an empty study of that flavour, and an empty
    *studies* is allowed."""
    merged = None if dedup is None else CorpusStudy(dedup=dedup)
    for study in studies:
        if merged is None:
            merged = CorpusStudy(dedup=study.dedup)
        merged.merge(study)
    if merged is None:
        raise ValueError(
            "merge_studies: need at least one study (or an explicit dedup=)"
        )
    return merged


def open_warehouse(path: PathLike, *, readonly: bool = False):
    """Open (or, unless *readonly*, create) a persistent study warehouse.

    A warehouse is a SQLite file study snapshots are upserted into
    (:meth:`~repro.warehouse.StudyWarehouse.ingest`) and queried
    without re-running analysis — per-dataset stats, table cells,
    streak histograms, full-text search — with reports rendered
    through the reporter registry, byte-identical to
    :func:`render_report` on the equivalently merged study::

        from repro.api import analyze, open_warehouse

        with open_warehouse("study.warehouse") as warehouse:
            warehouse.ingest(analyze("endpoint.log").study)
            print(warehouse.render("text"))

    Raises :class:`~repro.exceptions.WarehouseError` for an unusable
    file (corrupt, foreign, or from a newer schema)."""
    from .warehouse import StudyWarehouse

    return StudyWarehouse.open(path, readonly=readonly)
