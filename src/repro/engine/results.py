"""SPARQL query-results serialization (JSON and CSV).

Endpoints return SELECT/ASK results in the W3C "SPARQL 1.1 Query
Results JSON Format" and the CSV/TSV formats; tools downstream of this
library (and its own CLI) need the same.  Solutions are the
``Dict[Variable, Term]`` mappings produced by the engines.

Paper mapping: result materialization for the Figure 3 engine runs.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from ..rdf.terms import IRI, BlankNode, Literal, Term, Variable

__all__ = [
    "results_to_json",
    "results_from_json",
    "results_to_csv",
    "boolean_to_json",
]

Solution = Dict[Variable, Term]


def _term_to_json(term: Term) -> Dict[str, str]:
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BlankNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        entry: Dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.language is not None:
            entry["xml:lang"] = term.language
        elif term.datatype is not None:
            entry["datatype"] = term.datatype
        return entry
    raise TypeError(f"cannot serialize term {term!r}")


def _term_from_json(entry: Dict[str, str]) -> Term:
    kind = entry.get("type")
    value = entry.get("value", "")
    if kind == "uri":
        return IRI(value)
    if kind == "bnode":
        return BlankNode(value)
    if kind in ("literal", "typed-literal"):
        language = entry.get("xml:lang")
        datatype = entry.get("datatype")
        return Literal(value, language=language, datatype=datatype)
    raise ValueError(f"unknown term type {kind!r}")


def _ordered_variables(
    solutions: Sequence[Solution],
    variables: Optional[Sequence[Variable]],
) -> List[Variable]:
    if variables is not None:
        return list(variables)
    seen: List[Variable] = []
    for solution in solutions:
        for variable in solution:
            if variable not in seen:
                seen.append(variable)
    return seen


def results_to_json(
    solutions: Sequence[Solution],
    variables: Optional[Sequence[Variable]] = None,
    indent: Optional[int] = None,
) -> str:
    """Serialize SELECT results to the W3C JSON results format."""
    ordered = _ordered_variables(solutions, variables)
    document = {
        "head": {"vars": [v.name for v in ordered]},
        "results": {
            "bindings": [
                {
                    variable.name: _term_to_json(term)
                    for variable, term in solution.items()
                }
                for solution in solutions
            ]
        },
    }
    return json.dumps(document, indent=indent, sort_keys=False)


def boolean_to_json(value: bool, indent: Optional[int] = None) -> str:
    """Serialize an ASK result."""
    return json.dumps({"head": {}, "boolean": bool(value)}, indent=indent)


def results_from_json(text: str) -> List[Solution]:
    """Parse the W3C JSON results format back into solution mappings.

    Round-trips :func:`results_to_json`; also accepts documents from
    real endpoints (ignores unknown ``head`` members).
    """
    document = json.loads(text)
    bindings = document.get("results", {}).get("bindings", [])
    solutions: List[Solution] = []
    for binding in bindings:
        solution: Solution = {}
        for name, entry in binding.items():
            solution[Variable(name)] = _term_from_json(entry)
        solutions.append(solution)
    return solutions


def results_to_csv(
    solutions: Sequence[Solution],
    variables: Optional[Sequence[Variable]] = None,
) -> str:
    """Serialize SELECT results to the SPARQL 1.1 CSV results format.

    Per the spec, CSV is lossy: terms are written by their string value
    (IRIs bare, literals by lexical form, blank nodes as ``_:label``),
    and unbound cells are empty.
    """
    ordered = _ordered_variables(solutions, variables)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\r\n")
    writer.writerow([v.name for v in ordered])
    for solution in solutions:
        row = []
        for variable in ordered:
            term = solution.get(variable)
            if term is None:
                row.append("")
            elif isinstance(term, IRI):
                row.append(term.value)
            elif isinstance(term, BlankNode):
                row.append(f"_:{term.label}")
            else:
                assert isinstance(term, Literal)
                row.append(term.lexical)
        writer.writerow(row)
    return buffer.getvalue()
