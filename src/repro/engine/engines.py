"""Engine profiles for the Figure 3 experiment.

The paper compares Blazegraph (a native SPARQL engine with indexes and
a join optimizer) against PostgreSQL (evaluating the same conjunctive
queries relationally, where the generated SQL gave the planner little
to work with and cycle queries routinely hit the 300 s timeout).

We model the *mechanism* behind that gap with two engine profiles over
the same in-memory triple store:

* :class:`IndexedEngine` — index-backed triple lookups plus greedy
  selectivity reordering of BGPs (Blazegraph stand-in);
* :class:`NestedLoopEngine` — full-scan nested-loop joins in textual
  order (PostgreSQL stand-in).

Both support a per-query timeout and report
:class:`QueryRunResult` records that the Figure 3 harness aggregates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

from ..exceptions import EvaluationTimeout
from ..rdf.graph import Graph
from ..rdf.terms import IRI
from ..sparql import ast, parse_query
from .evaluator import PatternEvaluator

__all__ = [
    "QueryRunResult",
    "WorkloadRunResult",
    "Engine",
    "IndexedEngine",
    "NestedLoopEngine",
]


@dataclass(frozen=True)
class QueryRunResult:
    """Outcome of one query execution."""

    elapsed: float  # seconds; equals the timeout when timed_out
    timed_out: bool
    result: object = None

    @property
    def elapsed_ns(self) -> float:
        """Wall time of this run in nanoseconds."""
        return self.elapsed * 1e9


@dataclass(frozen=True)
class WorkloadRunResult:
    """Aggregate over a workload (the unit Figure 3 plots)."""

    engine: str
    workload: str
    runs: tuple

    @property
    def average_elapsed(self) -> float:
        """Mean wall time per run, in seconds."""
        if not self.runs:
            return 0.0
        return sum(run.elapsed for run in self.runs) / len(self.runs)

    @property
    def average_elapsed_ns(self) -> float:
        """Mean wall time per run, in nanoseconds (Figure 3's unit)."""
        return self.average_elapsed * 1e9

    @property
    def timeout_count(self) -> int:
        """Number of runs that hit the timeout."""
        return sum(1 for run in self.runs if run.timed_out)

    @property
    def timeout_rate(self) -> float:
        """Fraction of runs that hit the timeout."""
        if not self.runs:
            return 0.0
        return self.timeout_count / len(self.runs)


class Engine:
    """Base engine: shared run/workload machinery."""

    name = "abstract"
    strategy = "indexed"
    reorder = True

    def __init__(
        self,
        graph: Graph,
        named_graphs: Optional[Dict[IRI, Graph]] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.graph = graph
        self.named_graphs = named_graphs or {}
        self.timeout = timeout

    def _evaluator(self) -> PatternEvaluator:
        return PatternEvaluator(
            self.graph,
            named_graphs=self.named_graphs,
            strategy=self.strategy,
            reorder=self.reorder,
            timeout=self.timeout,
        )

    def evaluate(self, query: Union[str, ast.Query]):
        """Evaluate *query* and return its raw result (no timing).

        Raises :class:`~repro.exceptions.EvaluationTimeout` if the
        engine's timeout elapses.
        """
        if isinstance(query, str):
            query = parse_query(query)
        return self._evaluator().evaluate_query(query)

    def run(self, query: Union[str, ast.Query]) -> QueryRunResult:
        """Evaluate *query*, timing it and absorbing timeouts."""
        if isinstance(query, str):
            query = parse_query(query)
        started = time.monotonic()
        try:
            result = self._evaluator().evaluate_query(query)
        except EvaluationTimeout:
            assert self.timeout is not None
            return QueryRunResult(
                elapsed=self.timeout, timed_out=True, result=None
            )
        elapsed = time.monotonic() - started
        return QueryRunResult(elapsed=elapsed, timed_out=False, result=result)

    def run_workload(
        self, queries: Iterable[Union[str, ast.Query]], label: str = ""
    ) -> WorkloadRunResult:
        """Run every query text and collect per-run timings."""
        runs = tuple(self.run(query) for query in queries)
        return WorkloadRunResult(engine=self.name, workload=label, runs=runs)


class IndexedEngine(Engine):
    """Index-backed engine with join reordering (Blazegraph stand-in)."""

    name = "BG"
    strategy = "indexed"
    reorder = True


class NestedLoopEngine(Engine):
    """Full-scan nested-loop engine in textual join order (PostgreSQL
    stand-in for the paper's un-indexed relational setup)."""

    name = "PG"
    strategy = "scan"
    reorder = False
