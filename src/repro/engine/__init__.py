"""SPARQL query evaluation engines over the in-memory RDF store.

Paper mapping: the chain-vs-cycle engine experiment of Figure 3 (sec 3).
"""

from .engines import (
    Engine,
    IndexedEngine,
    NestedLoopEngine,
    QueryRunResult,
    WorkloadRunResult,
)
from .evaluator import PatternEvaluator, Solution, evaluate_bgp_order
from .expressions import (
    ExpressionError,
    effective_boolean_value,
    evaluate_expression,
)
from .results import (
    boolean_to_json,
    results_from_json,
    results_to_csv,
    results_to_json,
)

__all__ = [
    "boolean_to_json",
    "results_from_json",
    "results_to_csv",
    "results_to_json",
    "Engine",
    "IndexedEngine",
    "NestedLoopEngine",
    "QueryRunResult",
    "WorkloadRunResult",
    "PatternEvaluator",
    "Solution",
    "evaluate_bgp_order",
    "ExpressionError",
    "effective_boolean_value",
    "evaluate_expression",
]
