"""SPARQL pattern and query evaluation over an in-memory graph.

Two access-path strategies share this evaluator:

* ``indexed`` — triple patterns are answered through the graph's
  SPO/POS/OSP indexes, and contiguous runs of triple patterns are
  greedily reordered by estimated selectivity before evaluation (the
  Blazegraph stand-in of the paper's Figure 3 experiment);
* ``scan`` — every triple pattern performs a full scan of the triple
  table per intermediate solution, in textual order (the PostgreSQL
  stand-in: nested-loop joins without useful indexes).

Evaluation is deadline-aware: long-running queries raise
:class:`~repro.exceptions.EvaluationTimeout`, which the Figure 3
harness records exactly as the paper records PostgreSQL's timeouts.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..exceptions import EvaluationError, EvaluationTimeout
from ..rdf.graph import Graph
from ..rdf.terms import IRI, BlankNode, Literal, Term, Variable
from ..sparql import ast
from .expressions import (
    ExpressionError,
    effective_boolean_value,
    evaluate_expression,
)

__all__ = ["PatternEvaluator", "Solution", "evaluate_bgp_order"]

#: A solution mapping: variables (and blank-node placeholders) to terms.
Solution = Dict[Variable, Term]

_TIMEOUT_CHECK_EVERY = 256


class _Deadline:
    """Cooperative timeout checked every few thousand operations."""

    __slots__ = ("limit", "start", "_counter")

    def __init__(self, limit: Optional[float]) -> None:
        self.limit = limit
        self.start = time.monotonic()
        self._counter = 0

    def tick(self) -> None:
        """Abort with :class:`EngineTimeout` once the deadline passed."""
        if self.limit is None:
            return
        self._counter += 1
        if self._counter % _TIMEOUT_CHECK_EVERY == 0:
            elapsed = time.monotonic() - self.start
            if elapsed > self.limit:
                raise EvaluationTimeout(elapsed, self.limit)


class PatternEvaluator:
    """Evaluates patterns/queries against a default graph (plus
    optional named graphs for ``GRAPH``)."""

    def __init__(
        self,
        graph: Graph,
        named_graphs: Optional[Dict[IRI, Graph]] = None,
        strategy: str = "indexed",
        reorder: Optional[bool] = None,
        timeout: Optional[float] = None,
    ) -> None:
        if strategy not in ("indexed", "scan"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.graph = graph
        self.named_graphs = named_graphs or {}
        self.strategy = strategy
        self.reorder = strategy == "indexed" if reorder is None else reorder
        self._deadline = _Deadline(timeout)

    # ------------------------------------------------------------------
    # Query-level evaluation
    # ------------------------------------------------------------------
    def evaluate_query(self, query: ast.Query):
        """Evaluate a query; the result type depends on the query form.

        Select → list of solutions; Ask → bool; Construct / Describe →
        :class:`~repro.rdf.graph.Graph`.
        """
        self._deadline = _Deadline(self._deadline.limit)
        if query.query_type is ast.QueryType.ASK:
            # Real engines stop an ASK at the first solution instead of
            # materializing the full join; do the same for conjunctive
            # bodies (the common case, incl. the Figure 3 workloads).
            fast = self._ask_conjunctive(query)
            if fast is not None:
                return fast
        solutions = self._solutions_for(query)
        if query.query_type is ast.QueryType.ASK:
            return bool(solutions)
        if query.query_type is ast.QueryType.SELECT:
            return solutions
        if query.query_type is ast.QueryType.CONSTRUCT:
            return self._construct(query, solutions)
        return self._describe(query, solutions)

    def _ask_conjunctive(self, query: ast.Query) -> Optional[bool]:
        """Early-terminating ASK evaluation for pure BGP bodies.

        Returns None when the body is not a plain conjunction of triple
        patterns (the general evaluator handles those).  Both engine
        profiles use this path — what differs is the access method
        (index lookups vs full scans) and the join order, which is
        exactly the asymmetry the Figure 3 experiment measures.
        """
        if query.values is not None or not query.modifier.is_trivial():
            return None
        triples = _flatten_bgp(query.pattern)
        if triples is None:
            return None
        if not triples:
            return True  # empty pattern matches the empty solution
        if self.reorder:
            triples = evaluate_bgp_order(triples, self.graph)

        def search(index: int, solution: Solution) -> bool:
            """Try to bind pattern *index* given the partial *solution*."""
            if index == len(triples):
                return True
            pattern = triples[index]
            s = _resolve(pattern.subject, solution)
            p = _resolve(pattern.predicate, solution)
            o = _resolve(pattern.object, solution)
            if self.strategy == "indexed":
                candidates = self.graph.match(
                    s if not isinstance(s, (Variable, BlankNode)) else None,
                    p if not isinstance(p, (Variable, BlankNode)) else None,
                    o if not isinstance(o, (Variable, BlankNode)) else None,
                )
            else:
                candidates = self.graph.scan()
            for triple in candidates:
                self._deadline.tick()
                extended = _try_extend(solution, (s, p, o), triple)
                if extended is not None and search(index + 1, extended):
                    return True
            return False

        return search(0, {})

    def _solutions_for(self, query: ast.Query) -> List[Solution]:
        solutions = self.evaluate_pattern(query.pattern, graph=self.graph)
        if query.values is not None:
            solutions = self._join_values(solutions, query.values)
        return self._apply_modifiers(query, solutions)

    # ------------------------------------------------------------------
    # Pattern evaluation
    # ------------------------------------------------------------------
    def evaluate_pattern(
        self,
        pattern: Optional[ast.Pattern],
        graph: Graph,
        initial: Optional[List[Solution]] = None,
    ) -> List[Solution]:
        """Evaluate any graph pattern to a list of solutions."""
        solutions: List[Solution] = initial if initial is not None else [{}]
        if pattern is None:
            return solutions
        return self._eval(pattern, solutions, graph)

    def _eval(
        self, pattern: ast.Pattern, solutions: List[Solution], graph: Graph
    ) -> List[Solution]:
        if isinstance(pattern, ast.GroupPattern):
            return self._eval_group(pattern, solutions, graph)
        if isinstance(pattern, ast.TriplePattern):
            return self._join_triple(solutions, pattern, graph)
        if isinstance(pattern, ast.PathPattern):
            return self._join_path(solutions, pattern, graph)
        if isinstance(pattern, ast.UnionPattern):
            left = self._eval(pattern.left, list(solutions), graph)
            right = self._eval(pattern.right, list(solutions), graph)
            return left + right
        if isinstance(pattern, ast.OptionalPattern):
            return self._left_join(solutions, pattern.pattern, graph)
        if isinstance(pattern, ast.MinusPattern):
            removed = self._eval(pattern.pattern, [{}], graph)
            return [s for s in solutions if not _minus_match(s, removed)]
        if isinstance(pattern, ast.FilterPattern):
            return self._filter(solutions, pattern.expression, graph)
        if isinstance(pattern, ast.BindPattern):
            return self._bind(solutions, pattern, graph)
        if isinstance(pattern, ast.ValuesPattern):
            return self._join_values(solutions, pattern)
        if isinstance(pattern, ast.GraphGraphPattern):
            return self._eval_graph(pattern, solutions)
        if isinstance(pattern, ast.SubSelectPattern):
            sub = PatternEvaluator(
                graph,
                named_graphs=self.named_graphs,
                strategy=self.strategy,
                reorder=self.reorder,
                timeout=None,
            )
            sub._deadline = self._deadline  # share the deadline budget
            sub_solutions = sub._solutions_for(pattern.query)
            return _hash_join(solutions, sub_solutions)
        if isinstance(pattern, ast.ServicePattern):
            raise EvaluationError("SERVICE (federation) is not supported")
        raise EvaluationError(f"cannot evaluate {type(pattern).__name__}")

    def _eval_group(
        self, group: ast.GroupPattern, solutions: List[Solution], graph: Graph
    ) -> List[Solution]:
        elements = list(group.elements)
        filters = [e for e in elements if isinstance(e, ast.FilterPattern)]
        others = [e for e in elements if not isinstance(e, ast.FilterPattern)]
        if self.reorder:
            others = self._reorder_elements(others, graph)
        for element in others:
            solutions = self._eval(element, solutions, graph)
            if not solutions:
                # Joins cannot resurrect solutions, but OPTIONAL/BIND on
                # an empty set stays empty anyway — safe early exit.
                break
        for filter_pattern in filters:
            solutions = self._filter(solutions, filter_pattern.expression, graph)
        return solutions

    def _reorder_elements(
        self, elements: List[ast.Pattern], graph: Graph
    ) -> List[ast.Pattern]:
        """Greedy selectivity ordering of contiguous triple patterns.

        Non-triple elements keep their positions relative to each other
        and act as barriers (OPTIONAL and MINUS are order-sensitive).
        """
        result: List[ast.Pattern] = []
        run: List[ast.TriplePattern] = []
        for element in elements:
            if isinstance(element, ast.TriplePattern):
                run.append(element)
            else:
                result.extend(evaluate_bgp_order(run, graph))
                run = []
                result.append(element)
        result.extend(evaluate_bgp_order(run, graph))
        return result

    # ------------------------------------------------------------------
    # Triple patterns
    # ------------------------------------------------------------------
    def _join_triple(
        self, solutions: List[Solution], pattern: ast.TriplePattern, graph: Graph
    ) -> List[Solution]:
        output: List[Solution] = []
        for solution in solutions:
            s = _resolve(pattern.subject, solution)
            p = _resolve(pattern.predicate, solution)
            o = _resolve(pattern.object, solution)
            if self.strategy == "indexed":
                candidates = graph.match(
                    s if not isinstance(s, (Variable, BlankNode)) else None,
                    p if not isinstance(p, (Variable, BlankNode)) else None,
                    o if not isinstance(o, (Variable, BlankNode)) else None,
                )
            else:
                candidates = graph.scan()
            for triple in candidates:
                self._deadline.tick()
                extended = _try_extend(solution, (s, p, o), triple)
                if extended is not None:
                    output.append(extended)
        return output

    # ------------------------------------------------------------------
    # Property paths
    # ------------------------------------------------------------------
    def _join_path(
        self, solutions: List[Solution], pattern: ast.PathPattern, graph: Graph
    ) -> List[Solution]:
        output: List[Solution] = []
        for solution in solutions:
            subject = _resolve(pattern.subject, solution)
            obj = _resolve(pattern.object, solution)
            for start, end in self._eval_path(pattern.path, subject, obj, graph):
                self._deadline.tick()
                extended = dict(solution)
                if isinstance(subject, (Variable, BlankNode)):
                    extended[subject] = start  # type: ignore[index]
                if isinstance(obj, (Variable, BlankNode)):
                    if (
                        isinstance(obj, (Variable, BlankNode))
                        and obj in extended
                        and extended[obj] != end  # type: ignore[index]
                    ):
                        continue
                    extended[obj] = end  # type: ignore[index]
                output.append(extended)
        return output

    def _eval_path(
        self, path: ast.Path, subject: Term, obj: Term, graph: Graph
    ) -> Iterator[Tuple[Term, Term]]:
        """Yield (start, end) pairs matching *path* compatible with the
        (possibly constant) subject/object."""
        subject_fixed = not isinstance(subject, (Variable, BlankNode))
        object_fixed = not isinstance(obj, (Variable, BlankNode))
        if isinstance(path, ast.PathMod) and path.modifier in ("*", "?"):
            # Zero-length matches: every node (or the fixed endpoints).
            if subject_fixed and object_fixed:
                if subject == obj:
                    yield subject, obj
            elif subject_fixed:
                yield subject, subject
            elif object_fixed:
                yield obj, obj
            else:
                for node in graph.nodes():
                    yield node, node
            if path.modifier == "?":
                yield from self._eval_path(path.path, subject, obj, graph)
                return
            yield from self._closure(path.path, subject, obj, graph, minimum=1)
            return
        if isinstance(path, ast.PathMod) and path.modifier == "+":
            yield from self._closure(path.path, subject, obj, graph, minimum=1)
            return
        yield from self._single_step(path, subject, obj, graph)

    def _single_step(
        self, path: ast.Path, subject: Term, obj: Term, graph: Graph
    ) -> Iterator[Tuple[Term, Term]]:
        if isinstance(path, ast.PathIRI):
            s = subject if not isinstance(subject, (Variable, BlankNode)) else None
            o = obj if not isinstance(obj, (Variable, BlankNode)) else None
            for triple in graph.match(s, path.iri, o):
                self._deadline.tick()
                yield triple.subject, triple.object
            return
        if isinstance(path, ast.PathInverse):
            for start, end in self._eval_path(path.path, obj, subject, graph):
                yield end, start
            return
        if isinstance(path, ast.PathSequence):
            yield from self._sequence(path.steps, subject, obj, graph)
            return
        if isinstance(path, ast.PathAlternative):
            seen: Set[Tuple[Term, Term]] = set()
            for option in path.options:
                for pair in self._eval_path(option, subject, obj, graph):
                    if pair not in seen:
                        seen.add(pair)
                        yield pair
            return
        if isinstance(path, ast.PathNegated):
            forward = set(path.forward)
            inverse = set(path.inverse)
            s = subject if not isinstance(subject, (Variable, BlankNode)) else None
            o = obj if not isinstance(obj, (Variable, BlankNode)) else None
            if not inverse:
                for triple in graph.match(s, None, o):
                    self._deadline.tick()
                    if triple.predicate not in forward:
                        yield triple.subject, triple.object
                return
            seen = set()
            for triple in graph.match(s, None, o):
                self._deadline.tick()
                if triple.predicate not in forward:
                    pair = (triple.subject, triple.object)
                    if pair not in seen:
                        seen.add(pair)
                        yield pair
            for triple in graph.match(o, None, s):
                self._deadline.tick()
                if triple.predicate not in inverse:
                    pair = (triple.object, triple.subject)
                    if pair not in seen:
                        seen.add(pair)
                        yield pair
            return
        if isinstance(path, ast.PathMod):
            yield from self._eval_path(path, subject, obj, graph)
            return
        raise EvaluationError(f"cannot evaluate path {type(path).__name__}")

    def _sequence(
        self, steps: Tuple[ast.Path, ...], subject: Term, obj: Term, graph: Graph
    ) -> Iterator[Tuple[Term, Term]]:
        if len(steps) == 1:
            yield from self._eval_path(steps[0], subject, obj, graph)
            return
        head, rest = steps[0], steps[1:]
        mid = Variable("__path_mid")
        seen: Set[Tuple[Term, Term]] = set()
        for start, middle in self._eval_path(head, subject, mid, graph):
            for _, end in self._sequence(rest, middle, obj, graph):
                pair = (start, end)
                if pair not in seen:
                    seen.add(pair)
                    yield pair

    def _closure(
        self, step: ast.Path, subject: Term, obj: Term, graph: Graph, minimum: int
    ) -> Iterator[Tuple[Term, Term]]:
        """BFS transitive closure of one path step (for + and *)."""
        subject_fixed = not isinstance(subject, (Variable, BlankNode))
        helper = Variable("__closure")
        if subject_fixed:
            starts: Iterable[Term] = [subject]
        else:
            starts = list(graph.nodes())
        object_fixed = not isinstance(obj, (Variable, BlankNode))
        for start in starts:
            reached: Set[Term] = set()
            frontier = [start]
            hops = 0
            while frontier:
                hops += 1
                next_frontier: List[Term] = []
                for node in frontier:
                    for _, end in self._eval_path(step, node, helper, graph):
                        self._deadline.tick()
                        if end not in reached:
                            reached.add(end)
                            next_frontier.append(end)
                            if hops >= minimum:
                                if not object_fixed or end == obj:
                                    yield start, end
                frontier = next_frontier

    # ------------------------------------------------------------------
    # Filters, binds, values, optional, graph
    # ------------------------------------------------------------------
    def _exists_callback(self, graph: Graph) -> Callable:
        def check(pattern: ast.Pattern, binding) -> bool:
            """Whether *binding* satisfies one MINUS pattern."""
            results = self._eval(pattern, [dict(binding)], graph)
            return bool(results)

        return check

    def _filter(
        self, solutions: List[Solution], expression: ast.Expression, graph: Graph
    ) -> List[Solution]:
        exists = self._exists_callback(graph)
        output: List[Solution] = []
        for solution in solutions:
            self._deadline.tick()
            try:
                value = evaluate_expression(expression, solution, exists)
                if effective_boolean_value(value):
                    output.append(solution)
            except ExpressionError:
                continue  # errors eliminate the solution
        return output

    def _bind(
        self, solutions: List[Solution], pattern: ast.BindPattern, graph: Graph
    ) -> List[Solution]:
        exists = self._exists_callback(graph)
        output: List[Solution] = []
        for solution in solutions:
            if pattern.variable in solution:
                raise EvaluationError(
                    f"BIND reuses bound variable {pattern.variable}"
                )
            extended = dict(solution)
            try:
                extended[pattern.variable] = evaluate_expression(
                    pattern.expression, solution, exists
                )
            except ExpressionError:
                pass  # variable stays unbound
            output.append(extended)
        return output

    def _join_values(
        self, solutions: List[Solution], values: ast.ValuesPattern
    ) -> List[Solution]:
        rows: List[Solution] = []
        for row in values.rows:
            mapping: Solution = {}
            for variable, term in zip(values.variables, row):
                if term is not None:
                    mapping[variable] = term
            rows.append(mapping)
        return _hash_join(solutions, rows)

    def _left_join(
        self, solutions: List[Solution], inner: ast.Pattern, graph: Graph
    ) -> List[Solution]:
        output: List[Solution] = []
        for solution in solutions:
            extensions = self._eval(inner, [dict(solution)], graph)
            if extensions:
                output.extend(extensions)
            else:
                output.append(solution)
        return output

    def _eval_graph(
        self, pattern: ast.GraphGraphPattern, solutions: List[Solution]
    ) -> List[Solution]:
        if isinstance(pattern.graph, IRI):
            target = self.named_graphs.get(pattern.graph)
            if target is None:
                return []
            return self._eval(pattern.pattern, solutions, target)
        # GRAPH ?g: union over named graphs, binding ?g.
        variable = pattern.graph
        assert isinstance(variable, Variable)
        output: List[Solution] = []
        for name, target in self.named_graphs.items():
            seeded = []
            for solution in solutions:
                bound = solution.get(variable)
                if bound is not None and bound != name:
                    continue
                extended = dict(solution)
                extended[variable] = name
                seeded.append(extended)
            output.extend(self._eval(pattern.pattern, seeded, target))
        return output

    # ------------------------------------------------------------------
    # Solution modifiers and query forms
    # ------------------------------------------------------------------
    def _apply_modifiers(
        self, query: ast.Query, solutions: List[Solution]
    ) -> List[Solution]:
        modifier = query.modifier
        if modifier.group_by or _projection_aggregates(query):
            solutions = self._aggregate(query, solutions)
        elif query.projection is not None and not query.projection.select_all:
            solutions = self._project(query.projection, solutions)
        if modifier.order_by:
            solutions = self._order(solutions, modifier.order_by)
        if query.projection is not None and (
            query.projection.distinct or query.projection.reduced
        ):
            solutions = _distinct(solutions)
        if modifier.offset is not None:
            solutions = solutions[modifier.offset:]
        if modifier.limit is not None:
            solutions = solutions[: modifier.limit]
        return solutions

    def _project(
        self, projection: ast.Projection, solutions: List[Solution]
    ) -> List[Solution]:
        exists = self._exists_callback(self.graph)
        output: List[Solution] = []
        for solution in solutions:
            projected: Solution = {}
            for item in projection.items:
                if isinstance(item, Variable):
                    if item in solution:
                        projected[item] = solution[item]
                else:
                    try:
                        projected[item.variable] = evaluate_expression(
                            item.expression, solution, exists
                        )
                    except ExpressionError:
                        pass
            output.append(projected)
        return output

    def _order(
        self, solutions: List[Solution], order_by
    ) -> List[Solution]:
        exists = self._exists_callback(self.graph)

        def key(solution: Solution):
            """Group-by key of *solution* (shared term sort order)."""
            parts = []
            for condition in order_by:
                try:
                    term = evaluate_expression(
                        condition.expression, solution, exists
                    )
                    # Numeric sort where possible, else term order.
                    if isinstance(term, Literal) and term.is_numeric():
                        part = (1, (0, float(term.python_value())))
                    else:
                        part = (1, (1,) + tuple(map(str, term.sort_key())))
                except ExpressionError:
                    part = (0, ())  # unbound sorts first
                parts.append(_Reversible(part, condition.descending))
            return parts

        return sorted(solutions, key=key)

    def _aggregate(
        self, query: ast.Query, solutions: List[Solution]
    ) -> List[Solution]:
        modifier = query.modifier
        exists = self._exists_callback(self.graph)
        group_expressions: List[ast.Expression] = []
        group_aliases: List[Optional[Variable]] = []
        for condition in modifier.group_by:
            if isinstance(condition, ast.ProjectionExpression):
                group_expressions.append(condition.expression)
                group_aliases.append(condition.variable)
            else:
                group_expressions.append(condition)
                group_aliases.append(None)

        groups: Dict[tuple, List[Solution]] = {}
        group_keys: Dict[tuple, Solution] = {}
        for solution in solutions:
            key_parts = []
            key_binding: Solution = {}
            for expression, alias in zip(group_expressions, group_aliases):
                try:
                    value = evaluate_expression(expression, solution, exists)
                except ExpressionError:
                    value = None
                key_parts.append(value)
                if alias is not None and value is not None:
                    key_binding[alias] = value
                elif (
                    isinstance(expression, ast.TermExpression)
                    and isinstance(expression.term, Variable)
                    and value is not None
                ):
                    key_binding[expression.term] = value
            key = tuple(key_parts)
            groups.setdefault(key, []).append(solution)
            group_keys.setdefault(key, key_binding)
        if not modifier.group_by and not groups:
            groups[()] = []
            group_keys[()] = {}

        output: List[Solution] = []
        for key, members in groups.items():
            result = dict(group_keys[key])
            if query.projection is not None and not query.projection.select_all:
                for item in query.projection.items:
                    if isinstance(item, Variable):
                        continue  # already present from the group key
                    value = self._eval_aggregate_expression(
                        item.expression, members, exists
                    )
                    if value is not None:
                        result[item.variable] = value
            keep = True
            for having in modifier.having:
                value = self._eval_aggregate_expression(having, members, exists)
                try:
                    keep = keep and value is not None and effective_boolean_value(value)
                except ExpressionError:
                    keep = False
            if keep:
                output.append(result)
        return output

    def _eval_aggregate_expression(
        self, expression: ast.Expression, members: List[Solution], exists
    ) -> Optional[Term]:
        if isinstance(expression, ast.Aggregate):
            return self._compute_aggregate(expression, members, exists)
        # Mixed expression (e.g. HAVING (COUNT(?x) > 2)): replace every
        # aggregate subexpression by its computed value, then evaluate
        # the residue on a sample member (grouped variables agree
        # within the group, so any member works).
        rewritten = self._substitute_aggregates(expression, members, exists)
        sample = members[0] if members else {}
        try:
            return evaluate_expression(rewritten, sample, exists)
        except ExpressionError:
            return None

    def _substitute_aggregates(
        self, expression: ast.Expression, members: List[Solution], exists
    ) -> ast.Expression:
        if isinstance(expression, ast.Aggregate):
            value = self._compute_aggregate(expression, members, exists)
            if value is None:
                # Force an evaluation error downstream (unbound var).
                return ast.TermExpression(Variable("__aggregate_error"))
            return ast.TermExpression(value)
        def substitute(e: ast.Expression) -> ast.Expression:
            """Inline outer bindings into *e* before evaluation."""
            return self._substitute_aggregates(e, members, exists)

        if isinstance(expression, ast.OrExpression):
            return ast.OrExpression(tuple(map(substitute, expression.operands)))
        if isinstance(expression, ast.AndExpression):
            return ast.AndExpression(tuple(map(substitute, expression.operands)))
        if isinstance(expression, ast.NotExpression):
            return ast.NotExpression(substitute(expression.operand))
        if isinstance(expression, ast.Comparison):
            return ast.Comparison(
                expression.op, substitute(expression.left), substitute(expression.right)
            )
        if isinstance(expression, ast.Arithmetic):
            return ast.Arithmetic(
                expression.op, substitute(expression.left), substitute(expression.right)
            )
        if isinstance(expression, ast.UnaryMinus):
            return ast.UnaryMinus(substitute(expression.operand))
        if isinstance(expression, ast.InExpression):
            return ast.InExpression(
                substitute(expression.operand),
                tuple(map(substitute, expression.choices)),
                expression.negated,
            )
        if isinstance(expression, ast.BuiltinCall):
            return ast.BuiltinCall(expression.name, tuple(map(substitute, expression.args)))
        if isinstance(expression, ast.FunctionCall):
            return ast.FunctionCall(
                expression.function,
                tuple(map(substitute, expression.args)),
                expression.distinct,
            )
        return expression

    def _compute_aggregate(
        self, aggregate: ast.Aggregate, members: List[Solution], exists
    ) -> Optional[Term]:
        values: List[Term] = []
        if aggregate.expression is None:  # COUNT(*)
            count = len(members)
            return Literal(str(count), datatype="http://www.w3.org/2001/XMLSchema#integer")
        for member in members:
            try:
                values.append(
                    evaluate_expression(aggregate.expression, member, exists)
                )
            except ExpressionError:
                continue
        if aggregate.distinct:
            unique: List[Term] = []
            seen: Set[Term] = set()
            for value in values:
                if value not in seen:
                    seen.add(value)
                    unique.append(value)
            values = unique
        name = aggregate.name
        integer = "http://www.w3.org/2001/XMLSchema#integer"
        double = "http://www.w3.org/2001/XMLSchema#double"
        if name == "COUNT":
            return Literal(str(len(values)), datatype=integer)
        if not values:
            return None
        if name == "SAMPLE":
            return values[0]
        if name == "GROUP_CONCAT":
            separator = aggregate.separator if aggregate.separator is not None else " "
            parts = [v.lexical if isinstance(v, Literal) else str(v) for v in values]
            return Literal(separator.join(parts))
        if name in ("MIN", "MAX"):
            ordered = sorted(values, key=lambda t: t.sort_key())
            return ordered[0] if name == "MIN" else ordered[-1]
        numbers = []
        for value in values:
            if isinstance(value, Literal) and value.is_numeric():
                numbers.append(float(value.python_value()))
        if not numbers:
            return None
        if name == "SUM":
            total = sum(numbers)
            if total.is_integer():
                return Literal(str(int(total)), datatype=integer)
            return Literal(repr(total), datatype=double)
        if name == "AVG":
            return Literal(repr(sum(numbers) / len(numbers)), datatype=double)
        return None

    def _construct(self, query: ast.Query, solutions: List[Solution]) -> Graph:
        from ..rdf.terms import Triple

        result = Graph()
        for index, solution in enumerate(solutions):
            for template_triple in query.template:
                s = _instantiate(template_triple.subject, solution, index)
                p = _instantiate(template_triple.predicate, solution, index)
                o = _instantiate(template_triple.object, solution, index)
                if s is None or p is None or o is None:
                    continue
                try:
                    result.add(Triple(s, p, o))
                except ValueError:
                    continue
        return result

    def _describe(self, query: ast.Query, solutions: List[Solution]) -> Graph:
        result = Graph()
        targets: List[Term] = []
        for target in query.describe_targets:
            if isinstance(target, Variable):
                for solution in solutions:
                    if target in solution:
                        targets.append(solution[target])
            else:
                targets.append(target)
        if query.describe_all:
            for solution in solutions:
                targets.extend(solution.values())
        for target in targets:
            for triple in self.graph.describe(target):
                result.add(triple)
        return result


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _flatten_bgp(
    pattern: Optional[ast.Pattern],
) -> Optional[List[ast.TriplePattern]]:
    """Flatten a pattern into a triple list iff it is a pure BGP
    (triples and nested groups only); None otherwise."""
    if pattern is None:
        return []
    triples: List[ast.TriplePattern] = []
    stack = [pattern]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.TriplePattern):
            triples.append(node)
        elif isinstance(node, ast.GroupPattern):
            stack.extend(reversed(node.elements))
        else:
            return None
    return triples


def _resolve(term: Term, solution: Solution) -> Term:
    if isinstance(term, (Variable, BlankNode)):
        return solution.get(term, term)  # type: ignore[arg-type]
    return term


def _try_extend(solution: Solution, pattern_terms, triple) -> Optional[Solution]:
    extended: Optional[Solution] = None
    for pattern_term, data_term in zip(pattern_terms, triple):
        if isinstance(pattern_term, (Variable, BlankNode)):
            source = extended if extended is not None else solution
            bound = source.get(pattern_term)  # type: ignore[arg-type]
            if bound is None:
                if extended is None:
                    extended = dict(solution)
                extended[pattern_term] = data_term  # type: ignore[index]
            elif bound != data_term:
                return None
        elif pattern_term != data_term:
            return None
    return extended if extended is not None else dict(solution)


def _compatible(a: Solution, b: Solution) -> bool:
    if len(b) < len(a):
        a, b = b, a
    return all(b.get(var, val) == val for var, val in a.items())


def _hash_join(left: List[Solution], right: List[Solution]) -> List[Solution]:
    output: List[Solution] = []
    for l_solution in left:
        for r_solution in right:
            if _compatible(l_solution, r_solution):
                merged = dict(l_solution)
                merged.update(r_solution)
                output.append(merged)
    return output


def _minus_match(solution: Solution, removed: List[Solution]) -> bool:
    for other in removed:
        shared = set(solution) & set(other)
        if shared and all(solution[v] == other[v] for v in shared):
            return True
    return False


def _distinct(solutions: List[Solution]) -> List[Solution]:
    seen: Set[frozenset] = set()
    output: List[Solution] = []
    for solution in solutions:
        key = frozenset(solution.items())
        if key not in seen:
            seen.add(key)
            output.append(solution)
    return output


def _projection_aggregates(query: ast.Query) -> bool:
    if query.projection is None or query.projection.select_all:
        return False
    for item in query.projection.items:
        if isinstance(item, ast.ProjectionExpression):
            from ..sparql import walk

            for node in walk.iter_expressions(item.expression):
                if isinstance(node, ast.Aggregate):
                    return True
    return False


def _instantiate(term: Term, solution: Solution, solution_index: int):
    if isinstance(term, Variable):
        return solution.get(term)
    if isinstance(term, BlankNode):
        return BlankNode(f"{term.label}_{solution_index}")
    return term


class _Reversible:
    """Sort-key wrapper implementing descending order via reversed
    comparisons."""

    __slots__ = ("value", "descending")

    def __init__(self, value, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_Reversible") -> bool:
        if self.descending:
            return other.value < self.value
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _Reversible):
            return self.value == other.value
        return NotImplemented


def evaluate_bgp_order(
    patterns: List[ast.TriplePattern], graph: Graph
) -> List[ast.TriplePattern]:
    """Greedy selectivity ordering of a basic graph pattern.

    Repeatedly picks the pattern with the lowest estimated cardinality
    given the variables already bound by earlier picks — the classic
    heuristic that index-backed SPARQL engines apply and that the
    nested-loop engine (deliberately) does not.
    """
    if len(patterns) <= 1:
        return list(patterns)
    remaining = list(patterns)
    bound: Set[Variable] = set()
    ordered: List[ast.TriplePattern] = []
    while remaining:
        best = None
        best_cost = None
        for pattern in remaining:
            cost = _estimate(pattern, bound, graph)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best = pattern
        assert best is not None
        ordered.append(best)
        remaining.remove(best)
        bound.update(
            term for term in best.terms() if isinstance(term, Variable)
        )
    return ordered


def _estimate(
    pattern: ast.TriplePattern, bound: Set[Variable], graph: Graph
) -> float:
    def known(term: Term) -> Optional[Term]:
        """Resolve *term* against the current binding (None = unbound)."""
        if isinstance(term, Variable):
            return term if term in bound else None
        if isinstance(term, BlankNode):
            return None
        return term

    s, p, o = (known(t) for t in pattern.terms())
    s_const = s is not None and not isinstance(s, Variable)
    p_const = p is not None and not isinstance(p, Variable)
    o_const = o is not None and not isinstance(o, Variable)
    # Constants give exact counts; bound variables give a discount.
    base = graph.count_matches(
        s if s_const else None,
        p if p_const else None,
        o if o_const else None,
    )
    bound_vars = sum(
        1
        for term, const in ((s, s_const), (p, p_const), (o, o_const))
        if term is not None and not const
    )
    return base / (10.0 ** bound_vars) + 0.001
