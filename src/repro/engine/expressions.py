"""SPARQL expression evaluation (filters, BIND, HAVING).

Implements the fragment of SPARQL 1.1 expression semantics that the
corpus and the generated workloads exercise: effective boolean value,
term equality and ordering with numeric coercion, arithmetic, logical
connectives with SPARQL's three-valued error handling, and the common
builtins.

Type errors follow the spec: they raise :class:`ExpressionError`
internally, and filters treat an erroring constraint as *false*
(``||``/``&&`` implement the error-absorbing truth tables).

Paper mapping: expression semantics backing the Figure 3 engine runs.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Mapping, Optional, Union

from ..rdf.terms import (
    IRI,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    BlankNode,
    Literal,
    Term,
    Variable,
)
from ..sparql import ast

__all__ = ["ExpressionError", "evaluate_expression", "effective_boolean_value"]

Binding = Mapping[Variable, Term]


class ExpressionError(Exception):
    """A SPARQL expression type error (absorbed by filters)."""


_TRUE = Literal("true", datatype=XSD_BOOLEAN)
_FALSE = Literal("false", datatype=XSD_BOOLEAN)


def _boolean(value: bool) -> Literal:
    return _TRUE if value else _FALSE


def _numeric_value(term: Term) -> Union[int, float]:
    if isinstance(term, Literal) and term.is_numeric():
        try:
            return term.python_value()  # type: ignore[return-value]
        except ValueError as exc:
            raise ExpressionError(f"bad numeric lexical form: {term.lexical!r}") from exc
    raise ExpressionError(f"not a numeric literal: {term!r}")


def effective_boolean_value(term: Term) -> bool:
    """SPARQL §17.2.2 EBV rules."""
    if isinstance(term, Literal):
        if term.datatype == XSD_BOOLEAN:
            return term.lexical in ("true", "1")
        if term.is_numeric():
            try:
                return bool(term.python_value())
            except ValueError:
                return False
        if term.language is not None or term.datatype in (None, XSD_STRING):
            return len(term.lexical) > 0
    raise ExpressionError(f"no effective boolean value for {term!r}")


def evaluate_expression(
    expression: ast.Expression,
    binding: Binding,
    exists_evaluator: Optional[Callable[[ast.Pattern, Binding], bool]] = None,
) -> Term:
    """Evaluate *expression* under *binding*, returning an RDF term.

    *exists_evaluator* is injected by the pattern evaluator to handle
    EXISTS / NOT EXISTS (expressions cannot evaluate patterns alone).
    Raises :class:`ExpressionError` on unbound variables and type
    errors.
    """
    evaluator = _Evaluator(binding, exists_evaluator)
    return evaluator.eval(expression)


class _Evaluator:
    def __init__(
        self,
        binding: Binding,
        exists_evaluator: Optional[Callable[[ast.Pattern, Binding], bool]],
    ) -> None:
        self.binding = binding
        self.exists_evaluator = exists_evaluator

    def eval(self, expression: ast.Expression) -> Term:
        """Evaluate *expression* to an RDF term (raising on type errors)."""
        if isinstance(expression, ast.TermExpression):
            return self._term(expression.term)
        if isinstance(expression, ast.OrExpression):
            return self._or(expression)
        if isinstance(expression, ast.AndExpression):
            return self._and(expression)
        if isinstance(expression, ast.NotExpression):
            return _boolean(not self._ebv(expression.operand))
        if isinstance(expression, ast.Comparison):
            return self._comparison(expression)
        if isinstance(expression, ast.InExpression):
            return self._in(expression)
        if isinstance(expression, ast.Arithmetic):
            return self._arithmetic(expression)
        if isinstance(expression, ast.UnaryMinus):
            value = _numeric_value(self.eval(expression.operand))
            return _numeric_literal(-value)
        if isinstance(expression, ast.BuiltinCall):
            return self._builtin(expression)
        if isinstance(expression, ast.ExistsExpression):
            return self._exists(expression)
        if isinstance(expression, ast.FunctionCall):
            return self._function(expression)
        if isinstance(expression, ast.Aggregate):
            raise ExpressionError("aggregate outside aggregation context")
        raise ExpressionError(f"cannot evaluate {type(expression).__name__}")

    # ------------------------------------------------------------------
    def _term(self, term: Term) -> Term:
        if isinstance(term, Variable):
            value = self.binding.get(term)
            if value is None:
                raise ExpressionError(f"unbound variable {term}")
            return value
        return term

    def _ebv(self, expression: ast.Expression) -> bool:
        return effective_boolean_value(self.eval(expression))

    def _or(self, expression: ast.OrExpression) -> Literal:
        # SPARQL ||: true wins over error; error if no true and any error.
        saw_error = False
        for operand in expression.operands:
            try:
                if self._ebv(operand):
                    return _TRUE
            except ExpressionError:
                saw_error = True
        if saw_error:
            raise ExpressionError("|| with errors and no true operand")
        return _FALSE

    def _and(self, expression: ast.AndExpression) -> Literal:
        saw_error = False
        for operand in expression.operands:
            try:
                if not self._ebv(operand):
                    return _FALSE
            except ExpressionError:
                saw_error = True
        if saw_error:
            raise ExpressionError("&& with errors and no false operand")
        return _TRUE

    def _comparison(self, expression: ast.Comparison) -> Literal:
        left = self.eval(expression.left)
        right = self.eval(expression.right)
        op = expression.op
        if op == "=":
            return _boolean(_terms_equal(left, right))
        if op == "!=":
            return _boolean(not _terms_equal(left, right))
        return _boolean(_ordered_compare(left, right, op))

    def _in(self, expression: ast.InExpression) -> Literal:
        operand = self.eval(expression.operand)
        found = False
        for choice in expression.choices:
            try:
                if _terms_equal(operand, self.eval(choice)):
                    found = True
                    break
            except ExpressionError:
                continue
        return _boolean(found != expression.negated)

    def _arithmetic(self, expression: ast.Arithmetic) -> Literal:
        left = _numeric_value(self.eval(expression.left))
        right = _numeric_value(self.eval(expression.right))
        op = expression.op
        if op == "+":
            return _numeric_literal(left + right)
        if op == "-":
            return _numeric_literal(left - right)
        if op == "*":
            return _numeric_literal(left * right)
        if op == "/":
            if right == 0:
                raise ExpressionError("division by zero")
            result = left / right
            return _numeric_literal(result)
        raise ExpressionError(f"unknown arithmetic operator {op!r}")

    def _exists(self, expression: ast.ExistsExpression) -> Literal:
        if self.exists_evaluator is None:
            raise ExpressionError("EXISTS outside a pattern context")
        found = self.exists_evaluator(expression.pattern, self.binding)
        return _boolean(found != expression.negated)

    def _function(self, expression: ast.FunctionCall) -> Term:
        # xsd: casts are the only IRI functions the engines support.
        name = expression.function.value
        if name.startswith("http://www.w3.org/2001/XMLSchema#") and expression.args:
            target = name.rsplit("#", 1)[1]
            value = self.eval(expression.args[0])
            return _cast(value, target)
        raise ExpressionError(f"unsupported function {name}")

    # ------------------------------------------------------------------
    def _builtin(self, expression: ast.BuiltinCall) -> Term:
        name = expression.name
        args = expression.args
        if name == "BOUND":
            if len(args) != 1 or not isinstance(args[0], ast.TermExpression):
                raise ExpressionError("BOUND requires a variable")
            term = args[0].term
            if not isinstance(term, Variable):
                raise ExpressionError("BOUND requires a variable")
            return _boolean(term in self.binding)
        if name == "COALESCE":
            for arg in args:
                try:
                    return self.eval(arg)
                except ExpressionError:
                    continue
            raise ExpressionError("COALESCE: all arguments errored")
        if name == "IF":
            if len(args) != 3:
                raise ExpressionError("IF requires 3 arguments")
            return self.eval(args[1]) if self._ebv(args[0]) else self.eval(args[2])

        values = [self.eval(arg) for arg in args]
        handler = _SIMPLE_BUILTINS.get(name)
        if handler is None:
            raise ExpressionError(f"unsupported builtin {name}")
        return handler(values)


def _terms_equal(left: Term, right: Term) -> bool:
    if left == right:
        return True
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric() and right.is_numeric():
            return _numeric_value(left) == _numeric_value(right)
        # Identical lexical forms with incomparable datatypes already
        # handled by ==; different lexical forms of unknown types error.
        if left.effective_datatype != right.effective_datatype:
            raise ExpressionError("incomparable literals")
    return False


def _ordered_compare(left: Term, right: Term, op: str) -> bool:
    if (
        isinstance(left, Literal)
        and isinstance(right, Literal)
        and left.is_numeric()
        and right.is_numeric()
    ):
        lv, rv = _numeric_value(left), _numeric_value(right)
    elif (
        isinstance(left, Literal)
        and isinstance(right, Literal)
        and left.effective_datatype == right.effective_datatype
    ):
        lv, rv = left.lexical, right.lexical
    else:
        raise ExpressionError(f"cannot order {left!r} and {right!r}")
    if op == "<":
        return lv < rv
    if op == ">":
        return lv > rv
    if op == "<=":
        return lv <= rv
    if op == ">=":
        return lv >= rv
    raise ExpressionError(f"unknown comparison {op!r}")


def _numeric_literal(value: Union[int, float]) -> Literal:
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    return Literal(repr(value), datatype=XSD_DOUBLE)


def _cast(value: Term, target: str) -> Literal:
    if not isinstance(value, Literal):
        raise ExpressionError(f"cannot cast {value!r}")
    try:
        if target == "integer":
            return Literal(str(int(float(value.lexical))), datatype=XSD_INTEGER)
        if target in ("decimal", "double", "float"):
            return Literal(repr(float(value.lexical)), datatype=XSD_DOUBLE)
        if target == "string":
            return Literal(value.lexical)
        if target == "boolean":
            return _boolean(value.lexical in ("true", "1"))
    except ValueError as exc:
        raise ExpressionError(str(exc)) from exc
    raise ExpressionError(f"unsupported cast xsd:{target}")


# ---------------------------------------------------------------------------
# Simple builtins: list of evaluated args -> term.
# ---------------------------------------------------------------------------


def _require_literal(term: Term, builtin: str) -> Literal:
    if not isinstance(term, Literal):
        raise ExpressionError(f"{builtin} requires a literal")
    return term


def _string_value(term: Term, builtin: str) -> str:
    return _require_literal(term, builtin).lexical


def _builtin_str(values) -> Literal:
    term = values[0]
    if isinstance(term, IRI):
        return Literal(term.value)
    if isinstance(term, Literal):
        return Literal(term.lexical)
    raise ExpressionError("STR of blank node")


def _builtin_lang(values) -> Literal:
    return Literal(_require_literal(values[0], "LANG").language or "")


def _builtin_datatype(values) -> IRI:
    return IRI(_require_literal(values[0], "DATATYPE").effective_datatype)


def _builtin_regex(values) -> Literal:
    if len(values) < 2:
        raise ExpressionError("REGEX requires 2 or 3 arguments")
    text = _string_value(values[0], "REGEX")
    pattern = _string_value(values[1], "REGEX")
    flags = 0
    if len(values) >= 3 and "i" in _string_value(values[2], "REGEX"):
        flags |= re.IGNORECASE
    try:
        return _boolean(re.search(pattern, text, flags) is not None)
    except re.error as exc:
        raise ExpressionError(f"bad regex: {exc}") from exc


def _builtin_substr(values) -> Literal:
    text = _string_value(values[0], "SUBSTR")
    start = int(_numeric_value(values[1]))
    if len(values) >= 3:
        length = int(_numeric_value(values[2]))
        return Literal(text[start - 1 : start - 1 + length])
    return Literal(text[start - 1 :])


def _builtin_langmatches(values) -> Literal:
    tag = _string_value(values[0], "LANGMATCHES").lower()
    pattern = _string_value(values[1], "LANGMATCHES").lower()
    if pattern == "*":
        return _boolean(bool(tag))
    return _boolean(tag == pattern or tag.startswith(pattern + "-"))


_SIMPLE_BUILTINS: Dict[str, Callable] = {
    "STR": _builtin_str,
    "LANG": _builtin_lang,
    "DATATYPE": _builtin_datatype,
    "STRLEN": lambda v: _numeric_literal(len(_string_value(v[0], "STRLEN"))),
    "UCASE": lambda v: Literal(_string_value(v[0], "UCASE").upper()),
    "LCASE": lambda v: Literal(_string_value(v[0], "LCASE").lower()),
    "CONTAINS": lambda v: _boolean(
        _string_value(v[1], "CONTAINS") in _string_value(v[0], "CONTAINS")
    ),
    "STRSTARTS": lambda v: _boolean(
        _string_value(v[0], "STRSTARTS").startswith(_string_value(v[1], "STRSTARTS"))
    ),
    "STRENDS": lambda v: _boolean(
        _string_value(v[0], "STRENDS").endswith(_string_value(v[1], "STRENDS"))
    ),
    "CONCAT": lambda v: Literal(
        "".join(_string_value(term, "CONCAT") for term in v)
    ),
    "ABS": lambda v: _numeric_literal(abs(_numeric_value(v[0]))),
    "CEIL": lambda v: _numeric_literal(int(-(-_numeric_value(v[0]) // 1))),
    "FLOOR": lambda v: _numeric_literal(int(_numeric_value(v[0]) // 1)),
    "ROUND": lambda v: _numeric_literal(round(_numeric_value(v[0]))),
    "ISIRI": lambda v: _boolean(isinstance(v[0], IRI)),
    "ISURI": lambda v: _boolean(isinstance(v[0], IRI)),
    "ISBLANK": lambda v: _boolean(isinstance(v[0], BlankNode)),
    "ISLITERAL": lambda v: _boolean(isinstance(v[0], Literal)),
    "ISNUMERIC": lambda v: _boolean(
        isinstance(v[0], Literal) and v[0].is_numeric()
    ),
    "SAMETERM": lambda v: _boolean(v[0] == v[1]),
    "REGEX": _builtin_regex,
    "SUBSTR": _builtin_substr,
    "LANGMATCHES": _builtin_langmatches,
    "IRI": lambda v: v[0] if isinstance(v[0], IRI) else IRI(_string_value(v[0], "IRI")),
    "URI": lambda v: v[0] if isinstance(v[0], IRI) else IRI(_string_value(v[0], "URI")),
}
