"""Canonical graphs and hypergraphs of queries (paper §5).

* The **canonical graph** of a *graph pattern* (a pattern whose triple
  patterns never use a variable in predicate position) has an edge
  {x, y} for every triple pattern (x, ℓ, y) with constant ℓ, and the
  subjects/objects as nodes.  Following footnote 20, filters of the
  form ``?x = ?y`` collapse the two nodes.
* The **canonical hypergraph** of any AOF pattern has one hyperedge per
  triple pattern, containing the *variables and blank nodes* of that
  triple (constants are not nodes of the hypergraph).

Edge direction and labels are dropped — the paper observes they do not
influence structure or cyclicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from ..rdf.terms import BlankNode, Term, Variable
from ..sparql import ast, walk
from .graphutil import Multigraph

__all__ = [
    "Hypergraph",
    "canonical_graph",
    "canonical_hypergraph",
    "has_predicate_variable",
    "collect_triples",
]


def collect_triples(pattern: Optional[ast.Pattern]) -> List[ast.TriplePattern]:
    """All triple patterns of an AOF pattern, in document order."""
    return list(walk.iter_triple_patterns(pattern, enter_subqueries=False))


def has_predicate_variable(pattern: Optional[ast.Pattern]) -> bool:
    """Does any triple pattern use a variable in predicate position?

    Such queries have no meaningful canonical graph (Example 5.1) and
    are analyzed through their hypergraph instead (§6.2).
    """
    return any(
        isinstance(triple.predicate, Variable)
        for triple in collect_triples(pattern)
    )


def _equality_classes(pattern: Optional[ast.Pattern]) -> Dict[Term, Term]:
    """Union-find representatives for ``?x = ?y`` filter collapsing."""
    parent: Dict[Term, Term] = {}

    def find(term: Term) -> Term:
        """Union-find root of *term*, with path compression."""
        root = term
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(term, term) != term:
            parent[term], term = root, parent[term]
        return root

    def union(a: Term, b: Term) -> None:
        """Union the equivalence classes of *a* and *b*."""
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b

    for node in walk.iter_patterns(pattern, enter_subqueries=False):
        if isinstance(node, ast.FilterPattern):
            expression = node.expression
            if (
                isinstance(expression, ast.Comparison)
                and expression.op == "="
                and isinstance(expression.left, ast.TermExpression)
                and isinstance(expression.left.term, Variable)
                and isinstance(expression.right, ast.TermExpression)
                and isinstance(expression.right.term, Variable)
            ):
                union(expression.left.term, expression.right.term)
    return {term: find(term) for term in parent}


def canonical_graph(
    pattern: Optional[ast.Pattern],
    include_constants: bool = True,
    collapse_equalities: bool = True,
) -> Multigraph:
    """Build the canonical graph of an AOF *graph pattern*.

    Raises :class:`ValueError` when a triple pattern has a variable
    predicate (callers should test :func:`has_predicate_variable`).

    With ``include_constants=False``, only variables and blank nodes
    become graph nodes (the paper's §6.1 constants-excluded rerun);
    triples with a constant endpoint then contribute an isolated node
    or nothing, rather than an edge.
    """
    representatives = (
        _equality_classes(pattern) if collapse_equalities else {}
    )

    def rep(term: Term) -> Term:
        """Canonical representative of *term* under ``SameTerm`` merging."""
        return representatives.get(term, term)

    graph = Multigraph()
    for triple in collect_triples(pattern):
        if isinstance(triple.predicate, Variable):
            raise ValueError(
                "canonical graph undefined for predicate-variable triples"
            )
        subject, obj = rep(triple.subject), rep(triple.object)
        if include_constants:
            graph.add_edge(subject, obj)
            continue
        subject_is_node = isinstance(subject, (Variable, BlankNode))
        object_is_node = isinstance(obj, (Variable, BlankNode))
        if subject_is_node and object_is_node:
            graph.add_edge(subject, obj)
        elif subject_is_node:
            graph.add_node(subject)
        elif object_is_node:
            graph.add_node(obj)
    return graph


@dataclass
class Hypergraph:
    """A hypergraph: nodes plus a list of hyperedges (node frozensets).

    Empty hyperedges (triples without variables) are dropped — they
    contribute nothing to the structure.
    """

    nodes: Set[Term] = field(default_factory=set)
    edges: List[FrozenSet[Term]] = field(default_factory=list)

    def add_edge(self, edge: FrozenSet[Term]) -> None:
        """Add a hyperedge (duplicates collapse; supersets absorb)."""
        if edge:
            self.edges.append(edge)
            self.nodes |= edge

    def distinct_edges(self) -> List[FrozenSet[Term]]:
        """The edges with subset-dominated duplicates removed."""
        seen: Set[FrozenSet[Term]] = set()
        unique: List[FrozenSet[Term]] = []
        for edge in self.edges:
            if edge not in seen:
                seen.add(edge)
                unique.append(edge)
        return unique

    def primal_graph(self) -> Multigraph:
        """The Gaifman/primal graph: clique per hyperedge."""
        graph = Multigraph()
        for node in self.nodes:
            graph.add_node(node)
        seen_pairs: Set[FrozenSet[Term]] = set()
        for edge in self.edges:
            members = sorted(edge, key=lambda t: t.sort_key())
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    pair = frozenset((u, v))
                    if pair not in seen_pairs:
                        seen_pairs.add(pair)
                        graph.add_edge(u, v)
        return graph

    def is_acyclic(self) -> bool:
        """α-acyclicity via GYO reduction (ears removal).

        Repeatedly remove nodes contained in at most one hyperedge and
        hyperedges contained in another hyperedge; the hypergraph is
        acyclic iff this empties it.
        """
        edges = [set(edge) for edge in self.distinct_edges()]
        changed = True
        while changed and edges:
            changed = False
            # Remove hyperedges contained in another hyperedge.
            kept: List[Set[Term]] = []
            for i, edge in enumerate(edges):
                contained = any(
                    i != j and edge <= other
                    for j, other in enumerate(edges)
                )
                if contained:
                    changed = True
                else:
                    kept.append(edge)
            edges = kept
            # Remove nodes occurring in exactly one hyperedge.
            occurrence: Dict[Term, int] = {}
            for edge in edges:
                for node in edge:
                    occurrence[node] = occurrence.get(node, 0) + 1
            for edge in edges:
                lonely = {node for node in edge if occurrence[node] == 1}
                if lonely:
                    edge -= lonely
                    changed = True
            edges = [edge for edge in edges if edge]
        return not edges


def canonical_hypergraph(pattern: Optional[ast.Pattern]) -> Hypergraph:
    """Build the canonical hypergraph of an AOF pattern (§5)."""
    hypergraph = Hypergraph()
    for triple in collect_triples(pattern):
        members = frozenset(
            term
            for term in triple.terms()
            if isinstance(term, (Variable, BlankNode))
        )
        hypergraph.add_edge(members)
    return hypergraph
