"""Projection detection (paper §4.4) — re-exported for discoverability.

The implementation lives in :mod:`repro.analysis.features` because the
shallow feature pass computes it alongside the keyword set; this module
gives the §4.4 analysis its own import path and documents the rules.

Per SPARQL 1.1 rec §18.2.1 (as interpreted by the paper):

* ``SELECT *`` never projects;
* a Select query projects iff its selected variables are a strict
  subset of the body's in-scope variables;
* an Ask query "uses projection" iff it binds at least one variable —
  most Ask queries in the logs test a concrete triple and do not;
* when the only unselected variables come from ``BIND``, the verdict is
  indeterminate (``None``) — the paper bounds projection usage between
  14.98% and 16.28% because of exactly this case.
"""

from .features import detect_projection

__all__ = ["detect_projection"]
