"""Well-designedness and pattern trees (paper §5.2).

Implements three ingredients of the paper's CQOF classification:

1. Translation of AOF patterns (group graph patterns using only And,
   Opt and Filter) into binary algebra trees over Join / LeftJoin /
   Filter, following the SPARQL semantics where ``OPTIONAL`` takes the
   conjunction of the preceding group elements as its left operand.
2. The well-designedness test of Pérez et al. (Definition 5.3): for
   every Opt-occurrence (P1 Opt P2), the variables of
   vars(P2) \\ vars(P1) must not occur outside that occurrence.
3. Pattern trees (Example 5.4, Currying encoding) with their interface
   width — the maximum number of variables a node shares with a child —
   and the Barceló et al. variable-connectedness condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..rdf.terms import Variable
from ..sparql import ast, walk

__all__ = [
    "AlgebraNode",
    "AlgebraTriple",
    "AlgebraJoin",
    "AlgebraLeftJoin",
    "AlgebraFilter",
    "AlgebraEmpty",
    "to_binary_algebra",
    "is_well_designed",
    "PatternTreeNode",
    "build_pattern_tree",
    "interface_width",
    "tree_is_variable_connected",
]


# ---------------------------------------------------------------------------
# Binary And/Opt/Filter algebra
# ---------------------------------------------------------------------------


class AlgebraNode:
    """Base class for binary AOF algebra nodes."""

    __slots__ = ()

    def variables(self) -> Set[Variable]:
        """All variables mentioned in this algebra subtree."""
        raise NotImplementedError


@dataclass(frozen=True)
class AlgebraEmpty(AlgebraNode):
    """The empty pattern (left operand of a leading OPTIONAL)."""

    def variables(self) -> Set[Variable]:
        """All variables mentioned in this algebra subtree."""
        return set()


@dataclass(frozen=True)
class AlgebraTriple(AlgebraNode):
    """A triple pattern leaf of the binary algebra."""
    triple: ast.TriplePattern

    def variables(self) -> Set[Variable]:
        """All variables mentioned in this algebra subtree."""
        return {t for t in self.triple.terms() if isinstance(t, Variable)}


@dataclass(frozen=True)
class AlgebraJoin(AlgebraNode):
    """A JOIN node of the binary algebra."""
    left: AlgebraNode
    right: AlgebraNode

    def variables(self) -> Set[Variable]:
        """All variables mentioned in this algebra subtree."""
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class AlgebraLeftJoin(AlgebraNode):
    """(P1 Opt P2)."""

    left: AlgebraNode
    right: AlgebraNode

    def variables(self) -> Set[Variable]:
        """All variables mentioned in this algebra subtree."""
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class AlgebraFilter(AlgebraNode):
    """A FILTER node of the binary algebra."""
    expression: ast.Expression
    operand: AlgebraNode

    def variables(self) -> Set[Variable]:
        """All variables mentioned in this algebra subtree."""
        return self.operand.variables() | walk.expression_variables(self.expression)


def to_binary_algebra(pattern: Optional[ast.Pattern]) -> AlgebraNode:
    """Translate an AOF pattern into the binary algebra.

    Raises :class:`ValueError` if the pattern uses nodes outside the
    AOF fragment (callers check :func:`repro.analysis.fragments.is_aof`
    first).
    """
    if pattern is None:
        return AlgebraEmpty()
    if isinstance(pattern, ast.TriplePattern):
        return AlgebraTriple(pattern)
    if isinstance(pattern, ast.OptionalPattern):
        return AlgebraLeftJoin(AlgebraEmpty(), to_binary_algebra(pattern.pattern))
    if isinstance(pattern, ast.GroupPattern):
        accumulated: Optional[AlgebraNode] = None
        filters: List[ast.Expression] = []
        for element in pattern.elements:
            if isinstance(element, ast.FilterPattern):
                filters.append(element.expression)
            elif isinstance(element, ast.OptionalPattern):
                left = accumulated if accumulated is not None else AlgebraEmpty()
                accumulated = AlgebraLeftJoin(
                    left, to_binary_algebra(element.pattern)
                )
            else:
                translated = to_binary_algebra(element)
                if accumulated is None:
                    accumulated = translated
                else:
                    accumulated = AlgebraJoin(accumulated, translated)
        if accumulated is None:
            accumulated = AlgebraEmpty()
        for expression in filters:
            accumulated = AlgebraFilter(expression, accumulated)
        return accumulated
    raise ValueError(f"pattern outside the AOF fragment: {type(pattern).__name__}")


# ---------------------------------------------------------------------------
# Well-designedness (Definition 5.3)
# ---------------------------------------------------------------------------


def is_well_designed(node: AlgebraNode) -> bool:
    """Check Definition 5.3 on a binary AOF algebra tree."""
    return _check_well_designed(node, set())


def _check_well_designed(node: AlgebraNode, outside: Set[Variable]) -> bool:
    if isinstance(node, (AlgebraEmpty, AlgebraTriple)):
        return True
    if isinstance(node, AlgebraJoin):
        return _check_well_designed(
            node.left, outside | node.right.variables()
        ) and _check_well_designed(node.right, outside | node.left.variables())
    if isinstance(node, AlgebraFilter):
        return _check_well_designed(
            node.operand, outside | walk.expression_variables(node.expression)
        )
    if isinstance(node, AlgebraLeftJoin):
        optional_only = node.right.variables() - node.left.variables()
        if optional_only & outside:
            return False
        return _check_well_designed(
            node.left, outside | node.right.variables()
        ) and _check_well_designed(node.right, outside | node.left.variables())
    raise TypeError(f"unknown algebra node {node!r}")


# ---------------------------------------------------------------------------
# Pattern trees (Example 5.4)
# ---------------------------------------------------------------------------


@dataclass
class PatternTreeNode:
    """A node of a pattern tree: a CQ (triples + filters) plus children.

    The tree results from the Currying encoding of the parse tree: the
    root holds everything not under any Opt; each Opt's right operand
    becomes a child subtree.
    """

    triples: List[ast.TriplePattern] = field(default_factory=list)
    filters: List[ast.Expression] = field(default_factory=list)
    children: List["PatternTreeNode"] = field(default_factory=list)

    def label_variables(self) -> Set[Variable]:
        """Variables of this node's own CQ (not of the subtree)."""
        variables: Set[Variable] = set()
        for triple in self.triples:
            variables.update(
                t for t in triple.terms() if isinstance(t, Variable)
            )
        for expression in self.filters:
            variables |= walk.expression_variables(expression)
        return variables

    def subtree_nodes(self) -> List["PatternTreeNode"]:
        """This node and all its descendants, preorder."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.subtree_nodes())
        return nodes

    def size(self) -> int:
        """Number of nodes in this subtree."""
        return len(self.subtree_nodes())


def build_pattern_tree(node: AlgebraNode) -> PatternTreeNode:
    """Build the pattern tree of a binary AOF algebra tree."""
    root = PatternTreeNode()
    _collect(node, root)
    return root


def _collect(node: AlgebraNode, target: PatternTreeNode) -> None:
    if isinstance(node, AlgebraEmpty):
        return
    if isinstance(node, AlgebraTriple):
        target.triples.append(node.triple)
        return
    if isinstance(node, AlgebraJoin):
        _collect(node.left, target)
        _collect(node.right, target)
        return
    if isinstance(node, AlgebraFilter):
        target.filters.append(node.expression)
        _collect(node.operand, target)
        return
    if isinstance(node, AlgebraLeftJoin):
        _collect(node.left, target)
        child = PatternTreeNode()
        _collect(node.right, child)
        target.children.append(child)
        return
    raise TypeError(f"unknown algebra node {node!r}")


def interface_width(tree: PatternTreeNode) -> int:
    """Maximum number of common variables between a node and a child.

    A tree without Opt (a single node) has interface width 0, which the
    classification treats as ≤ 1 (plain CQs and CQFs are CQOF).
    """
    width = 0
    stack = [tree]
    while stack:
        node = stack.pop()
        node_vars = node.label_variables()
        for child in node.children:
            shared = node_vars & child.label_variables()
            width = max(width, len(shared))
            stack.append(child)
    return width


def tree_is_variable_connected(tree: PatternTreeNode) -> bool:
    """Barceló et al.'s well-designedness of pattern trees: for every
    variable, the nodes whose label mentions it form a connected set."""
    nodes = tree.subtree_nodes()
    parents = {}
    for node in nodes:
        for child in node.children:
            parents[id(child)] = node
    all_variables: Set[Variable] = set()
    for node in nodes:
        all_variables |= node.label_variables()
    for variable in all_variables:
        occurrences = [n for n in nodes if variable in n.label_variables()]
        if len(occurrences) <= 1:
            continue
        # The occurrence set is connected iff, walking up from every
        # occurrence, each step toward the "highest" occurrence stays
        # inside the occurrence set.  Find the unique topmost occurrence
        # and check that the parent of every other occurrence occurs too.
        occurrence_ids = {id(n) for n in occurrences}
        roots = [
            n
            for n in occurrences
            if id(n) not in parents or id(parents[id(n)]) not in occurrence_ids
        ]
        if len(roots) != 1:
            return False
    return True
