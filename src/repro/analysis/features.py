"""Per-query feature extraction (the paper's "shallow analysis", §4).

Extracts, from a parsed query, everything Table 2 / Table 7 (keyword
counts), Figure 1 / Figure 8 (triple counts), and §4.4 (subqueries,
projection) need.  Features are computed on the AST — not by string
matching — so e.g. ``And`` is only counted when a group actually joins
two patterns and a ``?filter`` variable never looks like a keyword.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Set

from ..sparql import ast, walk

__all__ = ["QueryFeatures", "extract_features", "KEYWORD_ORDER"]

#: Display order of the keyword rows of Table 2.
KEYWORD_ORDER = (
    "Select", "Ask", "Describe", "Construct",
    "Distinct", "Limit", "Offset", "Order By",
    "Filter", "And", "Union", "Opt", "Graph",
    "Not Exists", "Minus", "Exists",
    "Count", "Max", "Min", "Avg", "Sum",
    "Group By", "Having",
)

_AGGREGATE_KEYWORDS = {
    "COUNT": "Count",
    "MAX": "Max",
    "MIN": "Min",
    "AVG": "Avg",
    "SUM": "Sum",
}


@dataclass
class QueryFeatures:
    """Everything the shallow analysis measures about one query."""

    query_type: ast.QueryType
    keywords: FrozenSet[str]
    #: Number of triple patterns (incl. property-path patterns), whole tree.
    triple_count: int
    #: Number of property-path patterns only.
    path_pattern_count: int
    has_body: bool
    uses_subquery: bool
    #: True / False / None (None = indeterminate because of Bind, §4.4).
    uses_projection: Optional[bool]

    def is_select_or_ask(self) -> bool:
        """Whether the query form is SELECT or ASK (the paper's S/A gate)."""
        return self.query_type in (ast.QueryType.SELECT, ast.QueryType.ASK)


def extract_features(query: ast.Query) -> QueryFeatures:
    """Compute the :class:`QueryFeatures` of *query*."""
    keywords: Set[str] = set()
    keywords.add(query.query_type.value.title())

    triple_count = 0
    path_count = 0
    uses_subquery = False

    _modifier_keywords(query.modifier, keywords)
    _projection_keywords(query.projection, keywords)

    for node in walk.iter_patterns(query.pattern):
        if isinstance(node, ast.TriplePattern):
            triple_count += 1
        elif isinstance(node, ast.PathPattern):
            triple_count += 1
            path_count += 1
        elif isinstance(node, ast.GroupPattern):
            if _joins_patterns(node):
                keywords.add("And")
        elif isinstance(node, ast.UnionPattern):
            keywords.add("Union")
        elif isinstance(node, ast.OptionalPattern):
            keywords.add("Opt")
        elif isinstance(node, ast.GraphGraphPattern):
            keywords.add("Graph")
        elif isinstance(node, ast.MinusPattern):
            keywords.add("Minus")
        elif isinstance(node, ast.ServicePattern):
            keywords.add("Service")
        elif isinstance(node, ast.BindPattern):
            keywords.add("Bind")
            _expression_keywords(node.expression, keywords)
        elif isinstance(node, ast.ValuesPattern):
            keywords.add("Values")
        elif isinstance(node, ast.FilterPattern):
            keywords.add("Filter")
            _expression_keywords(node.expression, keywords)
        elif isinstance(node, ast.SubSelectPattern):
            uses_subquery = True
            subquery = node.query
            keywords.add(subquery.query_type.value.title())
            _modifier_keywords(subquery.modifier, keywords)
            _projection_keywords(subquery.projection, keywords)

    return QueryFeatures(
        query_type=query.query_type,
        keywords=frozenset(keywords),
        triple_count=triple_count,
        path_pattern_count=path_count,
        has_body=query.has_body(),
        uses_subquery=uses_subquery,
        uses_projection=detect_projection(query),
    )


def _joins_patterns(group: ast.GroupPattern) -> bool:
    """True when the group genuinely conjoins ≥ 2 patterns (the paper
    groups SPARQL's '.'/';' conjunction syntax under the And keyword)."""
    joinable = 0
    for element in group.elements:
        if not isinstance(element, ast.FilterPattern):
            joinable += 1
            if joinable >= 2:
                return True
    return False


def _modifier_keywords(modifier: ast.SolutionModifier, keywords: Set[str]) -> None:
    if modifier.limit is not None:
        keywords.add("Limit")
    if modifier.offset is not None:
        keywords.add("Offset")
    if modifier.order_by:
        keywords.add("Order By")
        for condition in modifier.order_by:
            _expression_keywords(condition.expression, keywords)
    if modifier.group_by:
        keywords.add("Group By")
    if modifier.having:
        keywords.add("Having")
        for expression in modifier.having:
            _expression_keywords(expression, keywords)


def _projection_keywords(
    projection: Optional[ast.Projection], keywords: Set[str]
) -> None:
    if projection is None:
        return
    if projection.distinct:
        keywords.add("Distinct")
    if projection.reduced:
        keywords.add("Reduced")
    for item in projection.items:
        if isinstance(item, ast.ProjectionExpression):
            _expression_keywords(item.expression, keywords)


def _expression_keywords(expression: ast.Expression, keywords: Set[str]) -> None:
    for node in walk.iter_expressions(expression):
        if isinstance(node, ast.Aggregate):
            keyword = _AGGREGATE_KEYWORDS.get(node.name)
            if keyword is not None:
                keywords.add(keyword)
            elif node.name == "SAMPLE":
                keywords.add("Sample")
            elif node.name == "GROUP_CONCAT":
                keywords.add("Group Concat")
        elif isinstance(node, ast.ExistsExpression):
            keywords.add("Not Exists" if node.negated else "Exists")


# ---------------------------------------------------------------------------
# Projection detection (§4.4; SPARQL 1.1 rec §18.2.1)
# ---------------------------------------------------------------------------


def detect_projection(query: ast.Query) -> Optional[bool]:
    """Does *query* use projection?

    Following §4.4 of the paper:

    * Ask queries project everything away, but the paper (following the
      rec's test) classifies variable-free Ask queries as *not* using
      projection — they merely test the presence of concrete triples.
      Ask queries with variables do use projection.
    * Select queries use projection when the selected variables are a
      strict subset of the pattern's in-scope variables.  ``SELECT *``
      never projects.
    * Returns ``None`` (indeterminate) when the answer depends on
      variables introduced by Bind — the paper reports 1.3% of queries
      in this category, bounding projection between 14.98% and 16.28%.

    Describe/Construct queries return ``False`` (projection is a
    Select/Ask concern in the paper's accounting).
    """
    if query.query_type is ast.QueryType.ASK:
        return bool(walk.pattern_variables(query.pattern))
    if query.query_type is not ast.QueryType.SELECT:
        return False
    projection = query.projection
    assert projection is not None
    if projection.select_all:
        return False
    body_vars = walk.pattern_variables(query.pattern)
    selected = set(projection.variables())
    if selected >= body_vars:
        return False
    # Selected ⊊ body variables: definitely projects — unless the only
    # "missing" variables come from Bind, in which case visibility rules
    # make the classification tool-dependent; mirror the paper and
    # report indeterminate.
    bind_vars = {
        node.variable
        for node in walk.iter_patterns(query.pattern)
        if isinstance(node, ast.BindPattern)
    }
    if body_vars - selected <= bind_vars:
        return None
    return True
