"""Versioned JSON snapshots of study results.

A :class:`~repro.analysis.study.CorpusStudy` is the paper's artifact —
the thing worth checkpointing, shipping between machines, and merging
across fleet shards — so this module gives it (and
:class:`~repro.analysis.study.DatasetStats` /
:class:`~repro.analysis.passes.PassProfile`) a stable, versioned
``to_dict``/``from_dict`` pair plus :func:`save_study`/:func:`load_study`
file helpers.

Design constraints, all load-bearing:

* **Zero-count preservation.**  Counters are serialized as ordered
  ``[key, count]`` pair lists, not JSON objects, so explicitly-recorded
  zero buckets survive (they change table shapes) and non-string keys
  (triple-size ints, treewidth ints) keep their type.
* **Insertion-order preservation.**  Counter key order breaks ties in
  ``Counter.most_common`` and therefore in rendered tables; pair lists
  round-trip it exactly, which is what makes
  ``merge(load(a), load(b))`` byte-identical (rendered report) to
  merging in memory.
* **Schema checking.**  Every snapshot carries ``schema`` and ``kind``
  headers; :func:`study_from_dict` raises
  :class:`~repro.exceptions.StudySnapshotError` — never a silent
  best-effort load — on version or shape mismatches.
* **Loud evolution.**  Fields are enumerated by dataclass
  introspection (like ``CorpusStudy.merge``): a future metric added to
  the dataclass is serialized automatically or rejected loudly, never
  silently dropped from snapshots.

Operator-set keys (``frozenset`` of letters) are stored as sorted
letter strings (``"AFO"``); the set itself is order-free, so the
round trip is exact.
"""

from __future__ import annotations

import gzip
import json
from collections import Counter
from dataclasses import fields
from pathlib import Path
from typing import Any, Dict, List, Union

from ..exceptions import StudySnapshotError
from ..ioutils import atomic_write_bytes
from .passes import PassProfile
from .streaks import StreakAccumulator, _Chain
from .study import CorpusStudy, DatasetStats

__all__ = [
    "COMPATIBLE_SCHEMA_VERSIONS",
    "SCHEMA_VERSION",
    "STUDY_KIND",
    "load_study",
    "profile_from_dict",
    "profile_to_dict",
    "save_study",
    "stats_from_dict",
    "stats_to_dict",
    "streaks_from_dict",
    "streaks_to_dict",
    "study_from_dict",
    "study_to_dict",
]

#: Version of the snapshot layout.  Bump on any incompatible change
#: and teach :func:`study_from_dict` to migrate — or to refuse loudly.
#: Version 2 added the per-dataset ``streaks`` accumulator (Table 6).
#: Version 3 switched streak chains to the lean representation
#: (start/length/end/head_positions instead of full member-position
#: lists), making open-chain state O(window) per chain.
SCHEMA_VERSION = 3

#: Versions :func:`study_from_dict` can read.  Version 1 predates the
#: streak accumulator: its datasets load with ``streaks = None``.
#: Version 2 chains carry full member-position lists and are converted
#: to the lean representation on load.
COMPATIBLE_SCHEMA_VERSIONS = (1, 2, SCHEMA_VERSION)

#: The ``kind`` header of a corpus-study snapshot.
STUDY_KIND = "repro.corpus_study"


# ---------------------------------------------------------------------------
# Counter <-> pair-list codecs
# ---------------------------------------------------------------------------


def _encode_counter(counter: Counter) -> List[List[Any]]:
    """Counter → ordered ``[key, count]`` pairs (zeros preserved)."""
    return [[key, count] for key, count in counter.items()]


def _decode_counter(pairs: Any, where: str) -> Counter:
    counter: Counter = Counter()
    if not isinstance(pairs, list):
        raise StudySnapshotError(f"{where}: expected a list of [key, count] pairs")
    for pair in pairs:
        if not (isinstance(pair, list) and len(pair) == 2):
            raise StudySnapshotError(f"{where}: malformed pair {pair!r}")
        key, count = pair
        # Only str/int keys exist in the schema; anything else (e.g. a
        # nested list from a corrupted file) must fail as a snapshot
        # error, not as an unhashable-key TypeError mid-load.
        if not isinstance(key, (str, int)) or isinstance(key, bool):
            raise StudySnapshotError(f"{where}: key {key!r} is not a string or int")
        if not isinstance(count, int) or isinstance(count, bool):
            raise StudySnapshotError(f"{where}: count for {key!r} is not an int")
        counter[key] = count
    return counter


def _encode_operator_sets(counter: Counter) -> List[List[Any]]:
    """``frozenset`` letter keys → sorted strings (``frozenset("AFO")``
    round-trips exactly; sets carry no order to lose)."""
    return [["".join(sorted(letters)), count] for letters, count in counter.items()]


def _decode_operator_sets(pairs: Any, where: str) -> Counter:
    decoded = _decode_counter(pairs, where)
    counter: Counter = Counter()
    for letters, count in decoded.items():
        if not isinstance(letters, str):
            raise StudySnapshotError(f"{where}: operator-set key {letters!r} is not a string")
        counter[frozenset(letters)] = count
    return counter


def _require(data: Dict[str, Any], key: str, where: str) -> Any:
    try:
        return data[key]
    except KeyError:
        raise StudySnapshotError(f"{where}: missing field {key!r}") from None


def _require_int(data: Dict[str, Any], key: str, where: str) -> int:
    value = _require(data, key, where)
    if not isinstance(value, int) or isinstance(value, bool):
        raise StudySnapshotError(f"{where}: field {key!r} is not an int")
    return value


# ---------------------------------------------------------------------------
# StreakAccumulator
# ---------------------------------------------------------------------------


def streaks_to_dict(accumulator: StreakAccumulator) -> Dict[str, Any]:
    """Serialize streak-detection state in canonical form.

    The accumulator itself produces the canonical layout (chains in
    founding order, ``closed`` pairs sorted by length), so serial and
    stitched runs of the same stream serialize to identical bytes."""
    return accumulator.to_dict()


def _decode_chain(entry: Any, where: str, window: int, length: int) -> _Chain:
    """Decode one streak chain, either layout, with invariant checks.

    Schema 3 chains are lean (``start``/``length``/``end``/
    ``head_positions``); schema 2 chains carry full member-position
    lists and are converted on load.  Cross-field invariants the merge
    arithmetic relies on must fail here, not as wrong Table 6 numbers
    after a later merge.
    """
    if not isinstance(entry, dict):
        raise StudySnapshotError(f"{where}: malformed chain {entry!r}")
    tail = _require(entry, "tail", where)
    if not isinstance(tail, str):
        raise StudySnapshotError(f"{where}: malformed chain {entry!r}")
    if "positions" in entry:  # schema <= 2: full member-position list
        positions = entry["positions"]
        if (
            not isinstance(positions, list)
            or not positions
            or not all(
                isinstance(p, int) and not isinstance(p, bool) for p in positions
            )
        ):
            raise StudySnapshotError(f"{where}: malformed chain {entry!r}")
        if positions[0] < 0 or positions[-1] >= length or any(
            later <= earlier for earlier, later in zip(positions, positions[1:])
        ):
            raise StudySnapshotError(
                f"{where}: chain positions {positions!r} are not strictly "
                f"increasing indices below length {length}"
            )
        return _Chain(
            start=positions[0],
            length=len(positions),
            end=positions[-1],
            head_positions=[p for p in positions if p < window],
            tail=tail,
        )
    start = _require_int(entry, "start", where)
    members = _require_int(entry, "length", where)
    end = _require_int(entry, "end", where)
    head_positions = _require(entry, "head_positions", where)
    if not isinstance(head_positions, list) or not all(
        isinstance(p, int) and not isinstance(p, bool) for p in head_positions
    ):
        raise StudySnapshotError(f"{where}: malformed chain {entry!r}")
    # Member positions are strictly increasing stream indices, so any
    # chain satisfies start <= end < stream length and holds between
    # 1 + (end > start) and end - start + 1 members.
    if not (0 <= start <= end < length):
        raise StudySnapshotError(
            f"{where}: chain span [{start}, {end}] is not within the "
            f"consumed stream of length {length}"
        )
    if members < 1 + (end > start) or members > end - start + 1:
        raise StudySnapshotError(
            f"{where}: chain of {members} member(s) cannot span "
            f"[{start}, {end}]"
        )
    if any(
        later <= earlier
        for earlier, later in zip(head_positions, head_positions[1:])
    ):
        raise StudySnapshotError(
            f"{where}: chain head positions {head_positions!r} are not "
            "strictly increasing"
        )
    # Head-region positions are the chain's first members: present and
    # founder-anchored exactly when the founder is in the head region.
    if start < window:
        if (
            not head_positions
            or head_positions[0] != start
            or head_positions[-1] > end
            or head_positions[-1] >= window
            or len(head_positions) > members
        ):
            raise StudySnapshotError(
                f"{where}: chain head positions {head_positions!r} do not "
                f"anchor a chain founded at {start} inside window {window}"
            )
    elif head_positions:
        raise StudySnapshotError(
            f"{where}: chain founded at {start} beyond window {window} "
            f"cannot hold head positions {head_positions!r}"
        )
    return _Chain(
        start=start,
        length=members,
        end=end,
        head_positions=list(head_positions),
        tail=tail,
    )


def streaks_from_dict(data: Any, where: str) -> StreakAccumulator:
    """Rebuild a :class:`StreakAccumulator`; raises on malformed input."""
    if not isinstance(data, dict):
        raise StudySnapshotError(f"{where}: expected an object")
    window = _require_int(data, "window", where)
    if window < 1:
        raise StudySnapshotError(f"{where}: 'window' must be >= 1")
    threshold = _require(data, "threshold", where)
    if not isinstance(threshold, (int, float)) or isinstance(threshold, bool):
        raise StudySnapshotError(f"{where}: 'threshold' is not a number")
    if not 0.0 <= float(threshold) <= 1.0:  # also rejects NaN
        raise StudySnapshotError(
            f"{where}: 'threshold' must be within [0, 1], got {threshold!r}"
        )
    accumulator = StreakAccumulator(window=window, threshold=float(threshold))
    length = _require_int(data, "length", where)
    if length < 0:
        raise StudySnapshotError(f"{where}: 'length' must be >= 0")
    accumulator.length = length
    head = _require(data, "head", where)
    if not isinstance(head, list) or not all(isinstance(t, str) for t in head):
        raise StudySnapshotError(f"{where}: 'head' must be a string list")
    if len(head) != min(window, length):
        raise StudySnapshotError(
            f"{where}: 'head' must hold min(window, length) = "
            f"{min(window, length)} texts, got {len(head)}"
        )
    accumulator.head = list(head)
    chains = _require(data, "chains", where)
    if not isinstance(chains, list):
        raise StudySnapshotError(f"{where}: 'chains' must be a list")
    for entry in chains:
        accumulator.chains.append(
            _decode_chain(entry, f"{where}.chains", window, length)
        )
    closed = _decode_counter(_require(data, "closed", where), f"{where}.closed")
    for streak_length, count in closed.items():
        if not isinstance(streak_length, int) or streak_length < 1:
            raise StudySnapshotError(
                f"{where}: closed-streak length {streak_length!r} is not a "
                "positive int"
            )
        if count < 0:
            raise StudySnapshotError(
                f"{where}: closed-streak count for length {streak_length} "
                "is negative"
            )
    accumulator.closed = closed
    return accumulator


# ---------------------------------------------------------------------------
# DatasetStats
# ---------------------------------------------------------------------------


def stats_to_dict(stats: DatasetStats) -> Dict[str, Any]:
    """Serialize per-dataset accumulators (JSON-native values only)."""
    data: Dict[str, Any] = {}
    for field_info in fields(DatasetStats):
        value = getattr(stats, field_info.name)
        if field_info.name == "streaks":
            data[field_info.name] = None if value is None else streaks_to_dict(value)
        elif isinstance(value, Counter):
            data[field_info.name] = _encode_counter(value)
        elif isinstance(value, (int, str)):
            data[field_info.name] = value
        else:  # pragma: no cover - guards future fields
            raise TypeError(
                f"DatasetStats snapshot: no encoding for field "
                f"{field_info.name!r} of type {type(value).__name__}"
            )
    return data


def stats_from_dict(data: Any) -> DatasetStats:
    """Rebuild :class:`DatasetStats`; raises on malformed input."""
    if not isinstance(data, dict):
        raise StudySnapshotError("dataset stats: expected an object")
    name = _require(data, "name", "dataset stats")
    if not isinstance(name, str):
        raise StudySnapshotError("dataset stats: 'name' is not a string")
    where = f"dataset {name!r}"
    stats = DatasetStats(name=name)
    for field_info in fields(DatasetStats):
        if field_info.name == "name":
            continue
        if field_info.name == "streaks":
            # .get, not _require: schema-1 snapshots predate streaks and
            # load as None (see COMPATIBLE_SCHEMA_VERSIONS).
            streaks_data = data.get("streaks")
            if streaks_data is not None:
                stats.streaks = streaks_from_dict(streaks_data, f"{where}.streaks")
            continue
        template = getattr(stats, field_info.name)
        if isinstance(template, Counter):
            setattr(
                stats,
                field_info.name,
                _decode_counter(
                    _require(data, field_info.name, where),
                    f"{where}.{field_info.name}",
                ),
            )
        else:
            setattr(stats, field_info.name, _require_int(data, field_info.name, where))
    return stats


# ---------------------------------------------------------------------------
# PassProfile
# ---------------------------------------------------------------------------


def profile_to_dict(profile: PassProfile) -> Dict[str, Any]:
    """Serialize a pass profile (wall times are floats; everything else int)."""
    return {
        "seconds": dict(profile.seconds),
        "queries": profile.queries,
        "cache_hits": profile.cache_hits,
        "cache_misses": profile.cache_misses,
        "store_hits": profile.store_hits,
        "chunks_shipped": profile.chunks_shipped,
        "shipped_bytes": profile.shipped_bytes,
        "merge_seconds": profile.merge_seconds,
    }


def profile_from_dict(data: Any) -> PassProfile:
    """Rebuild a :class:`PassProfile`; raises on malformed input."""
    if not isinstance(data, dict):
        raise StudySnapshotError("pass profile: expected an object")
    seconds = _require(data, "seconds", "pass profile")
    if not isinstance(seconds, dict) or not all(
        isinstance(name, str) and isinstance(elapsed, (int, float))
        for name, elapsed in seconds.items()
    ):
        raise StudySnapshotError("pass profile: 'seconds' must map pass names to numbers")
    # Later-vintage counters (``store_hits`` with the persistent
    # structure store, the transport trio with the parallel runtime):
    # profiles snapshotted before each simply read 0.
    optional_ints = {}
    for key in ("store_hits", "chunks_shipped", "shipped_bytes"):
        value = data.get(key, 0)
        if not isinstance(value, int) or isinstance(value, bool):
            raise StudySnapshotError(f"pass profile: '{key}' must be an integer")
        optional_ints[key] = value
    merge_seconds = data.get("merge_seconds", 0.0)
    if not isinstance(merge_seconds, (int, float)) or isinstance(merge_seconds, bool):
        raise StudySnapshotError("pass profile: 'merge_seconds' must be a number")
    return PassProfile(
        seconds={name: float(elapsed) for name, elapsed in seconds.items()},
        queries=_require_int(data, "queries", "pass profile"),
        cache_hits=_require_int(data, "cache_hits", "pass profile"),
        cache_misses=_require_int(data, "cache_misses", "pass profile"),
        merge_seconds=float(merge_seconds),
        **optional_ints,
    )


# ---------------------------------------------------------------------------
# CorpusStudy
# ---------------------------------------------------------------------------

#: Fields with bespoke encodings; everything else must be an int or a
#: Counter.  Derived from the merge machinery's special-field set so
#: the codec and ``CorpusStudy.merge`` stay in lockstep when a future
#: field needs bespoke handling — plus ``operator_sets``, which merges
#: generically (Counter) but needs a codec for its frozenset keys.
_SPECIAL_STUDY_FIELDS = CorpusStudy._SPECIAL_MERGE_FIELDS | {"operator_sets"}


def study_to_dict(study: CorpusStudy) -> Dict[str, Any]:
    """Serialize a study to a JSON-native, versioned dict.

    The inverse of :func:`study_from_dict`:
    ``study_from_dict(study_to_dict(s)) == s`` (and renders the same
    report bytes), for any study the drivers can produce.
    """
    data: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": STUDY_KIND,
        "dedup": study.dedup,
        "datasets": {
            name: stats_to_dict(stats) for name, stats in study.datasets.items()
        },
        "operator_sets": _encode_operator_sets(study.operator_sets),
        "shape_counts": {
            fragment: _encode_counter(counts)
            for fragment, counts in study.shape_counts.items()
        },
        "treewidth_counts": {
            fragment: _encode_counter(counts)
            for fragment, counts in study.treewidth_counts.items()
        },
        "path_type_k": {name: list(ks) for name, ks in study.path_type_k.items()},
        "non_ctract": list(study.non_ctract),
        "pass_profile": (
            None if study.pass_profile is None else profile_to_dict(study.pass_profile)
        ),
    }
    for field_info in fields(CorpusStudy):
        if field_info.name in _SPECIAL_STUDY_FIELDS:
            continue
        value = getattr(study, field_info.name)
        if isinstance(value, Counter):
            data[field_info.name] = _encode_counter(value)
        elif isinstance(value, int):
            data[field_info.name] = value
        else:
            raise TypeError(
                f"CorpusStudy snapshot: no encoding for field "
                f"{field_info.name!r} of type {type(value).__name__}; add it "
                f"to the snapshot codec alongside its merge rule"
            )
    return data


def study_from_dict(data: Any) -> CorpusStudy:
    """Rebuild a :class:`CorpusStudy` from :func:`study_to_dict` output.

    Every structural problem — wrong schema version, wrong kind,
    missing or mistyped fields — raises
    :class:`~repro.exceptions.StudySnapshotError` with a message naming
    the offending field.
    """
    if not isinstance(data, dict):
        raise StudySnapshotError("study snapshot: expected a JSON object")
    schema = data.get("schema")
    if schema not in COMPATIBLE_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in COMPATIBLE_SCHEMA_VERSIONS)
        raise StudySnapshotError(
            f"study snapshot: unsupported schema version {schema!r} "
            f"(this build reads versions {supported})"
        )
    kind = data.get("kind")
    if kind != STUDY_KIND:
        raise StudySnapshotError(
            f"study snapshot: unexpected kind {kind!r} (expected {STUDY_KIND!r})"
        )
    dedup = _require(data, "dedup", "study snapshot")
    if not isinstance(dedup, bool):
        raise StudySnapshotError("study snapshot: 'dedup' is not a bool")
    study = CorpusStudy(dedup=dedup)

    datasets = _require(data, "datasets", "study snapshot")
    if not isinstance(datasets, dict):
        raise StudySnapshotError("study snapshot: 'datasets' is not an object")
    for name, stats_data in datasets.items():
        stats = stats_from_dict(stats_data)
        if stats.name != name:
            raise StudySnapshotError(
                f"study snapshot: dataset key {name!r} disagrees with "
                f"stats name {stats.name!r}"
            )
        study.datasets[name] = stats

    study.operator_sets = _decode_operator_sets(
        _require(data, "operator_sets", "study snapshot"), "operator_sets"
    )
    for attr in ("shape_counts", "treewidth_counts"):
        raw = _require(data, attr, "study snapshot")
        if not isinstance(raw, dict):
            raise StudySnapshotError(f"study snapshot: {attr!r} is not an object")
        decoded = {
            fragment: _decode_counter(pairs, f"{attr}[{fragment}]")
            for fragment, pairs in raw.items()
        }
        # The renderers index the CQ/CQF/CQOF fragments unconditionally
        # (they are part of the schema, zero counters included), so a
        # snapshot missing one must fail here, not as a KeyError later.
        for fragment in getattr(study, attr):
            if fragment not in decoded:
                raise StudySnapshotError(
                    f"study snapshot: {attr} is missing fragment {fragment!r}"
                )
        setattr(study, attr, decoded)
    path_type_k = _require(data, "path_type_k", "study snapshot")
    if not isinstance(path_type_k, dict) or not all(
        isinstance(name, str)
        and isinstance(ks, list)
        and all(isinstance(k, int) for k in ks)
        for name, ks in path_type_k.items()
    ):
        raise StudySnapshotError(
            "study snapshot: 'path_type_k' must map path types to int lists"
        )
    study.path_type_k = {name: list(ks) for name, ks in path_type_k.items()}
    non_ctract = _require(data, "non_ctract", "study snapshot")
    if not isinstance(non_ctract, list) or not all(
        isinstance(text, str) for text in non_ctract
    ):
        raise StudySnapshotError("study snapshot: 'non_ctract' must be a string list")
    study.non_ctract = list(non_ctract)
    profile_data = _require(data, "pass_profile", "study snapshot")
    if profile_data is not None:
        study.pass_profile = profile_from_dict(profile_data)

    for field_info in fields(CorpusStudy):
        if field_info.name in _SPECIAL_STUDY_FIELDS:
            continue
        template = getattr(study, field_info.name)
        if isinstance(template, Counter):
            setattr(
                study,
                field_info.name,
                _decode_counter(
                    _require(data, field_info.name, "study snapshot"),
                    field_info.name,
                ),
            )
        else:
            setattr(
                study,
                field_info.name,
                _require_int(data, field_info.name, "study snapshot"),
            )
    return study


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------


#: gzip member header magic (RFC 1952) — the same detection idiom the
#: log-ingestion layer uses (:mod:`repro.logs.sources`).
_GZIP_MAGIC = b"\x1f\x8b"


def save_study(study: CorpusStudy, path: Union[str, Path]) -> None:
    """Write *study* to *path* as a pretty-printed JSON snapshot.

    A path ending in ``.gz`` (e.g. ``study.json.gz``) is written
    gzip-compressed, with a zeroed timestamp so equal studies produce
    byte-identical files.  The write is atomic (same-directory temp
    file + rename): a crash or interrupt mid-save leaves the previous
    snapshot intact rather than a truncated file that
    :func:`load_study` would reject.
    """
    payload = (json.dumps(study_to_dict(study), indent=2) + "\n").encode("utf-8")
    if Path(path).suffix == ".gz":
        payload = gzip.compress(payload, mtime=0)
    atomic_write_bytes(path, payload)


def load_study(path: Union[str, Path]) -> CorpusStudy:
    """Load a snapshot written by :func:`save_study`.

    gzip-compressed snapshots are recognized by their magic bytes, not
    the file name, so a misnamed ``study.json`` that is actually
    gzipped still loads.  Raises
    :class:`~repro.exceptions.StudySnapshotError` for unreadable or
    mis-versioned content (I/O errors propagate as ``OSError``)."""
    raw = Path(path).read_bytes()
    if raw[: len(_GZIP_MAGIC)] == _GZIP_MAGIC:
        try:
            raw = gzip.decompress(raw)
        except (OSError, EOFError) as error:
            raise StudySnapshotError(
                f"{path}: truncated or corrupt gzip data ({error})"
            ) from error
    try:
        data = json.loads(raw.decode("utf-8"))
    except UnicodeDecodeError as error:
        raise StudySnapshotError(f"{path}: not UTF-8 text ({error})") from error
    except json.JSONDecodeError as error:
        raise StudySnapshotError(f"{path}: not valid JSON ({error})") from error
    return study_from_dict(data)
