"""Per-query memoized analysis context and the structural-signature cache.

The analyzer passes of :mod:`repro.analysis.passes` share a number of
expensive derivations: feature extraction, operator classification,
fragment membership, the canonical graph (with and without constants)
and the canonical hypergraph.  :class:`AnalysisContext` wraps one
``(parsed query, dataset, weight)`` unit of work and computes each
derivation **lazily, at most once** — a pass can ask for
``ctx.fragments`` without caring whether an earlier pass already did.

On top of the per-query memoization sits a cross-query
:class:`StructureCache`: real logs are dominated by a small set of
recurring *structural shapes* (templated queries differing only in
constants), so shape profiles, treewidth and hypertree-width results
are cached under a **structural signature** of the canonical
graph/hypergraph.  Signatures relabel nodes by first appearance (and
abstract constant values down to their identity pattern), so two
queries that are renamings of one another share an entry; equal
signatures imply the relabeled structures are *identical*, which makes
the cache fully transparent — results with the cache enabled are
byte-identical to results with it disabled.

The cache is a bounded LRU (:data:`DEFAULT_STRUCTURE_CACHE_SIZE`
entries), so a per-worker cache adds O(capacity) memory and preserves
the O(workers × chunk) ingestion-memory invariant of
:mod:`repro.analysis.parallel`.

Paper mapping: shared derivation layer under every measurement pass
(Tables 2-5, Figures 1/5, secs 4-7).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..logs.pipeline import ParsedQuery
from ..rdf.terms import BlankNode, Variable
from ..sparql import ast, walk
from .canonical import (
    Hypergraph,
    canonical_graph,
    canonical_hypergraph,
    has_predicate_variable,
)
from .features import QueryFeatures, extract_features
from .fragments import FragmentProfile, classify_fragments
from .graphutil import Multigraph
from .hypertree import hypertree_width
from .operators import OperatorClassification, classify_operators
from .shapes import ShapeProfile, classify_shape
from .streaks import DEFAULT_STREAK_THRESHOLD, DEFAULT_STREAK_WINDOW
from .treewidth import treewidth

__all__ = [
    "DEFAULT_SHAPE_NODE_LIMIT",
    "DEFAULT_STRUCTURE_CACHE_SIZE",
    "AnalysisContext",
    "AnalysisOptions",
    "HypertreeEntry",
    "StructureCache",
    "StructureEntry",
    "graph_signature",
    "hypergraph_signature",
]

#: Shape analysis is skipped for pathological graphs above this size —
#: the classifier is polynomial but flower detection tries every core.
DEFAULT_SHAPE_NODE_LIMIT = 400

#: Default capacity of the structural-signature LRU cache.  Entries are
#: small (a ShapeProfile plus two ints), so the bound is about keeping
#: per-worker memory fixed, not about byte counts.
DEFAULT_STRUCTURE_CACHE_SIZE = 4096


@dataclass(frozen=True)
class AnalysisOptions:
    """Configuration of one study run, threaded through every driver.

    Immutable and picklable, so the parallel drivers can ship it to
    worker processes inside chunk payloads.  ``None`` metrics means the
    full default pipeline; ``cache_size=0`` disables the structural
    cache (results are identical either way — the cache is transparent).
    """

    #: Pass names to run, in registry order; ``None`` = all *per-query*
    #: passes (sequence passes such as ``streaks`` are opt-in by name).
    metrics: Optional[Tuple[str, ...]] = None
    #: Queries whose canonical graph exceeds this node count skip the
    #: structure pass (and are counted in ``shape_limit_skipped``).
    shape_node_limit: int = DEFAULT_SHAPE_NODE_LIMIT
    #: Capacity of the per-worker structural-signature cache; 0 disables.
    cache_size: int = DEFAULT_STRUCTURE_CACHE_SIZE
    #: Collect per-pass wall time and cache-hit statistics.
    profile: bool = False
    #: Streak lookbehind window for the ``streaks`` sequence pass (§8).
    streak_window: int = DEFAULT_STREAK_WINDOW
    #: Normalized-Levenshtein similarity threshold for streaks.
    streak_threshold: float = DEFAULT_STREAK_THRESHOLD
    #: Skip SPARQL parsing, deduplication and AST retention during
    #: ingestion — sequence passes read the raw ordered stream only, so
    #: a sequence-only run pays none of that cost.  Honored by the
    #: ingestion drivers only when the selected metrics contain no
    #: per-query pass (per-query passes need parsed ASTs).
    lean_ingestion: bool = False
    #: Path of the persistent cross-run structure store (SQLite; see
    #: :mod:`repro.analysis.structure_store`).  ``None`` (the default)
    #: keeps the cache purely in-memory.  The store is transparent —
    #: warm, cold and store-less runs are byte-identical — and
    #: expendable: an unusable file degrades to a cold run with a
    #: warning.
    structure_cache_path: Optional[str] = None


#: Default options instance shared by every driver entry point.
DEFAULT_OPTIONS = AnalysisOptions()


# ---------------------------------------------------------------------------
# Structural signatures
# ---------------------------------------------------------------------------


def _node_kind(node: object) -> str:
    return "v" if isinstance(node, (Variable, BlankNode)) else "c"


def graph_signature(graph: Multigraph) -> Tuple:
    """A hashable structural key for a canonical graph.

    Nodes are relabeled by first appearance in the graph's
    deterministic edge enumeration and tagged with their kind
    (variable/blank vs constant), so queries that differ only in
    variable names or constant values map to the same signature.  Equal
    signatures imply the relabeled (node-typed) multigraphs are
    identical — every cached derivation (shape profile, treewidth,
    constant usage) is therefore exactly what a fresh computation would
    produce.
    """
    ids: Dict[object, Tuple[int, str]] = {}

    def nid(node: object) -> Tuple[int, str]:
        """First-appearance id and kind tag of *node*."""
        entry = ids.get(node)
        if entry is None:
            entry = ids[node] = (len(ids), _node_kind(node))
        return entry

    parts: List[Tuple] = [
        (nid(u), nid(v), multiplicity)
        for u, v, multiplicity in graph.edge_triples()
    ]
    for node in graph.nodes():
        if node not in ids:
            parts.append(("isolated", nid(node)))
    return tuple(parts)


def hypergraph_signature(hypergraph: Hypergraph) -> Tuple:
    """A hashable structural key for a canonical hypergraph.

    Edge members already assigned an index sort by it; fresh members
    are assigned indices in term sort order (deterministic, and stable
    across the duplicate-template case where queries reuse the same
    variable names and differ only in constants — constants are not
    hypergraph nodes at all).  Equal signatures imply the relabeled
    edge lists are identical, so cached hypertree results are exact.
    """
    ids: Dict[object, int] = {}
    parts: List[Tuple[int, ...]] = []
    for edge in hypergraph.edges:
        known = sorted(ids[member] for member in edge if member in ids)
        fresh = sorted(
            (member for member in edge if member not in ids),
            key=lambda term: term.sort_key(),
        )
        for member in fresh:
            ids[member] = len(ids)
        parts.append(tuple(known + [ids[member] for member in fresh]))
    return tuple(parts)


# ---------------------------------------------------------------------------
# Structural-signature cache
# ---------------------------------------------------------------------------


class StructureEntry(NamedTuple):
    """Cached derivations of one canonical-graph signature."""

    profile: ShapeProfile
    width: int
    #: Whether the graph has any constant node — equivalently, whether
    #: the constants-excluded rebuild has strictly fewer nodes (the
    #: §6.1 single-edge-CQ constants check), since every variable/blank
    #: endpoint survives ``include_constants=False``.
    uses_constants: bool


class HypertreeEntry(NamedTuple):
    """Cached derivations of one canonical-hypergraph signature."""

    width: int
    node_count: int


class StructureCache:
    """Bounded LRU cache of structure results keyed by signature.

    One instance per worker (or per serial run).  Graph and hypergraph
    entries share the capacity; eviction is least-recently-used.  The
    cache is *transparent*: because signature equality implies the
    underlying structures are identical up to relabeling — and every
    cached derivation is invariant under that relabeling — enabling or
    disabling it cannot change any study counter.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int = DEFAULT_STRUCTURE_CACHE_SIZE) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything (capacity > 0)."""
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Optional[object]:
        """The entry under *key*, bumping its recency; ``None`` on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Tuple, entry: object) -> None:
        """Store *entry* under *key*, evicting least-recently-used."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


# ---------------------------------------------------------------------------
# The per-query context
# ---------------------------------------------------------------------------

_UNSET = object()


class AnalysisContext:
    """Lazily memoized derivations of one query, shared by all passes.

    Every property is computed at most once per query, whatever subset
    of passes runs and in whatever order — adding a pass that re-asks
    for ``features`` or ``fragments`` costs a dict lookup, not a
    recomputation.
    """

    __slots__ = (
        "parsed",
        "dataset",
        "weight",
        "options",
        "cache",
        "_query",
        "_features",
        "_operators",
        "_fragments",
        "_predicate_variable",
        "_graph",
        "_graph_no_constants",
        "_hypergraph",
        "_structure",
        "_hypertree",
    )

    def __init__(
        self,
        parsed: ParsedQuery,
        dataset: str,
        weight: int = 1,
        options: AnalysisOptions = DEFAULT_OPTIONS,
        cache: Optional[StructureCache] = None,
    ) -> None:
        self.parsed = parsed
        self.dataset = dataset
        self.weight = weight
        self.options = options
        self.cache = cache
        self._query = _UNSET
        self._features = _UNSET
        self._operators = _UNSET
        self._fragments = _UNSET
        self._predicate_variable = _UNSET
        self._graph = _UNSET
        self._graph_no_constants = _UNSET
        self._hypergraph = _UNSET
        self._structure = _UNSET
        self._hypertree = _UNSET

    # -- AST-level derivations ------------------------------------------

    @property
    def raw_query(self) -> ast.Query:
        """The query exactly as parsed (path analysis uses this)."""
        return self.parsed.query

    @property
    def query(self) -> ast.Query:
        """The analysis view of the query: Wikidata queries get their
        SERVICE wrapper stripped (§4.3 fn 13)."""
        if self._query is _UNSET:
            query = self.parsed.query
            if self.dataset.lower().startswith("wikidata"):
                query = walk.strip_services(query)
            self._query = query
        return self._query

    @property
    def features(self) -> QueryFeatures:
        """Shallow features of the query (Tables 1/2, Figure 1)."""
        if self._features is _UNSET:
            self._features = extract_features(self.query)
        return self._features

    @property
    def operators(self) -> OperatorClassification:
        """Operator-set classification of the query (Table 3)."""
        if self._operators is _UNSET:
            self._operators = classify_operators(self.query)
        return self._operators

    @property
    def fragments(self) -> FragmentProfile:
        """Fragment memberships of the query (sec 5.2)."""
        if self._fragments is _UNSET:
            self._fragments = classify_fragments(self.query)
        return self._fragments

    @property
    def predicate_variable(self) -> bool:
        """Whether any triple pattern has a variable predicate (sec 6.2)."""
        if self._predicate_variable is _UNSET:
            self._predicate_variable = has_predicate_variable(self.query.pattern)
        return self._predicate_variable

    # -- Canonical structures -------------------------------------------

    def graph(self, include_constants: bool = True) -> Multigraph:
        """The canonical graph, memoized per constants mode."""
        if include_constants:
            if self._graph is _UNSET:
                self._graph = canonical_graph(self.query.pattern)
            return self._graph
        if self._graph_no_constants is _UNSET:
            self._graph_no_constants = canonical_graph(
                self.query.pattern, include_constants=False
            )
        return self._graph_no_constants

    @property
    def hypergraph(self) -> Hypergraph:
        """The canonical hypergraph, memoized (sec 6.2)."""
        if self._hypergraph is _UNSET:
            self._hypergraph = canonical_hypergraph(self.query.pattern)
        return self._hypergraph

    # -- Cached structure results ---------------------------------------

    def structure_result(self) -> StructureEntry:
        """Shape profile, treewidth and constant usage of the canonical
        graph — served from the structural cache when a query of the
        same shape was measured before."""
        if self._structure is _UNSET:
            graph = self.graph()
            cache, signature = self.cache, None
            entry: Optional[StructureEntry] = None
            if cache is not None and cache.enabled:
                signature = ("g", graph_signature(graph))
                entry = cache.get(signature)  # type: ignore[assignment]
            if entry is None:
                entry = StructureEntry(
                    profile=classify_shape(graph),
                    width=treewidth(graph).width,
                    uses_constants=any(
                        _node_kind(node) == "c" for node in graph.nodes()
                    ),
                )
                if signature is not None:
                    cache.put(signature, entry)
            self._structure = entry
        return self._structure

    def hypertree_result(self) -> HypertreeEntry:
        """Hypertree width and decomposition node count of the canonical
        hypergraph, served from the structural cache when possible."""
        if self._hypertree is _UNSET:
            hypergraph = self.hypergraph
            cache, signature = self.cache, None
            entry: Optional[HypertreeEntry] = None
            if cache is not None and cache.enabled:
                signature = ("h", hypergraph_signature(hypergraph))
                entry = cache.get(signature)  # type: ignore[assignment]
            if entry is None:
                result = hypertree_width(hypergraph)
                entry = HypertreeEntry(width=result.width, node_count=result.node_count)
                if signature is not None:
                    cache.put(signature, entry)
            self._hypertree = entry
        return self._hypertree
