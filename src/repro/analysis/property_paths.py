"""Property-path taxonomy and tractability (paper §7, Table 5).

The paper classifies the *navigational* property paths of the corpus —
those that do more than follow one edge — into the expression types of
Table 5, treating ``^a`` and ``!a`` like plain letters inside larger
expressions, and folding each type with its symmetric form (``a*/b``
covers ``b/a*``).

It also checks membership in Ctract, the class of expressions whose
evaluation under *simple path* semantics is tractable (Bagan et al.,
PODS 2013).  We implement the sufficient condition that matches every
expression type the corpus contains: every ``*``/``+`` loop must range
over single letters (a letter, or an alternation of letters, optionally
with ``?``).  Under this test ``(a/b)*`` — the paper's single non-Ctract
find — is intractable and all other Table 5 types are tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..sparql import ast

__all__ = [
    "PathClassification",
    "classify_path",
    "is_navigational",
    "in_ctract",
    "PATH_TYPE_ORDER",
]

#: Row order of Table 5.
PATH_TYPE_ORDER = (
    "(a1|...|ak)*",
    "a*",
    "a1/.../ak",
    "a*/b",
    "a1|...|ak",
    "a+",
    "a1?/.../ak?",
    "a(b1|...|bk)",
    "a1/a2?/.../ak?",
    "(a/b*)|c",
    "a*/b?",
    "a/b/c*",
    "!(a|b)",
    "(a1|...|ak)+",
    "(a1|...|ak)(a1|...|ak)",
    "a?|b",
    "a*|b",
    "(a|b)?",
    "a|b+",
    "a+|b+",
    "(a/b)*",
    "other",
)


@dataclass(frozen=True)
class PathClassification:
    """Taxonomy bucket, arity k (when meaningful), simplicity flags."""

    expression_type: str
    k: Optional[int]
    navigational: bool
    ctract: bool
    #: "!a" / "^a" / None — set for the two simple non-navigational forms.
    simple_form: Optional[str] = None


# ---------------------------------------------------------------------------
# Atom handling: ^a and !a are treated like letters inside larger
# expressions (the paper's convention).
# ---------------------------------------------------------------------------


def _is_atom(path: ast.Path) -> bool:
    if isinstance(path, ast.PathIRI):
        return True
    if isinstance(path, ast.PathInverse) and isinstance(path.path, ast.PathIRI):
        return True
    if isinstance(path, ast.PathNegated):
        return len(path.forward) + len(path.inverse) == 1
    return False


def _is_optional_atom(path: ast.Path) -> bool:
    return (
        isinstance(path, ast.PathMod)
        and path.modifier == "?"
        and _is_atom(path.path)
    )


def _is_starred_atom(path: ast.Path) -> bool:
    return (
        isinstance(path, ast.PathMod)
        and path.modifier == "*"
        and _is_atom(path.path)
    )


def _is_plus_atom(path: ast.Path) -> bool:
    return (
        isinstance(path, ast.PathMod)
        and path.modifier == "+"
        and _is_atom(path.path)
    )


def _is_atom_alternative(path: ast.Path) -> bool:
    return isinstance(path, ast.PathAlternative) and all(
        _is_atom(option) for option in path.options
    )


def is_navigational(path: ast.Path) -> bool:
    """Everything except the simple forms ``!a`` and ``^a``.

    (A bare letter ``a`` never reaches this module: the parser folds it
    into an ordinary triple pattern.)
    """
    if isinstance(path, ast.PathNegated):
        return len(path.forward) + len(path.inverse) != 1 or bool(path.inverse)
    if isinstance(path, ast.PathInverse) and isinstance(path.path, ast.PathIRI):
        return False
    if isinstance(path, ast.PathIRI):
        return False
    return True


def _simple_form(path: ast.Path) -> Optional[str]:
    if isinstance(path, ast.PathNegated):
        if len(path.forward) == 1 and not path.inverse:
            return "!a"
    if isinstance(path, ast.PathInverse) and isinstance(path.path, ast.PathIRI):
        return "^a"
    if isinstance(path, ast.PathIRI):
        return "a"
    return None


# ---------------------------------------------------------------------------
# Ctract (sufficient condition)
# ---------------------------------------------------------------------------


def in_ctract(path: ast.Path) -> bool:
    """Sufficient tractability test: all ``*``/``+`` loops range over
    single letters (atoms, alternations of atoms, or those with ``?``)."""
    if isinstance(path, ast.PathMod):
        if path.modifier in ("*", "+"):
            return _loop_body_is_letterlike(path.path) and in_ctract(path.path)
        return in_ctract(path.path)
    if isinstance(path, ast.PathSequence):
        return all(in_ctract(step) for step in path.steps)
    if isinstance(path, ast.PathAlternative):
        return all(in_ctract(option) for option in path.options)
    if isinstance(path, ast.PathInverse):
        return in_ctract(path.path)
    return True  # atoms and negated sets


def _loop_body_is_letterlike(path: ast.Path) -> bool:
    """Does *path* denote only words of length ≤ 1?"""
    if _is_atom(path):
        return True
    if isinstance(path, ast.PathMod) and path.modifier == "?":
        return _loop_body_is_letterlike(path.path)
    if isinstance(path, ast.PathAlternative):
        return all(_loop_body_is_letterlike(option) for option in path.options)
    return False


# ---------------------------------------------------------------------------
# Taxonomy
# ---------------------------------------------------------------------------


def classify_path(path: ast.Path) -> PathClassification:
    """Classify *path* into its Table 5 expression type."""
    simple = _simple_form(path)
    if simple in ("!a", "^a", "a"):
        return PathClassification(
            expression_type=simple if simple != "a" else "a",
            k=None,
            navigational=False,
            ctract=True,
            simple_form=simple,
        )
    expression_type, k = _taxonomy(path)
    return PathClassification(
        expression_type=expression_type,
        k=k,
        navigational=True,
        ctract=in_ctract(path),
    )


def _taxonomy(path: ast.Path) -> Tuple[str, Optional[int]]:
    # Starred / plus / optional alternations and atoms.
    if isinstance(path, ast.PathMod):
        body = path.path
        if path.modifier == "*":
            if _is_atom(body):
                return "a*", None
            if _is_atom_alternative(body):
                return "(a1|...|ak)*", len(body.options)
            if isinstance(body, ast.PathSequence) and all(
                _is_atom(step) for step in body.steps
            ):
                return "(a/b)*", len(body.steps)
        elif path.modifier == "+":
            if _is_atom(body):
                return "a+", None
            if _is_atom_alternative(body):
                return "(a1|...|ak)+", len(body.options)
        elif path.modifier == "?":
            if _is_atom_alternative(body) and len(body.options) == 2:
                return "(a|b)?", None
    # Sequences.
    if isinstance(path, ast.PathSequence):
        return _classify_sequence(path.steps)
    # Alternatives.
    if isinstance(path, ast.PathAlternative):
        return _classify_alternative(path.options)
    # Negated sets with several members.
    if isinstance(path, ast.PathNegated):
        members = len(path.forward) + len(path.inverse)
        if members >= 2:
            return "!(a|b)", members
    return "other", None


def _classify_sequence(steps: Tuple[ast.Path, ...]) -> Tuple[str, Optional[int]]:
    k = len(steps)
    atoms = [_is_atom(step) for step in steps]
    optionals = [_is_optional_atom(step) for step in steps]
    stars = [_is_starred_atom(step) for step in steps]

    if all(atoms):
        return "a1/.../ak", k
    if all(optionals):
        return "a1?/.../ak?", k
    # a*/b and b/a* (one star, one atom).
    if k == 2:
        if (stars[0] and atoms[1]) or (atoms[0] and stars[1]):
            return "a*/b", None
        if (stars[0] and optionals[1]) or (optionals[0] and stars[1]):
            return "a*/b?", None
        if atoms[0] and _is_atom_alternative(steps[1]):
            return "a(b1|...|bk)", len(steps[1].options)
        if _is_atom_alternative(steps[0]) and _is_atom_alternative(steps[1]):
            if _alternative_letters(steps[0]) == _alternative_letters(steps[1]):
                return "(a1|...|ak)(a1|...|ak)", len(steps[0].options)
    # a1/a2?/.../ak? — a literal head followed by only optionals
    # (symmetric form: optionals then a literal tail).
    if atoms[0] and all(optionals[1:]) and k >= 2:
        return "a1/a2?/.../ak?", k
    if atoms[-1] and all(optionals[:-1]) and k >= 2:
        return "a1/a2?/.../ak?", k
    # a/b/c* and symmetric c*/a/b.
    if k == 3:
        if atoms[0] and atoms[1] and stars[2]:
            return "a/b/c*", None
        if stars[0] and atoms[1] and atoms[2]:
            return "a/b/c*", None
    return "other", None


def _alternative_letters(path: ast.Path) -> frozenset:
    assert isinstance(path, ast.PathAlternative)
    letters = []
    for option in path.options:
        if isinstance(option, ast.PathIRI):
            letters.append(("f", option.iri.value))
        elif isinstance(option, ast.PathInverse) and isinstance(
            option.path, ast.PathIRI
        ):
            letters.append(("i", option.path.iri.value))
        elif isinstance(option, ast.PathNegated):
            letters.append(("n", option.forward, option.inverse))
    return frozenset(letters)


def _classify_alternative(
    options: Tuple[ast.Path, ...]
) -> Tuple[str, Optional[int]]:
    k = len(options)
    if all(_is_atom(option) for option in options):
        return "a1|...|ak", k
    if k == 2:
        first, second = options
        # Normalize symmetric forms: sort so the "decorated" side is first.
        pairs = [(first, second), (second, first)]
        for left, right in pairs:
            if _is_optional_atom(left) and _is_atom(right):
                return "a?|b", None
            if _is_starred_atom(left) and _is_atom(right):
                return "a*|b", None
            if _is_plus_atom(left) and _is_atom(right):
                return "a|b+", None
            if (
                isinstance(left, ast.PathSequence)
                and len(left.steps) == 2
                and _is_atom(left.steps[0])
                and _is_starred_atom(left.steps[1])
                and _is_atom(right)
            ):
                return "(a/b*)|c", None
        if all(_is_plus_atom(option) for option in options):
            return "a+|b+", None
    return "other", None
