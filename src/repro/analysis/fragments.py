"""Query-fragment classification (paper §5.2).

The paper studies nested fragments of And/Opt/Filter ("AOF") patterns:

* **CQ** (Definition 3.1): triple patterns + And only.
* **CPF** (Definition 4.1): triple patterns + And + Filter.
* **CQF** (Definition 5.2): CPF where every filter is *simple* —
  it mentions at most one variable, or has the form ``?x = ?y``.
* **AOF**: triple patterns + And + Opt + Filter (no property paths, no
  subqueries, no Graph/Union/anything else).
* **well-designed** (Definition 5.3, Pérez et al.): every Opt-pattern
  (P1 Opt P2) confines the variables of vars(P2) \\ vars(P1) to itself.
* **CQOF** (Definition 5.5): AOF patterns with simple filters admitting
  a well-designed pattern tree of interface width 1.

Pattern trees and interface width live in
:mod:`repro.analysis.welldesigned`; this module provides the membership
predicates and a one-shot :func:`classify_fragments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..rdf.terms import Variable
from ..sparql import ast, walk
from .welldesigned import (
    build_pattern_tree,
    interface_width,
    is_well_designed,
    to_binary_algebra,
)

__all__ = [
    "FragmentProfile",
    "classify_fragments",
    "is_cq",
    "is_cpf",
    "is_cqf",
    "is_aof",
    "is_simple_filter",
]


def is_simple_filter(expression: ast.Expression) -> bool:
    """A filter constraint R is *simple* if vars(R) has at most one
    variable, or R is of the form ``?x = ?y`` (§5.2)."""
    variables = walk.expression_variables(expression)
    if len(variables) <= 1:
        # EXISTS would smuggle patterns into the filter; exclude it.
        return not _contains_exists(expression)
    if (
        isinstance(expression, ast.Comparison)
        and expression.op == "="
        and isinstance(expression.left, ast.TermExpression)
        and isinstance(expression.left.term, Variable)
        and isinstance(expression.right, ast.TermExpression)
        and isinstance(expression.right.term, Variable)
    ):
        return True
    return False


def _contains_exists(expression: ast.Expression) -> bool:
    return any(
        isinstance(node, ast.ExistsExpression)
        for node in walk.iter_expressions(expression)
    )


def _body_uses_only(pattern: Optional[ast.Pattern], allowed: tuple) -> bool:
    """True when every node of the pattern tree is a GroupPattern,
    a TriplePattern, or one of *allowed* node types."""
    if pattern is None:
        return False
    for node in walk.iter_patterns(pattern, enter_subqueries=False):
        if isinstance(node, (ast.GroupPattern, ast.TriplePattern)):
            continue
        if isinstance(node, allowed):
            if isinstance(node, ast.FilterPattern) and _contains_exists(
                node.expression
            ):
                return False
            continue
        return False
    return True


def is_cq(pattern: Optional[ast.Pattern]) -> bool:
    """Conjunctive query: triple patterns and And only."""
    return _body_uses_only(pattern, ())


def is_cpf(pattern: Optional[ast.Pattern]) -> bool:
    """Conjunctive pattern with filters: triples, And, Filter."""
    return _body_uses_only(pattern, (ast.FilterPattern,))


def is_cqf(pattern: Optional[ast.Pattern]) -> bool:
    """CPF with only simple filters (Definition 5.2)."""
    if not is_cpf(pattern):
        return False
    return _all_filters_simple(pattern)


def is_aof(pattern: Optional[ast.Pattern]) -> bool:
    """And/Opt/Filter pattern: triples, And, Opt, Filter."""
    return _body_uses_only(pattern, (ast.FilterPattern, ast.OptionalPattern))


def _all_filters_simple(pattern: Optional[ast.Pattern]) -> bool:
    for node in walk.iter_patterns(pattern, enter_subqueries=False):
        if isinstance(node, ast.FilterPattern):
            if not is_simple_filter(node.expression):
                return False
    return True


@dataclass(frozen=True)
class FragmentProfile:
    """Membership of one query in each fragment of §5.2."""

    is_aof: bool
    is_cq: bool
    is_cpf: bool
    is_cqf: bool
    is_well_designed: bool  # AOF + Def 5.3 (filters need not be simple)
    has_simple_filters: bool
    interface_width: Optional[int]  # None unless AOF and well-designed
    is_cqof: bool

    def in_any_cq_like(self) -> bool:
        """Whether the pattern is in at least one CQ-like fragment."""
        return self.is_cq or self.is_cqf or self.is_cqof


def classify_fragments(query: ast.Query) -> FragmentProfile:
    """Classify the body of a Select/Ask query into the §5.2 fragments.

    Queries of other types (or without a body) are outside all
    fragments.
    """
    pattern = query.pattern
    if query.query_type not in (ast.QueryType.SELECT, ast.QueryType.ASK):
        pattern = None
    aof = is_aof(pattern)
    if not aof:
        return FragmentProfile(
            is_aof=False,
            is_cq=False,
            is_cpf=False,
            is_cqf=False,
            is_well_designed=False,
            has_simple_filters=False,
            interface_width=None,
            is_cqof=False,
        )
    cq = is_cq(pattern)
    cpf = is_cpf(pattern)
    simple = _all_filters_simple(pattern)
    cqf = cpf and simple
    algebra = to_binary_algebra(pattern)
    well_designed = is_well_designed(algebra)
    width: Optional[int] = None
    cqof = False
    if well_designed:
        tree = build_pattern_tree(algebra)
        width = interface_width(tree)
        cqof = simple and width <= 1
    return FragmentProfile(
        is_aof=True,
        is_cq=cq,
        is_cpf=cpf,
        is_cqf=cqf,
        is_well_designed=well_designed,
        has_simple_filters=simple,
        interface_width=width,
        is_cqof=cqof,
    )
