"""Undirected multigraph used by the shape and width analyses.

Canonical graphs of queries (paper §5) are *pseudographs*: they can have
self-loops (a triple ``?x :p ?x``) and parallel edges (two triples
between the same pair of nodes), and both matter for shape
classification — e.g. two parallel edges form a cycle of length two.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = ["Multigraph"]

Node = Hashable


class Multigraph:
    """An undirected multigraph with loops.

    Nodes are arbitrary hashables.  Edges are unordered pairs stored
    with multiplicity; ``add_edge(u, u)`` records a self-loop.
    """

    def __init__(self) -> None:
        self._adjacency: Dict[Node, Counter] = defaultdict(Counter)
        self._loops: Counter = Counter()
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Ensure *node* exists (isolated nodes are legal)."""
        self._adjacency[node]  # touch to create

    def add_edge(self, u: Node, v: Node) -> None:
        """Add one undirected edge (parallel edges accumulate)."""
        if u == v:
            self._adjacency[u]
            self._loops[u] += 1
        else:
            self._adjacency[u][v] += 1
            self._adjacency[v][u] += 1
        self._edge_count += 1

    def copy(self) -> "Multigraph":
        """An independent deep copy of the multigraph."""
        clone = Multigraph()
        for node in self._adjacency:
            clone.add_node(node)
        for u, v, multiplicity in self.edge_triples():
            for _ in range(multiplicity):
                clone.add_edge(u, v)
        return clone

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._adjacency)

    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._adjacency)

    def edge_count(self) -> int:
        """Total number of edges, counting multiplicity and loops."""
        return self._edge_count

    def has_node(self, node: Node) -> bool:
        """Whether *node* is present."""
        return node in self._adjacency

    def neighbors(self, node: Node) -> List[Node]:
        """Distinct neighbors, excluding the node itself."""
        return list(self._adjacency[node])

    def multiplicity(self, u: Node, v: Node) -> int:
        """Number of parallel edges between *u* and *v*."""
        if u == v:
            return self._loops[u]
        return self._adjacency[u][v]

    def loops_at(self, node: Node) -> int:
        """Number of self-loops at *node*."""
        return self._loops[node]

    def degree(self, node: Node) -> int:
        """Degree with loops counted twice (graph-theory convention)."""
        return sum(self._adjacency[node].values()) + 2 * self._loops[node]

    def simple_degree(self, node: Node) -> int:
        """Number of distinct neighbors (loops and multiplicity ignored)."""
        return len(self._adjacency[node])

    def edge_triples(self) -> Iterator[Tuple[Node, Node, int]]:
        """Yield (u, v, multiplicity) once per unordered pair, plus
        (u, u, loop-count) for loops."""
        seen: Set[FrozenSet[Node]] = set()
        for u, counter in self._adjacency.items():
            for v, multiplicity in counter.items():
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield u, v, multiplicity
        for node, loops in self._loops.items():
            if loops:
                yield node, node, loops

    def has_loops(self) -> bool:
        """Whether any node has a self-loop."""
        return any(count > 0 for count in self._loops.values())

    def has_parallel_edges(self) -> bool:
        """Whether any node pair is joined by more than one edge."""
        return any(
            multiplicity > 1
            for u, v, multiplicity in self.edge_triples()
            if u != v
        )

    def is_simple(self) -> bool:
        """Whether the graph has neither loops nor parallel edges."""
        return not self.has_loops() and not self.has_parallel_edges()

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def connected_components(self) -> List[Set[Node]]:
        """The connected components, as node sets in discovery order."""
        remaining = set(self._adjacency)
        components: List[Set[Node]] = []
        while remaining:
            start = next(iter(remaining))
            component = {start}
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for neighbor in self._adjacency[node]:
                    if neighbor not in component:
                        component.add(neighbor)
                        queue.append(neighbor)
            components.append(component)
            remaining -= component
        return components

    def is_connected(self) -> bool:
        """Whether the graph is connected (empty graphs count as connected)."""
        if not self._adjacency:
            return True
        return len(self.connected_components()) == 1

    def induced_subgraph(self, nodes: Iterable[Node]) -> "Multigraph":
        """The subgraph induced by *nodes* (edges within the set only)."""
        node_set = set(nodes)
        sub = Multigraph()
        for node in node_set:
            sub.add_node(node)
            for _ in range(self._loops[node]):
                sub.add_edge(node, node)
        seen: Set[FrozenSet[Node]] = set()
        for u in node_set:
            for v, multiplicity in self._adjacency[u].items():
                if v in node_set:
                    key = frozenset((u, v))
                    if key not in seen:
                        seen.add(key)
                        for _ in range(multiplicity):
                            sub.add_edge(u, v)
        return sub

    def remove_node(self, node: Node) -> "Multigraph":
        """Return a copy with *node* (and incident edges) removed."""
        return self.induced_subgraph(set(self._adjacency) - {node})

    def simple_graph(self) -> Dict[Node, Set[Node]]:
        """Plain adjacency sets: loops dropped, multiplicity flattened."""
        return {
            node: set(counter)
            for node, counter in self._adjacency.items()
        }

    def is_acyclic_simple(self) -> bool:
        """True when the graph is a simple forest (no loops, no
        parallel edges, no cycles)."""
        if self.has_loops() or self.has_parallel_edges():
            return False
        # A simple graph is a forest iff every component has |E| = |V|-1.
        for component in self.connected_components():
            edges = sum(
                1
                for u, v, _ in self.edge_triples()
                if u in component and v in component and u != v
            )
            if edges != len(component) - 1:
                return False
        return True

    def girth(self) -> Optional[int]:
        """Length of the shortest cycle; ``None`` if acyclic.

        Self-loops have girth 1 and parallel edges girth 2.
        """
        if self.has_loops():
            return 1
        if self.has_parallel_edges():
            return 2
        best: Optional[int] = None
        adjacency = self.simple_graph()
        for start in adjacency:
            # BFS from start; a non-tree edge closing at depths d1, d2
            # witnesses a cycle of length d1 + d2 + 1.
            distance = {start: 0}
            parent = {start: None}
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for neighbor in adjacency[node]:
                    if neighbor not in distance:
                        distance[neighbor] = distance[node] + 1
                        parent[neighbor] = node
                        queue.append(neighbor)
                    elif parent[node] != neighbor:
                        cycle_length = distance[node] + distance[neighbor] + 1
                        if best is None or cycle_length < best:
                            best = cycle_length
        return best

    def __repr__(self) -> str:
        return f"Multigraph(nodes={self.node_count()}, edges={self.edge_count()})"
