"""Corpus-wide study driver: every measurement of the paper, one pass.

:func:`study_corpus` takes the processed :class:`~repro.logs.QueryLog`
objects and computes, per dataset and aggregated:

* Table 1 counters (carried through from the pipeline);
* Table 2 / Table 7 keyword counts;
* Figure 1 / Figure 8 triple-count histograms, S/A shares, Avg#T;
* Table 3 / Table 8 operator-set distribution with CPF subtotals;
* §4.4 subquery and projection statistics;
* §5.2 fragment sizes (AOF, CQ, CQF, well-designed, CQOF);
* Figure 5 / Figure 9 CQ-like size histograms;
* Table 4 / Table 9 cumulative shape analysis with treewidth rows;
* §6.1 shortest-cycle histogram and the constants rerun;
* §6.2 hypertree widths of predicate-variable queries;
* Table 5 / Figure 10 property-path taxonomy with Ctract outliers.

``dedup=True`` analyses the Unique corpus (paper main body);
``dedup=False`` weights every query by its multiplicity (the appendix's
Valid corpus).
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass, field, fields
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Tuple,
)

from ..logs.pipeline import ParsedQuery, QueryLog
from .context import DEFAULT_OPTIONS, AnalysisOptions, StructureCache
from .features import KEYWORD_ORDER
from .operators import TABLE3_ROWS
from .passes import NON_CTRACT_LIMIT, PassProfile, resolve_passes, run_passes
from .shapes import SHAPE_ORDER
from .streaks import StreakAccumulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .parallel import TransportStats, WorkerPool

__all__ = ["DatasetStats", "CorpusStudy", "measure_query", "study_corpus"]

#: Deprecated module aliases and their modern replacements; kept one
#: release so external code migrating from the pre-pass monolith keeps
#: importing, but loudly (see :func:`__getattr__`).
_DEPRECATED_ALIASES = {
    "_SHAPE_NODE_LIMIT": "repro.analysis.context.AnalysisOptions.shape_node_limit",
    "_NON_CTRACT_LIMIT": "repro.analysis.passes.NON_CTRACT_LIMIT",
}


def __getattr__(name: str):
    """Back-compat aliases with a :class:`DeprecationWarning`.

    The limits moved out of the study monolith with the pass refactor
    (:mod:`repro.analysis.passes`, :mod:`repro.analysis.context`)."""
    if name in _DEPRECATED_ALIASES:
        warnings.warn(
            f"repro.analysis.study.{name} is deprecated; "
            f"use {_DEPRECATED_ALIASES[name]} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if name == "_SHAPE_NODE_LIMIT":
            return DEFAULT_OPTIONS.shape_node_limit
        return NON_CTRACT_LIMIT
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _merge_counters(dst: MutableMapping, src: Mapping) -> None:
    """Add *src* into *dst* key-wise.

    ``Counter.__add__`` silently drops keys whose count is zero (or
    negative), so merging with ``+`` would erase explicitly-recorded
    zero buckets and change table shapes.  This helper preserves every
    key present on either side.
    """
    for key, value in src.items():
        dst[key] = dst.get(key, 0) + value


def _merge_fields(self, other, skip: frozenset) -> None:
    """Merge all dataclass fields by type: int adds, Counter key-merges.

    Introspecting the fields (instead of hand-maintained name lists)
    means a future metric added to the dataclass is merged — or, for a
    type with no obvious merge, rejected loudly — rather than silently
    dropped from sharded runs, which would break serial ≡ parallel.
    """
    for field_info in fields(self):
        name = field_info.name
        if name in skip:
            continue
        mine = getattr(self, name)
        theirs = getattr(other, name)
        if isinstance(mine, Counter):
            _merge_counters(mine, theirs)
        elif isinstance(mine, int):
            setattr(self, name, mine + theirs)
        else:
            raise TypeError(
                f"{type(self).__name__}.merge: no merge rule for field {name!r} "
                f"of type {type(mine).__name__}"
            )


@dataclass
class DatasetStats:
    """Per-dataset accumulators (Figure 1 needs per-dataset numbers)."""

    name: str
    total: int = 0
    valid: int = 0
    unique: int = 0
    queries: int = 0  # analyzed stream size (unique or valid)
    select_ask: int = 0
    triple_hist: Counter = field(default_factory=Counter)  # per S/A query
    triple_sum: int = 0  # over ALL queries (Avg#T is corpus-wide)
    keyword_counts: Counter = field(default_factory=Counter)
    #: Streak detection state over this dataset's *ordered* raw stream
    #: (§8, Table 6), carried from ingestion like the pipeline counters;
    #: ``None`` unless the ``streaks`` sequence metric ran.
    streaks: Optional[StreakAccumulator] = None

    def merge(self, other: "DatasetStats") -> "DatasetStats":
        """Fold another shard of the same dataset into this one.

        Shards of one dataset are slices of one ordered stream, merged
        in stream order — so streak accumulators *stitch* (``other`` is
        the continuation of ``self``'s stream) rather than add.  A
        one-sided accumulator is kept as-is: measure-phase shards never
        carry one (streaks ride ingestion), and a fresh stats object
        merging a streak-bearing shard adopts its state.
        """
        if other.name != self.name:
            raise ValueError(
                f"cannot merge stats for {other.name!r} into {self.name!r}"
            )
        _merge_fields(self, other, skip=frozenset({"name", "streaks"}))
        if other.streaks is not None:
            if self.streaks is None:
                self.streaks = other.streaks.copy()
            else:
                self.streaks.merge(other.streaks)
        if self.streaks is not None and self.streaks.length != self.total:
            # A stitched accumulator must cover the merged stream edge to
            # edge.  Length < total means one shard ran without the
            # streaks metric (its slice was never scanned, and the other
            # side's positions may be misaligned) — reporting its partial
            # Table 6 as the whole stream's would be silently wrong.
            raise ValueError(
                f"dataset {self.name!r}: streak state covers "
                f"{self.streaks.length} of {self.total} entries; all "
                "merged shards must run the streaks metric (or none)"
            )
        return self

    @property
    def select_ask_share(self) -> float:
        """Fraction of analyzed queries that are SELECT or ASK."""
        return self.select_ask / self.queries if self.queries else 0.0

    @property
    def average_triples(self) -> float:
        """Mean triple count over all analyzed queries (Figure 1 Avg#T)."""
        return self.triple_sum / self.queries if self.queries else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Versioned JSON-native snapshot (see :mod:`.snapshot`)."""
        from .snapshot import stats_to_dict

        return stats_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DatasetStats":
        """Inverse of :meth:`to_dict`; raises
        :class:`~repro.exceptions.StudySnapshotError` on malformed input."""
        from .snapshot import stats_from_dict

        return stats_from_dict(data)

    def triple_hist_percentages(self) -> Dict[str, float]:
        """Figure 1 buckets: '0'..'10' and '11+' as % of S/A queries."""
        buckets: Dict[str, float] = {}
        if not self.select_ask:
            return {str(i): 0.0 for i in range(11)} | {"11+": 0.0}
        for i in range(11):
            buckets[str(i)] = 100.0 * self.triple_hist.get(i, 0) / self.select_ask
        over = sum(count for size, count in self.triple_hist.items() if size >= 11)
        buckets["11+"] = 100.0 * over / self.select_ask
        return buckets


@dataclass
class CorpusStudy:
    """Aggregated results over the whole corpus."""

    dedup: bool = True
    datasets: Dict[str, DatasetStats] = field(default_factory=dict)

    # Shallow analysis
    keyword_counts: Counter = field(default_factory=Counter)
    query_count: int = 0
    select_ask_count: int = 0
    no_body_count: int = 0

    # Operator sets (Select/Ask only)
    operator_sets: Counter = field(default_factory=Counter)  # frozenset->n
    operator_other_combination: int = 0
    operator_other_features: int = 0

    # §4.4
    subquery_count: int = 0
    projection_true: int = 0
    projection_indeterminate: int = 0
    ask_projection: int = 0

    # §5.2 fragments (of Select/Ask)
    aof_count: int = 0
    cq_count: int = 0
    cqf_count: int = 0
    cqof_count: int = 0
    well_designed_count: int = 0
    wide_interface_count: int = 0  # well-designed, simple filters, iw > 1

    # Figure 5: sizes of CQ-like queries (triples >= 1)
    cq_sizes: Counter = field(default_factory=Counter)
    cqf_sizes: Counter = field(default_factory=Counter)
    cqof_sizes: Counter = field(default_factory=Counter)

    # Table 4: cumulative shape counts per fragment
    shape_counts: Dict[str, Counter] = field(
        default_factory=lambda: {"CQ": Counter(), "CQF": Counter(), "CQOF": Counter()}
    )
    shape_totals: Counter = field(default_factory=Counter)  # fragment -> n
    treewidth_counts: Dict[str, Counter] = field(
        default_factory=lambda: {"CQ": Counter(), "CQF": Counter(), "CQOF": Counter()}
    )
    girth_hist: Counter = field(default_factory=Counter)
    single_edge_cq: int = 0
    single_edge_cq_with_constants: int = 0

    # §6.2 hypergraphs (predicate-variable CQOF queries)
    predicate_variable_cqof: int = 0
    hypertree_widths: Counter = field(default_factory=Counter)
    decomposition_nodes: Counter = field(default_factory=Counter)

    # §7 property paths
    property_path_total: int = 0
    simple_path_forms: Counter = field(default_factory=Counter)  # "!a"/"^a"
    path_types: Counter = field(default_factory=Counter)
    path_type_k: Dict[str, List[int]] = field(default_factory=dict)
    non_ctract: List[str] = field(default_factory=list)

    # Coverage accounting: data the analysis limits would otherwise
    # drop silently (surfaced by ``render_study`` when nonzero).
    shape_limit_skipped: int = 0  # queries over the shape-node limit
    non_ctract_truncated: int = 0  # Table 5 outliers beyond the cap

    #: Per-pass timing / cache statistics of a profiled run
    #: (``AnalysisOptions.profile``); ``None`` otherwise.  Wall times
    #: are noise, so the profile never participates in equality.
    pass_profile: Optional[PassProfile] = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # Merge semantics
    # ------------------------------------------------------------------

    #: Fields :func:`_merge_fields` cannot handle generically; each has
    #: explicit handling in :meth:`merge`.
    _SPECIAL_MERGE_FIELDS = frozenset(
        {
            "dedup",
            "datasets",
            "shape_counts",
            "treewidth_counts",
            "path_type_k",
            "non_ctract",
            "pass_profile",
        }
    )

    def merge(self, other: "CorpusStudy") -> "CorpusStudy":
        """Fold a partial study (e.g. one shard's results) into this one.

        Merging in stream order reproduces the single-pass study
        exactly, including counter key order (which breaks ties in
        ``Counter.most_common``) and the non-Ctract sample.
        """
        if other.dedup != self.dedup:
            raise ValueError("cannot merge Unique-corpus and Valid-corpus studies")
        for name, stats in other.datasets.items():
            mine = self.datasets.get(name)
            if mine is None:
                mine = DatasetStats(name=name)
                self.datasets[name] = mine
            mine.merge(stats)
        _merge_fields(self, other, skip=self._SPECIAL_MERGE_FIELDS)
        for fragment, counts in other.shape_counts.items():
            _merge_counters(self.shape_counts.setdefault(fragment, Counter()), counts)
        for fragment, counts in other.treewidth_counts.items():
            _merge_counters(
                self.treewidth_counts.setdefault(fragment, Counter()), counts
            )
        for path_type, ks in other.path_type_k.items():
            self.path_type_k.setdefault(path_type, []).extend(ks)
        # The merged sample keeps the cap; overflow dropped *here* joins
        # the truncation counter (whose per-shard values were already
        # added by _merge_fields), so serial and sharded runs agree on
        # kept + truncated = total.
        remaining = max(0, NON_CTRACT_LIMIT - len(self.non_ctract))
        if remaining > 0:
            self.non_ctract.extend(other.non_ctract[:remaining])
        dropped = len(other.non_ctract) - remaining
        if dropped > 0:
            self.non_ctract_truncated += dropped
        if other.pass_profile is not None:
            if self.pass_profile is None:
                self.pass_profile = PassProfile()
            self.pass_profile.merge(other.pass_profile)
        return self

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Versioned, schema-checked JSON-native snapshot.

        Zero counts and counter insertion order are preserved, so a
        reloaded study renders byte-identical reports and merges
        exactly like the in-memory original (see :mod:`.snapshot`)."""
        from .snapshot import study_to_dict

        return study_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CorpusStudy":
        """Inverse of :meth:`to_dict`; raises
        :class:`~repro.exceptions.StudySnapshotError` on malformed or
        mis-versioned input."""
        from .snapshot import study_from_dict

        return study_from_dict(data)

    # ------------------------------------------------------------------
    def keyword_table(self) -> List[Tuple[str, int, float]]:
        """Table 2 rows: (keyword, absolute, relative %)."""
        rows = []
        for keyword in KEYWORD_ORDER:
            absolute = self.keyword_counts.get(keyword, 0)
            relative = 100.0 * absolute / self.query_count if self.query_count else 0.0
            rows.append((keyword, absolute, relative))
        return rows

    def operator_table(self) -> List[Tuple[str, int, float]]:
        """Table 3 rows in paper order, plus subtotals."""
        denominator = self.select_ask_count or 1
        rows: List[Tuple[str, int, float]] = []

        def label(letters: frozenset) -> str:
            """Paper-style row label for an operator set (F written last)."""
            if not letters:
                return "none"
            # The paper writes operator sets with F last: "A, F",
            # "A, O, F", "A, O, U, F", …
            order = "AOUGF"
            return ", ".join(sorted(letters, key=order.index))

        cpf_subtotal = 0
        for letters in TABLE3_ROWS:
            count = self.operator_sets.get(letters, 0)
            rows.append((label(letters), count, 100.0 * count / denominator))
            if letters <= frozenset("AF"):
                cpf_subtotal += count
        rows.insert(
            4, ("CPF subtotal", cpf_subtotal, 100.0 * cpf_subtotal / denominator)
        )
        return rows

    def cpf_plus(self, letter: str) -> Tuple[int, float]:
        """The CPF+O / CPF+G / CPF+U increments of Table 3."""
        denominator = self.select_ask_count or 1
        increment = 0
        for letters, count in self.operator_sets.items():
            if letter in letters and letters <= frozenset("AF" + letter):
                increment += count
        return increment, 100.0 * increment / denominator

    def projection_bounds(self) -> Tuple[float, float]:
        """(lower %, upper %) of queries using projection (§4.4)."""
        if not self.query_count:
            return (0.0, 0.0)
        low = 100.0 * self.projection_true / self.query_count
        high = 100.0 * (
            self.projection_true + self.projection_indeterminate
        ) / self.query_count
        return (low, high)

    def shape_table(self, fragment: str) -> List[Tuple[str, int, float]]:
        """One Table 4 column block for fragment ∈ {CQ, CQF, CQOF}."""
        counts = self.shape_counts[fragment]
        total = self.shape_totals[fragment] or 1
        rows = [
            (shape, counts.get(shape, 0), 100.0 * counts.get(shape, 0) / total)
            for shape in SHAPE_ORDER
        ]
        tw = self.treewidth_counts[fragment]
        le2 = tw.get(1, 0) + tw.get(2, 0) + tw.get(0, 0)
        rows.append(("treewidth <= 2", le2, 100.0 * le2 / total))
        rows.append(("treewidth = 3", tw.get(3, 0), 100.0 * tw.get(3, 0) / total))
        rows.append(("total", self.shape_totals[fragment], 100.0))
        return rows

    def streak_histograms(self) -> Dict[str, Dict[str, int]]:
        """Table 6 columns: dataset → bucket-label histogram (row order),
        for every dataset whose ingestion ran the ``streaks`` metric.
        Empty when no dataset carries streak state."""
        return {
            name: stats.streaks.length_histogram()
            for name, stats in self.datasets.items()
            if stats.streaks is not None
        }

    def streak_total(self) -> int:
        """Total streaks detected across all datasets."""
        return sum(
            stats.streaks.streak_count
            for stats in self.datasets.values()
            if stats.streaks is not None
        )

    def streak_longest(self) -> int:
        """Length of the longest streak across all datasets (0 if none)."""
        return max(
            (
                stats.streaks.longest
                for stats in self.datasets.values()
                if stats.streaks is not None
            ),
            default=0,
        )

    def path_table(self) -> List[Tuple[str, int, float, str]]:
        """Table 5 rows: (type, absolute, relative %, k-range)."""
        navigational = sum(self.path_types.values()) or 1
        rows = []
        for name, count in self.path_types.most_common():
            ks = self.path_type_k.get(name, [])
            if ks:
                lo, hi = min(ks), max(ks)
                k_range = str(lo) if lo == hi else f"{lo}-{hi}"
            else:
                k_range = ""
            rows.append((name, count, 100.0 * count / navigational, k_range))
        return rows


def _claim_streaks(name: str, log: QueryLog) -> Optional[StreakAccumulator]:
    """Take the streak state off a log's sequence results — loudly.

    Every sequence-pass result must land on a :class:`DatasetStats`
    field (mirroring the merge machinery's no-silent-drop rule): a
    future pass whose results nothing here claims would otherwise be
    computed at ingestion and then vanish from the study.  The
    accumulator is copied so merging studies never mutates the log.
    """
    unclaimed = set(log.sequences) - {"streaks"}
    if unclaimed:
        raise TypeError(
            f"dataset {name!r}: no DatasetStats field carries the results "
            f"of sequence pass(es) {sorted(unclaimed)}; add a field and a "
            "snapshot codec entry alongside the pass"
        )
    accumulator = log.sequences.get("streaks")
    return None if accumulator is None else accumulator.copy()


def measure_query(
    parsed: ParsedQuery,
    dataset: str = "corpus",
    weight: int = 1,
    dedup: bool = True,
    options: AnalysisOptions = DEFAULT_OPTIONS,
    cache: Optional[StructureCache] = None,
) -> CorpusStudy:
    """Measure a single query: the pure unit of work of the study.

    Returns a fresh single-query :class:`CorpusStudy` (with one
    :class:`DatasetStats` under *dataset*) and never mutates shared
    state, so results can be computed in any order — or on worker
    processes — and combined with :meth:`CorpusStudy.merge`.  Folding
    the per-query studies in stream order reproduces every measurement
    counter of :func:`study_corpus`; the Table 1 pipeline counters
    (total/valid/unique) come from the :class:`QueryLog`, not from
    measurement, and for the Valid corpus (``dedup=False``) pass
    ``weight=parsed.count`` to keep multiplicities.

    An optional shared *cache* (:class:`StructureCache`) lets repeated
    shapes reuse their structure results; it is transparent, so results
    are identical with or without one — but all calls sharing a cache
    must use the same *options*.
    """
    study = CorpusStudy(dedup=dedup)
    stats = DatasetStats(name=dataset)
    study.datasets[dataset] = stats
    run_passes(
        study,
        stats,
        parsed,
        weight,
        passes=resolve_passes(options.metrics),
        options=options,
        cache=cache,
    )
    return study


def study_corpus(
    logs: Mapping[str, QueryLog],
    dedup: bool = True,
    *,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    options: Optional[AnalysisOptions] = None,
    pool: Optional["WorkerPool"] = None,
    transport: Optional["TransportStats"] = None,
) -> CorpusStudy:
    """Run the full analysis over processed logs.

    With ``workers > 1`` (or a persistent *pool*) the per-dataset query
    streams are split into lazily-produced chunks measured on worker
    processes with bounded in-flight chunks, and the partial studies
    merged in stream order (see :mod:`repro.analysis.parallel`); the
    result is identical to the serial pass.  *transport* (when given)
    receives the sharded run's shipped-bytes and merge-time accounting.

    *options* selects passes (``metrics``), configures the shape-node
    limit and structural cache, and enables per-pass profiling (the
    profile lands on ``CorpusStudy.pass_profile``).
    """
    if options is None:
        options = DEFAULT_OPTIONS
    if workers != 1 or pool is not None:
        from .parallel import study_corpus_parallel

        return study_corpus_parallel(
            logs, dedup=dedup, workers=workers, chunk_size=chunk_size,
            options=options, pool=pool, transport=transport,
        )
    passes = resolve_passes(options.metrics)
    # With ``options.structure_cache_path`` set, the run cache is
    # backed by the persistent cross-run store (read + write — a serial
    # run is its own parent); pending rows are flushed on close.  The
    # store is transparent, so the study is byte-identical either way.
    from .structure_store import StoreBackedStructureCache, open_structure_cache

    cache = open_structure_cache(options)
    profile = PassProfile() if options.profile else None
    study = CorpusStudy(dedup=dedup)
    try:
        for name, log in logs.items():
            stats = DatasetStats(
                name=name, total=log.total, valid=log.valid, unique=log.unique,
                streaks=_claim_streaks(name, log),
            )
            study.datasets[name] = stats
            for parsed in log.unique_queries():
                weight = 1 if dedup else parsed.count
                run_passes(
                    study,
                    stats,
                    parsed,
                    weight,
                    passes=passes,
                    options=options,
                    cache=cache,
                    profile=profile,
                )
    finally:
        if isinstance(cache, StoreBackedStructureCache):
            cache.close()
    if profile is not None:
        profile.cache_hits = cache.hits
        profile.cache_misses = cache.misses
        profile.store_hits = getattr(cache, "store_hits", 0)
        study.pass_profile = profile
    return study


def _analyze_query(
    study: CorpusStudy, stats: DatasetStats, parsed: ParsedQuery, weight: int
) -> None:
    """Back-compat shim for the pre-refactor monolith: the default pass
    pipeline with no cross-query cache."""
    run_passes(study, stats, parsed, weight)
