"""Corpus-wide study driver: every measurement of the paper, one pass.

:func:`study_corpus` takes the processed :class:`~repro.logs.QueryLog`
objects and computes, per dataset and aggregated:

* Table 1 counters (carried through from the pipeline);
* Table 2 / Table 7 keyword counts;
* Figure 1 / Figure 8 triple-count histograms, S/A shares, Avg#T;
* Table 3 / Table 8 operator-set distribution with CPF subtotals;
* §4.4 subquery and projection statistics;
* §5.2 fragment sizes (AOF, CQ, CQF, well-designed, CQOF);
* Figure 5 / Figure 9 CQ-like size histograms;
* Table 4 / Table 9 cumulative shape analysis with treewidth rows;
* §6.1 shortest-cycle histogram and the constants rerun;
* §6.2 hypertree widths of predicate-variable queries;
* Table 5 / Figure 10 property-path taxonomy with Ctract outliers.

``dedup=True`` analyses the Unique corpus (paper main body);
``dedup=False`` weights every query by its multiplicity (the appendix's
Valid corpus).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, MutableMapping, Optional, Tuple

from ..logs.pipeline import ParsedQuery, QueryLog
from ..sparql import ast, walk
from .canonical import canonical_graph, canonical_hypergraph, has_predicate_variable
from .features import KEYWORD_ORDER, extract_features
from .fragments import classify_fragments
from .hypertree import hypertree_width
from .operators import TABLE3_ROWS, classify_operators
from .property_paths import classify_path
from .shapes import SHAPE_ORDER, classify_shape
from .treewidth import treewidth

__all__ = ["DatasetStats", "CorpusStudy", "measure_query", "study_corpus"]

#: Shape analysis is skipped for pathological graphs above this size —
#: the classifier is polynomial but flower detection tries every core.
_SHAPE_NODE_LIMIT = 400

#: Cap on the number of non-Ctract path expressions kept for Table 5.
_NON_CTRACT_LIMIT = 100


def _merge_counters(dst: MutableMapping, src: Mapping) -> None:
    """Add *src* into *dst* key-wise.

    ``Counter.__add__`` silently drops keys whose count is zero (or
    negative), so merging with ``+`` would erase explicitly-recorded
    zero buckets and change table shapes.  This helper preserves every
    key present on either side.
    """
    for key, value in src.items():
        dst[key] = dst.get(key, 0) + value


def _merge_fields(self, other, skip: frozenset) -> None:
    """Merge all dataclass fields by type: int adds, Counter key-merges.

    Introspecting the fields (instead of hand-maintained name lists)
    means a future metric added to the dataclass is merged — or, for a
    type with no obvious merge, rejected loudly — rather than silently
    dropped from sharded runs, which would break serial ≡ parallel.
    """
    for field_info in fields(self):
        name = field_info.name
        if name in skip:
            continue
        mine = getattr(self, name)
        theirs = getattr(other, name)
        if isinstance(mine, Counter):
            _merge_counters(mine, theirs)
        elif isinstance(mine, int):
            setattr(self, name, mine + theirs)
        else:
            raise TypeError(
                f"{type(self).__name__}.merge: no merge rule for field {name!r} "
                f"of type {type(mine).__name__}"
            )


@dataclass
class DatasetStats:
    """Per-dataset accumulators (Figure 1 needs per-dataset numbers)."""

    name: str
    total: int = 0
    valid: int = 0
    unique: int = 0
    queries: int = 0  # analyzed stream size (unique or valid)
    select_ask: int = 0
    triple_hist: Counter = field(default_factory=Counter)  # per S/A query
    triple_sum: int = 0  # over ALL queries (Avg#T is corpus-wide)
    keyword_counts: Counter = field(default_factory=Counter)

    def merge(self, other: "DatasetStats") -> "DatasetStats":
        """Fold another shard of the same dataset into this one."""
        if other.name != self.name:
            raise ValueError(
                f"cannot merge stats for {other.name!r} into {self.name!r}"
            )
        _merge_fields(self, other, skip=frozenset({"name"}))
        return self

    @property
    def select_ask_share(self) -> float:
        return self.select_ask / self.queries if self.queries else 0.0

    @property
    def average_triples(self) -> float:
        return self.triple_sum / self.queries if self.queries else 0.0

    def triple_hist_percentages(self) -> Dict[str, float]:
        """Figure 1 buckets: '0'..'10' and '11+' as % of S/A queries."""
        buckets: Dict[str, float] = {}
        if not self.select_ask:
            return {str(i): 0.0 for i in range(11)} | {"11+": 0.0}
        for i in range(11):
            buckets[str(i)] = 100.0 * self.triple_hist.get(i, 0) / self.select_ask
        over = sum(count for size, count in self.triple_hist.items() if size >= 11)
        buckets["11+"] = 100.0 * over / self.select_ask
        return buckets


@dataclass
class CorpusStudy:
    """Aggregated results over the whole corpus."""

    dedup: bool = True
    datasets: Dict[str, DatasetStats] = field(default_factory=dict)

    # Shallow analysis
    keyword_counts: Counter = field(default_factory=Counter)
    query_count: int = 0
    select_ask_count: int = 0
    no_body_count: int = 0

    # Operator sets (Select/Ask only)
    operator_sets: Counter = field(default_factory=Counter)  # frozenset->n
    operator_other_combination: int = 0
    operator_other_features: int = 0

    # §4.4
    subquery_count: int = 0
    projection_true: int = 0
    projection_indeterminate: int = 0
    ask_projection: int = 0

    # §5.2 fragments (of Select/Ask)
    aof_count: int = 0
    cq_count: int = 0
    cqf_count: int = 0
    cqof_count: int = 0
    well_designed_count: int = 0
    wide_interface_count: int = 0  # well-designed, simple filters, iw > 1

    # Figure 5: sizes of CQ-like queries (triples >= 1)
    cq_sizes: Counter = field(default_factory=Counter)
    cqf_sizes: Counter = field(default_factory=Counter)
    cqof_sizes: Counter = field(default_factory=Counter)

    # Table 4: cumulative shape counts per fragment
    shape_counts: Dict[str, Counter] = field(
        default_factory=lambda: {"CQ": Counter(), "CQF": Counter(), "CQOF": Counter()}
    )
    shape_totals: Counter = field(default_factory=Counter)  # fragment -> n
    treewidth_counts: Dict[str, Counter] = field(
        default_factory=lambda: {"CQ": Counter(), "CQF": Counter(), "CQOF": Counter()}
    )
    girth_hist: Counter = field(default_factory=Counter)
    single_edge_cq: int = 0
    single_edge_cq_with_constants: int = 0

    # §6.2 hypergraphs (predicate-variable CQOF queries)
    predicate_variable_cqof: int = 0
    hypertree_widths: Counter = field(default_factory=Counter)
    decomposition_nodes: Counter = field(default_factory=Counter)

    # §7 property paths
    property_path_total: int = 0
    simple_path_forms: Counter = field(default_factory=Counter)  # "!a"/"^a"
    path_types: Counter = field(default_factory=Counter)
    path_type_k: Dict[str, List[int]] = field(default_factory=dict)
    non_ctract: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Merge semantics
    # ------------------------------------------------------------------

    #: Fields :func:`_merge_fields` cannot handle generically; each has
    #: explicit handling in :meth:`merge`.
    _SPECIAL_MERGE_FIELDS = frozenset(
        {
            "dedup",
            "datasets",
            "shape_counts",
            "treewidth_counts",
            "path_type_k",
            "non_ctract",
        }
    )

    def merge(self, other: "CorpusStudy") -> "CorpusStudy":
        """Fold a partial study (e.g. one shard's results) into this one.

        Merging in stream order reproduces the single-pass study
        exactly, including counter key order (which breaks ties in
        ``Counter.most_common``) and the non-Ctract sample.
        """
        if other.dedup != self.dedup:
            raise ValueError("cannot merge Unique-corpus and Valid-corpus studies")
        for name, stats in other.datasets.items():
            mine = self.datasets.get(name)
            if mine is None:
                mine = DatasetStats(name=name)
                self.datasets[name] = mine
            mine.merge(stats)
        _merge_fields(self, other, skip=self._SPECIAL_MERGE_FIELDS)
        for fragment, counts in other.shape_counts.items():
            _merge_counters(self.shape_counts.setdefault(fragment, Counter()), counts)
        for fragment, counts in other.treewidth_counts.items():
            _merge_counters(
                self.treewidth_counts.setdefault(fragment, Counter()), counts
            )
        for path_type, ks in other.path_type_k.items():
            self.path_type_k.setdefault(path_type, []).extend(ks)
        remaining = _NON_CTRACT_LIMIT - len(self.non_ctract)
        if remaining > 0:
            self.non_ctract.extend(other.non_ctract[:remaining])
        return self

    # ------------------------------------------------------------------
    def keyword_table(self) -> List[Tuple[str, int, float]]:
        """Table 2 rows: (keyword, absolute, relative %)."""
        rows = []
        for keyword in KEYWORD_ORDER:
            absolute = self.keyword_counts.get(keyword, 0)
            relative = 100.0 * absolute / self.query_count if self.query_count else 0.0
            rows.append((keyword, absolute, relative))
        return rows

    def operator_table(self) -> List[Tuple[str, int, float]]:
        """Table 3 rows in paper order, plus subtotals."""
        denominator = self.select_ask_count or 1
        rows: List[Tuple[str, int, float]] = []

        def label(letters: frozenset) -> str:
            if not letters:
                return "none"
            # The paper writes operator sets with F last: "A, F",
            # "A, O, F", "A, O, U, F", …
            order = "AOUGF"
            return ", ".join(sorted(letters, key=order.index))

        cpf_subtotal = 0
        for letters in TABLE3_ROWS:
            count = self.operator_sets.get(letters, 0)
            rows.append((label(letters), count, 100.0 * count / denominator))
            if letters <= frozenset("AF"):
                cpf_subtotal += count
        rows.insert(
            4, ("CPF subtotal", cpf_subtotal, 100.0 * cpf_subtotal / denominator)
        )
        return rows

    def cpf_plus(self, letter: str) -> Tuple[int, float]:
        """The CPF+O / CPF+G / CPF+U increments of Table 3."""
        denominator = self.select_ask_count or 1
        increment = 0
        for letters, count in self.operator_sets.items():
            if letter in letters and letters <= frozenset("AF" + letter):
                increment += count
        return increment, 100.0 * increment / denominator

    def projection_bounds(self) -> Tuple[float, float]:
        """(lower %, upper %) of queries using projection (§4.4)."""
        if not self.query_count:
            return (0.0, 0.0)
        low = 100.0 * self.projection_true / self.query_count
        high = 100.0 * (
            self.projection_true + self.projection_indeterminate
        ) / self.query_count
        return (low, high)

    def shape_table(self, fragment: str) -> List[Tuple[str, int, float]]:
        """One Table 4 column block for fragment ∈ {CQ, CQF, CQOF}."""
        counts = self.shape_counts[fragment]
        total = self.shape_totals[fragment] or 1
        rows = [
            (shape, counts.get(shape, 0), 100.0 * counts.get(shape, 0) / total)
            for shape in SHAPE_ORDER
        ]
        tw = self.treewidth_counts[fragment]
        le2 = tw.get(1, 0) + tw.get(2, 0) + tw.get(0, 0)
        rows.append(("treewidth <= 2", le2, 100.0 * le2 / total))
        rows.append(("treewidth = 3", tw.get(3, 0), 100.0 * tw.get(3, 0) / total))
        rows.append(("total", self.shape_totals[fragment], 100.0))
        return rows

    def path_table(self) -> List[Tuple[str, int, float, str]]:
        """Table 5 rows: (type, absolute, relative %, k-range)."""
        navigational = sum(self.path_types.values()) or 1
        rows = []
        for name, count in self.path_types.most_common():
            ks = self.path_type_k.get(name, [])
            if ks:
                lo, hi = min(ks), max(ks)
                k_range = str(lo) if lo == hi else f"{lo}-{hi}"
            else:
                k_range = ""
            rows.append((name, count, 100.0 * count / navigational, k_range))
        return rows


def measure_query(
    parsed: ParsedQuery,
    dataset: str = "corpus",
    weight: int = 1,
    dedup: bool = True,
) -> CorpusStudy:
    """Measure a single query: the pure unit of work of the study.

    Returns a fresh single-query :class:`CorpusStudy` (with one
    :class:`DatasetStats` under *dataset*) and never mutates shared
    state, so results can be computed in any order — or on worker
    processes — and combined with :meth:`CorpusStudy.merge`.  Folding
    the per-query studies in stream order reproduces every measurement
    counter of :func:`study_corpus`; the Table 1 pipeline counters
    (total/valid/unique) come from the :class:`QueryLog`, not from
    measurement, and for the Valid corpus (``dedup=False``) pass
    ``weight=parsed.count`` to keep multiplicities.
    """
    study = CorpusStudy(dedup=dedup)
    stats = DatasetStats(name=dataset)
    study.datasets[dataset] = stats
    _analyze_query(study, stats, parsed, weight)
    return study


def study_corpus(
    logs: Mapping[str, QueryLog],
    dedup: bool = True,
    *,
    workers: int = 1,
    chunk_size: Optional[int] = None,
) -> CorpusStudy:
    """Run the full analysis over processed logs.

    With ``workers > 1`` the per-dataset query streams are split into
    lazily-produced chunks measured on worker processes with bounded
    in-flight chunks, and the partial studies merged in stream order
    (see :mod:`repro.analysis.parallel`); the result is identical to
    the serial pass.
    """
    if workers != 1:
        from .parallel import study_corpus_parallel

        return study_corpus_parallel(
            logs, dedup=dedup, workers=workers, chunk_size=chunk_size
        )
    study = CorpusStudy(dedup=dedup)
    for name, log in logs.items():
        stats = DatasetStats(
            name=name, total=log.total, valid=log.valid, unique=log.unique
        )
        study.datasets[name] = stats
        for parsed in log.unique_queries():
            weight = 1 if dedup else parsed.count
            _analyze_query(study, stats, parsed, weight)
    return study


# ---------------------------------------------------------------------------
# Per-query analysis
# ---------------------------------------------------------------------------


def _analyze_query(
    study: CorpusStudy, stats: DatasetStats, parsed: ParsedQuery, weight: int
) -> None:
    query = parsed.query
    # Wikidata queries get their SERVICE wrapper stripped (§4.3 fn 13).
    if stats.name.lower().startswith("wikidata"):
        query = walk.strip_services(query)
    features = extract_features(query)

    study.query_count += weight
    stats.queries += weight
    stats.triple_sum += features.triple_count * weight
    for keyword in features.keywords:
        study.keyword_counts[keyword] += weight
        stats.keyword_counts[keyword] += weight
    if not features.has_body:
        study.no_body_count += weight
    if features.uses_subquery:
        study.subquery_count += weight
    if features.uses_projection is True:
        study.projection_true += weight
        if query.query_type is ast.QueryType.ASK:
            study.ask_projection += weight
    elif features.uses_projection is None:
        study.projection_indeterminate += weight

    _analyze_paths(study, parsed.query, weight)

    if not features.is_select_or_ask():
        return
    study.select_ask_count += weight
    stats.select_ask += weight
    stats.triple_hist[features.triple_count] += weight

    classification = classify_operators(query)
    if classification.pure:
        if classification.letters in TABLE3_ROWS:
            study.operator_sets[classification.letters] += weight
        else:
            study.operator_other_combination += weight
            study.operator_sets[classification.letters] += weight
    else:
        study.operator_other_features += weight

    fragments = classify_fragments(query)
    if not fragments.is_aof:
        return
    study.aof_count += weight
    if fragments.is_well_designed:
        study.well_designed_count += weight
        if (
            fragments.has_simple_filters
            and fragments.interface_width is not None
            and fragments.interface_width > 1
        ):
            study.wide_interface_count += weight
    if fragments.is_cq:
        study.cq_count += weight
    if fragments.is_cqf:
        study.cqf_count += weight
    if fragments.is_cqof:
        study.cqof_count += weight

    triples = features.triple_count
    if triples >= 1:
        if fragments.is_cq:
            study.cq_sizes[triples] += weight
        if fragments.is_cqf:
            study.cqf_sizes[triples] += weight
        if fragments.is_cqof:
            study.cqof_sizes[triples] += weight

    _analyze_structure(study, query, fragments, weight)


def _analyze_structure(study, query, fragments, weight: int) -> None:
    pattern = query.pattern
    if has_predicate_variable(pattern):
        if fragments.is_cqof:
            study.predicate_variable_cqof += weight
            hypergraph = canonical_hypergraph(pattern)
            result = hypertree_width(hypergraph)
            study.hypertree_widths[result.width] += weight
            study.decomposition_nodes[result.node_count] += weight
        return
    if not (fragments.is_cq or fragments.is_cqf or fragments.is_cqof):
        return
    graph = canonical_graph(pattern)
    if graph.node_count() > _SHAPE_NODE_LIMIT:
        return
    profile = classify_shape(graph)
    width = treewidth(graph)
    memberships = profile.as_dict()
    for fragment, member in (
        ("CQ", fragments.is_cq),
        ("CQF", fragments.is_cqf),
        ("CQOF", fragments.is_cqof),
    ):
        if not member:
            continue
        study.shape_totals[fragment] += weight
        for shape, holds in memberships.items():
            if holds:
                study.shape_counts[fragment][shape] += weight
        study.treewidth_counts[fragment][width.width] += weight
    if fragments.is_cq and profile.single_edge:
        study.single_edge_cq += weight
        constants_only = canonical_graph(pattern, include_constants=False)
        if constants_only.node_count() < graph.node_count():
            study.single_edge_cq_with_constants += weight
    if profile.shortest_cycle is not None and fragments.is_cqof:
        study.girth_hist[profile.shortest_cycle] += weight


def _analyze_paths(study, query, weight: int) -> None:
    pattern = query.pattern
    for node in walk.iter_path_patterns(pattern):
        study.property_path_total += weight
        classification = classify_path(node.path)
        if not classification.navigational:
            if classification.simple_form:
                study.simple_path_forms[classification.simple_form] += weight
            continue
        study.path_types[classification.expression_type] += weight
        if classification.k is not None:
            study.path_type_k.setdefault(
                classification.expression_type, []
            ).append(classification.k)
        if not classification.ctract and len(study.non_ctract) < _NON_CTRACT_LIMIT:
            from ..sparql.serializer import serialize_path

            study.non_ctract.append(serialize_path(node.path))
