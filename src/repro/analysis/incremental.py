"""Incremental always-on analysis: the engine behind ``repro watch``.

The batch pipeline answers "what does this log say"; this module
answers it *continuously*: tail growing log files (or directories of
them), feed only the new suffix through the existing pass pipeline,
and fold the result into a running :class:`CorpusStudy` checkpoint —
exploiting the fact that every accumulator in the system already
merges in stream order.

Three pieces make the fold exact (invariant 12 in
``docs/ARCHITECTURE.md``: the checkpointed study is byte-identical to
a one-shot ``repro analyze`` of the full log, for *any* split into
watch cycles):

* **Resumable source cursors.**  Each tailed file carries a logical
  byte offset (raw bytes for plain files, decompressed bytes for gzip
  — recognized by magic, and readable across appended gzip members)
  plus a SHA-256 fingerprint of the consumed prefix.  Every cycle
  re-verifies the fingerprint while skipping the prefix, so a
  truncated, rotated, or rewritten source raises
  :class:`~repro.exceptions.WatchStateError` instead of silently
  double-counting history.  Cycles advance only past *complete* entry
  boundaries (the last newline; for block format, the last blank
  line), so a writer flushing mid-entry never splits one; ``drain``
  consumes the unterminated tail on a final cycle.
* **Cross-cycle deduplication.**  Table 1's Unique column and every
  main-body measurement run over first occurrences.  The checkpoint
  carries the SHA-256 digests of all unique texts seen, so each cycle
  measures exactly the queries whose first occurrence falls in its
  slice — concatenated across cycles, that is precisely the one-shot
  unique stream, in order.
* **Streak resume tokens.**  The per-dataset
  :class:`~repro.analysis.streaks.StreakAccumulator` snapshots with
  the study; its open-chain records (lean: O(window) per chain,
  however long the streak) are the resume state, and each cycle's
  slice accumulator stitches on via the same merge the sharded scan
  uses.

The checkpoint keeps one cumulative study *per dataset* and derives
the combined study by merging them in input order — the same stitch
the sharded drivers use — so datasets growing in interleaved cycles
still report with exactly the one-shot counter order (one-shot runs
fold each dataset to completion before the next).

Durability: cursors, seen-digests, and the per-dataset study snapshots
are one JSON *checkpoint* document written with a single atomic
replace — a crashed or SIGKILLed cycle leaves either the previous
checkpoint or the new one, never a torn cursor/study pair, so
resuming re-reads at most one suffix (``tests/test_watch.py``
kill-tests this).  A convenience copy of the combined study is kept
next to it for ``repro report`` / ``repro merge``; it is derived
state, rewritten every cycle.

Limits, by design: watch analyses the Unique corpus (``dedup=True``)
only; the entry format of a file is detected once, at its first
non-empty cycle, and pinned; and directory sources assume files grow
append-only in sorted name order (the one-shot concatenation order).
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    BinaryIO,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..exceptions import StudySnapshotError, WatchStateError
from ..ioutils import atomic_write_text
from ..logs.pipeline import ParsedQuery, QueryLog
from ..logs.sources import (
    _GZIP_MAGIC,
    _PARSERS,
    DETECT_LINES,
    dataset_name,
    detect_format,
    source_paths,
)
from .context import AnalysisOptions
from .parallel import build_query_logs_parallel
from .passes import resolve_passes, run_passes, sequence_only_selection
from .snapshot import save_study, study_from_dict, study_to_dict
from .structure_store import StoreBackedStructureCache, open_structure_cache
from .study import CorpusStudy, DatasetStats, _claim_streaks

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA_VERSION",
    "WatchCycle",
    "WatchSession",
]

#: ``kind`` header of a watch checkpoint document.
CHECKPOINT_KIND = "repro.watch_checkpoint"

#: Version of the checkpoint layout (the embedded study dicts carry
#: their own snapshot schema version and migrate independently, so a
#: checkpoint written before a snapshot schema bump keeps loading).
CHECKPOINT_SCHEMA_VERSION = 1

#: File names inside a watch state directory.
CHECKPOINT_NAME = "checkpoint.json"
STUDY_NAME = "study.json"

_READ_CHUNK = 1 << 20


def _text_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _open_logical(path: Path) -> BinaryIO:
    """Open *path* as its logical byte stream (decompressing gzip).

    Compression is recognized by magic bytes, like
    :func:`repro.logs.sources.open_text`; gzip offsets therefore count
    *decompressed* bytes, which stay stable when members are appended
    (``gzip`` reads concatenated members as one stream).
    """
    with path.open("rb") as probe:
        magic = probe.read(len(_GZIP_MAGIC))
    if magic == _GZIP_MAGIC:
        return gzip.open(path, "rb")
    return path.open("rb")


def _consumable_length(data: bytes, format: str, drain: bool) -> int:
    """Length of the longest prefix of *data* ending at an entry boundary.

    Line formats cut after the last newline; block format cuts after
    the last blank separator line, so a block still being written is
    never split.  ``drain`` consumes everything — only correct when
    the writer has finished (the final scheduled cycle).
    """
    if drain:
        return len(data)
    if format == "blocks":
        cut = position = 0
        while True:
            newline = data.find(b"\n", position)
            if newline < 0:
                return cut
            if not data[position:newline].strip():
                cut = newline + 1
            position = newline + 1
    cut = data.rfind(b"\n")
    return 0 if cut < 0 else cut + 1


def _region_lines(data: bytes) -> List[str]:
    """Decode a consumed region exactly as :func:`open_text` would.

    Same wrapper class, same encoding, same ``errors="replace"``, same
    universal-newline translation — and regions always split right
    after ``\\n``, which no UTF-8 multi-byte sequence or ``\\r\\n``
    pair can straddle, so region-wise decoding equals whole-file
    decoding.
    """
    wrapper = io.TextIOWrapper(
        io.BytesIO(data), encoding="utf-8", errors="replace"
    )
    return [line.rstrip("\n") for line in wrapper]


@dataclass
class _SourceCursor:
    """Resume state of one tailed file."""

    path: str
    format: Optional[str] = None  # pinned at the first non-empty read
    offset: int = 0  # consumed logical bytes
    fingerprint: str = ""  # sha256 of the consumed logical prefix

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "format": self.format,
            "offset": self.offset,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Any, where: str) -> "_SourceCursor":
        if not isinstance(data, dict):
            raise WatchStateError(f"{where}: malformed cursor {data!r}")
        path = data.get("path")
        format = data.get("format")
        offset = data.get("offset")
        fingerprint = data.get("fingerprint")
        if (
            not isinstance(path, str)
            or (format is not None and format not in _PARSERS)
            or not isinstance(offset, int)
            or isinstance(offset, bool)
            or offset < 0
            or not isinstance(fingerprint, str)
        ):
            raise WatchStateError(f"{where}: malformed cursor {data!r}")
        return cls(
            path=path, format=format, offset=offset, fingerprint=fingerprint
        )

    def read_new_entries(self, drain: bool) -> List[str]:
        """Verify the consumed prefix, consume complete new entries.

        Advances ``offset``/``fingerprint`` past the consumed region
        and returns its raw query texts (empty when nothing complete is
        new).  Raises :class:`WatchStateError` when the on-disk prefix
        no longer matches what the study already folded in.
        """
        path = Path(self.path)
        hasher = hashlib.sha256()
        try:
            stream = _open_logical(path)
        except OSError as error:
            raise WatchStateError(
                f"watched source {self.path}: unreadable ({error})"
            ) from error
        with stream:
            remaining = self.offset
            while remaining:
                chunk = stream.read(min(_READ_CHUNK, remaining))
                if not chunk:
                    raise WatchStateError(
                        f"watched source {self.path}: shrank below the "
                        f"{self.offset}-byte cursor (truncated or rotated)"
                    )
                hasher.update(chunk)
                remaining -= len(chunk)
            if self.offset and hasher.hexdigest() != self.fingerprint:
                raise WatchStateError(
                    f"watched source {self.path}: consumed prefix was "
                    "rewritten behind the cursor (rotated or edited)"
                )
            data = stream.read()
        if not data:
            return []
        if self.format is None:
            # First sight of data: detect like the one-shot reader and
            # pin.  (One-shot detection sees the whole file's peek
            # window at once; appends that would flip the verdict are
            # out of contract — see the module docstring.)
            self.format = detect_format(_region_lines(data)[:DETECT_LINES])
        consumable = _consumable_length(data, self.format, drain)
        if not consumable:
            return []
        region = data[:consumable]
        hasher.update(region)
        self.offset += consumable
        self.fingerprint = hasher.hexdigest()
        return list(_PARSERS[self.format](iter(_region_lines(region))))


@dataclass
class WatchCycle:
    """What one :meth:`WatchSession.cycle` call did."""

    generation: int
    new_entries: Dict[str, int] = field(default_factory=dict)
    changed: bool = False
    diff: str = ""

    @property
    def total_new(self) -> int:
        return sum(self.new_entries.values())


class WatchSession:
    """A resumable incremental-analysis session over growing logs.

    Construct with the input paths (files or directories, one dataset
    each — the same inputs ``repro analyze`` takes) and a *state
    directory*; every :meth:`cycle` call ingests whatever the sources
    grew by, folds it into the running study, and atomically rewrites
    the checkpoint.  Killing the process at any point loses at most
    the in-flight cycle: a new session over the same state directory
    resumes from the last durable checkpoint and converges to the same
    bytes (``tests/test_watch.py``).

    The analysis configuration (metrics, streak parameters, shape
    limit, extra prefixes) is fixed at the first checkpoint; resuming
    with different options raises
    :class:`~repro.exceptions.WatchStateError` rather than mixing
    incompatible measurements into one study.
    """

    def __init__(
        self,
        inputs: Sequence[Union[str, Path]],
        state_dir: Union[str, Path],
        *,
        metrics: Optional[Sequence[str]] = None,
        streak_window: Optional[int] = None,
        streak_threshold: Optional[float] = None,
        shape_node_limit: Optional[int] = None,
        extra_prefixes: Optional[Mapping[str, str]] = None,
        warehouse_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if not inputs:
            raise ValueError("watch needs at least one input file or directory")
        self.inputs: Tuple[str, ...] = tuple(str(path) for path in inputs)
        names = [dataset_name(path) for path in self.inputs]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate dataset name(s) {sorted(duplicates)}; "
                "rename the inputs"
            )
        self._datasets: Tuple[Tuple[str, str], ...] = tuple(
            zip(names, self.inputs)
        )
        self.state_dir = Path(state_dir)
        self.checkpoint_path = self.state_dir / CHECKPOINT_NAME
        self.study_path = self.state_dir / STUDY_NAME
        self.warehouse_path = (
            None if warehouse_path is None else Path(warehouse_path)
        )
        defaults = AnalysisOptions()
        self.options = AnalysisOptions(
            metrics=None if metrics is None else tuple(metrics),
            shape_node_limit=(
                defaults.shape_node_limit
                if shape_node_limit is None
                else shape_node_limit
            ),
            streak_window=(
                defaults.streak_window
                if streak_window is None
                else streak_window
            ),
            streak_threshold=(
                defaults.streak_threshold
                if streak_threshold is None
                else streak_threshold
            ),
            lean_ingestion=sequence_only_selection(metrics),
        )
        resolve_passes(self.options.metrics)  # reject unknown metrics now
        self.extra_prefixes = (
            None if extra_prefixes is None else dict(extra_prefixes)
        )
        self.generation = 0
        self._studies: Dict[str, CorpusStudy] = {}
        self._cursors: Dict[str, _SourceCursor] = {}
        self._seen: Dict[str, set] = {}
        if self.checkpoint_path.exists():
            self._load_checkpoint()

    @property
    def study(self) -> Optional[CorpusStudy]:
        """The checkpointed study so far (``None`` before any cycle).

        Derived by stitching the per-dataset studies in input order —
        exactly how a one-shot run over the full sources would fold
        them, so counter key order (and hence snapshot bytes) match.
        """
        if not self._studies:
            return None
        combined = CorpusStudy(dedup=True)
        for name, _ in self._datasets:
            combined.merge(self._studies[name])
        return combined

    # -- configuration identity -------------------------------------

    def _config_dict(self) -> Dict[str, Any]:
        options = self.options
        return {
            "metrics": (
                None if options.metrics is None else list(options.metrics)
            ),
            "streak_window": options.streak_window,
            "streak_threshold": options.streak_threshold,
            "shape_node_limit": options.shape_node_limit,
            "extra_prefixes": self.extra_prefixes,
            "lean": options.lean_ingestion,
        }

    # -- checkpoint I/O ---------------------------------------------

    def _load_checkpoint(self) -> None:
        where = str(self.checkpoint_path)
        try:
            data = json.loads(self.checkpoint_path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WatchStateError(
                f"{where}: unreadable checkpoint ({error})"
            ) from error
        if not isinstance(data, dict) or data.get("kind") != CHECKPOINT_KIND:
            raise WatchStateError(f"{where}: not a watch checkpoint")
        if data.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            raise WatchStateError(
                f"{where}: checkpoint schema {data.get('schema')!r} is not "
                f"{CHECKPOINT_SCHEMA_VERSION} (written by another version?)"
            )
        if tuple(data.get("inputs", ())) != self.inputs:
            raise WatchStateError(
                f"{where}: checkpoint watches inputs {data.get('inputs')!r}, "
                f"session asks for {list(self.inputs)!r}"
            )
        config = data.get("config")
        if config != self._config_dict():
            raise WatchStateError(
                f"{where}: checkpoint was written under options {config!r}; "
                f"this session asks for {self._config_dict()!r} — one study "
                "cannot mix them"
            )
        generation = data.get("generation")
        if not isinstance(generation, int) or isinstance(generation, bool):
            raise WatchStateError(f"{where}: malformed generation")
        cursors = data.get("cursors")
        if not isinstance(cursors, list):
            raise WatchStateError(f"{where}: malformed cursors")
        known = {name for name, _ in self._datasets}
        seen = data.get("seen")
        if not isinstance(seen, dict) or not set(seen) <= known:
            raise WatchStateError(f"{where}: malformed seen-digest map")
        for digests in seen.values():
            if not isinstance(digests, list) or not all(
                isinstance(digest, str) for digest in digests
            ):
                raise WatchStateError(f"{where}: malformed seen-digest map")
        studies = data.get("studies")
        if not isinstance(studies, dict) or set(studies) != known:
            raise WatchStateError(
                f"{where}: per-dataset studies do not cover the watched "
                f"datasets {sorted(known)}"
            )
        loaded: Dict[str, CorpusStudy] = {}
        for name, document in studies.items():
            try:
                loaded[name] = study_from_dict(document)
            except StudySnapshotError as error:
                raise WatchStateError(
                    f"{where}: study for dataset {name!r}: {error}"
                ) from error
        self.generation = generation
        self._cursors = {}
        for entry in cursors:
            cursor = _SourceCursor.from_dict(entry, where)
            self._cursors[cursor.path] = cursor
        self._seen = {name: set(digests) for name, digests in seen.items()}
        self._studies = loaded

    def _write_checkpoint(self) -> None:
        document = {
            "kind": CHECKPOINT_KIND,
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "generation": self.generation,
            "inputs": list(self.inputs),
            "config": self._config_dict(),
            "cursors": [cursor.to_dict() for cursor in self._cursors.values()],
            "seen": {
                name: sorted(digests) for name, digests in self._seen.items()
            },
            "studies": {
                name: study_to_dict(self._studies[name])
                for name, _ in self._datasets
            },
        }
        self.state_dir.mkdir(parents=True, exist_ok=True)
        # One atomic replace carries cursors AND studies: a kill leaves
        # the previous checkpoint or this one, never a torn pair.
        atomic_write_text(
            self.checkpoint_path,
            json.dumps(document, separators=(",", ":")) + "\n",
        )
        # Derived convenience snapshot (repro report / merge load it);
        # resume never reads it, so a kill between the two writes
        # merely leaves it one cycle stale until the next rewrite.
        save_study(self.study, self.study_path)

    # -- the cycle ----------------------------------------------------

    def cycle(self, drain: bool = False) -> WatchCycle:
        """Ingest whatever the sources grew by; checkpoint; report.

        With ``drain`` the unterminated tail of every source is
        consumed as a final entry (use on the last scheduled cycle,
        when the writer is done).  Returns the cycle's outcome,
        including a diff report: what changed in Tables 1–6 since the
        previous checkpoint.
        """
        # Reporting imports lazily: analysis must stay importable
        # without the reporting layer (and vice versa).
        from ..reporting.reporters import render_rows_diff, study_long_rows

        previous = self.study
        previous_rows = [] if previous is None else study_long_rows(previous)
        first = not self._studies
        new_texts: Dict[str, List[str]] = {}
        for name, spec in self._datasets:
            texts: List[str] = []
            for file_path in source_paths(spec):
                key = str(file_path)
                cursor = self._cursors.get(key)
                if cursor is None:
                    cursor = self._cursors[key] = _SourceCursor(path=key)
                texts.extend(cursor.read_new_entries(drain))
            new_texts[name] = texts
        counts = {name: len(texts) for name, texts in new_texts.items()}
        changed = any(counts.values())
        deltas: Dict[str, CorpusStudy] = {}
        if changed or first:
            # The first cycle folds every dataset in, entries or not,
            # so the study lists them exactly like a one-shot run
            # would; later cycles only touch datasets that grew.
            corpora = {
                name: texts
                for name, texts in new_texts.items()
                if first or texts
            }
            logs = build_query_logs_parallel(
                corpora,
                self.extra_prefixes,
                workers=1,
                options=self.options,
            )
            for name in corpora:
                delta = self._measure_delta(name, logs[name])
                deltas[name] = delta
                if name in self._studies:
                    self._studies[name].merge(delta)
                else:
                    self._studies[name] = delta
        self.generation += 1
        self._write_checkpoint()
        if deltas and self.warehouse_path is not None:
            # The warehouse accumulates by merging, so it gets the
            # cycle's *delta* (cumulative checkpoints would
            # double-count); its merged study then tracks the
            # checkpoint study.
            from ..warehouse import StudyWarehouse

            cycle_delta = CorpusStudy(dedup=True)
            for name, _ in self._datasets:
                if name in deltas:
                    cycle_delta.merge(deltas[name])
            with StudyWarehouse.open(self.warehouse_path) as warehouse:
                warehouse.ingest(
                    cycle_delta,
                    source=f"watch:{self.state_dir}@{self.generation}",
                )
        diff = render_rows_diff(previous_rows, study_long_rows(self.study))
        return WatchCycle(
            generation=self.generation,
            new_entries=counts,
            changed=changed,
            diff=diff,
        )

    def _measure_delta(self, name: str, log: QueryLog) -> CorpusStudy:
        """Measure one dataset's cycle slice as a mergeable partial study.

        Table 1 counters are the slice's own (they add across cycles);
        the measured stream is the slice's *first-ever* occurrences —
        concatenated over cycles that is the one-shot unique stream, in
        order, which is what makes checkpoint ≡ one-shot exact.
        Mirrors the serial body of
        :func:`repro.analysis.study.study_corpus`.
        """
        passes = resolve_passes(self.options.metrics)
        cache = open_structure_cache(self.options)
        study = CorpusStudy(dedup=True)
        try:
            seen = self._seen.setdefault(name, set())
            fresh: List[ParsedQuery] = []
            for parsed in log.unique_queries():
                digest = _text_digest(parsed.text)
                if digest in seen:
                    continue
                seen.add(digest)
                fresh.append(parsed)
            stats = DatasetStats(
                name=name,
                total=log.total,
                valid=log.valid,
                unique=len(fresh),
                streaks=_claim_streaks(name, log),
            )
            study.datasets[name] = stats
            for parsed in fresh:
                run_passes(
                    study,
                    stats,
                    parsed,
                    1,
                    passes=passes,
                    options=self.options,
                    cache=cache,
                )
        finally:
            if isinstance(cache, StoreBackedStructureCache):
                cache.close()
        return study
