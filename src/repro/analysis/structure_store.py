"""Persistent cross-run structural-signature store (SQLite-backed).

The ``structure`` pass dominates study wall time, and its in-run LRU
(:class:`~repro.analysis.context.StructureCache`) already serves ~91%
of lookups — but every process starts cold, so re-analyzing a grown
corpus re-pays treewidth/hypertree/shape for shapes measured in
earlier runs.  This module persists the signature → entry map across
runs:

* :class:`StructureStore` — the SQLite backend.  WAL journal with
  ``synchronous=NORMAL`` (safe for concurrent reader processes while a
  parent writes), schema-versioned via ``PRAGMA user_version``, keyed
  by ``(signature hash, kind, code_version)``.  The code version is a
  digest of the classifier sources, so entries written by an older
  shape/treewidth/hypertree implementation are simply never served —
  no manual invalidation step exists or is needed.
* :class:`StoreBackedStructureCache` — the in-process layer: a normal
  bounded LRU that falls back to the store on miss and records fresh
  computations as *pending* rows for a later batch flush.

Concurrency model (matching :mod:`repro.analysis.parallel`): workers
attach **read-only**; only the parent — or a serial run — writes, in
batches at chunk boundaries, with ``INSERT OR IGNORE`` upserts so
concurrent or repeated flushes of the same signature are harmless.

The store is **transparent**: signature equality implies the relabeled
structures are identical (see :mod:`repro.analysis.context`), so a
warm run is byte-identical to a cold run, which is byte-identical to a
store-less run.  It is also **expendable**: a corrupted, truncated or
foreign file degrades to a cold run with a :class:`RuntimeWarning`,
never an exception — deleting the file is always safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ioutils import atomic_write_text
from .context import HypertreeEntry, StructureCache, StructureEntry
from .shapes import ShapeProfile

__all__ = [
    "CODE_VERSION",
    "STORE_SCHEMA_VERSION",
    "StoreBackedStructureCache",
    "StructureStore",
    "code_version",
    "decode_entry",
    "encode_entry",
    "open_structure_cache",
    "pending_rows",
    "signature_hash",
]

#: Version of the SQLite schema below, recorded in ``PRAGMA
#: user_version``.  A file carrying any other version (or none at all
#: while claiming content) is treated as unusable, not migrated.
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE entries (
    sig TEXT NOT NULL,
    kind TEXT NOT NULL,
    code_version TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (sig, kind, code_version)
) WITHOUT ROWID
"""

#: Seconds SQLite waits on a locked database before giving up.  Writes
#: are parent-only and batched, so contention is rare and short.
_BUSY_TIMEOUT = 30.0

#: The store file's sidecar metadata (informational; the database is
#: self-describing).  Written atomically on close, exercising the same
#: helper the study snapshots use.
_SIDECAR_SUFFIX = ".meta.json"


def code_version() -> str:
    """Digest of the classifier implementations feeding the store.

    Any change to the shape classifier, the treewidth/hypertree
    algorithms, the canonicalization or the signature scheme changes
    this digest, and with it the store key — entries computed by older
    code are never served to newer code (or vice versa).
    """
    from . import canonical, context, hypertree, shapes, treewidth

    digest = hashlib.sha256()
    for module in (canonical, context, hypertree, shapes, treewidth):
        digest.update(Path(module.__file__).read_bytes())
    return digest.hexdigest()[:16]


#: The running process's code version, computed once at import.
CODE_VERSION = code_version()


# ---------------------------------------------------------------------------
# Entry codec
# ---------------------------------------------------------------------------


def signature_hash(signature: Tuple) -> str:
    """Stable hex digest of a structural signature.

    Signatures are nested tuples of ints and strings, whose ``repr``
    is injective and identical across processes — unlike ``hash()``,
    which is salted per process.
    """
    return hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()


def encode_entry(key: Tuple, entry: object) -> Tuple[str, str, str]:
    """Encode a cache entry as a ``(kind, sig_hash, payload)`` row.

    *key* is the in-memory cache key ``(kind, signature)`` with kind
    ``"g"`` (canonical graph) or ``"h"`` (canonical hypergraph).
    """
    kind, signature = key
    if kind == "g":
        profile = entry.profile  # type: ignore[attr-defined]
        payload = {
            "shape": [
                profile.single_edge,
                profile.chain,
                profile.chain_set,
                profile.star,
                profile.tree,
                profile.forest,
                profile.cycle,
                profile.flower,
                profile.flower_set,
                profile.shortest_cycle,
            ],
            "width": entry.width,  # type: ignore[attr-defined]
            "uses_constants": entry.uses_constants,  # type: ignore[attr-defined]
        }
    elif kind == "h":
        payload = {
            "width": entry.width,  # type: ignore[attr-defined]
            "node_count": entry.node_count,  # type: ignore[attr-defined]
        }
    else:  # pragma: no cover - no third signature kind exists
        raise ValueError(f"unknown structure-cache key kind {kind!r}")
    return kind, signature_hash(signature), json.dumps(payload, separators=(",", ":"))


def decode_entry(kind: str, payload: str) -> object:
    """Inverse of :func:`encode_entry`; raises ``ValueError`` on junk."""
    try:
        data = json.loads(payload)
        if kind == "g":
            shape = data["shape"]
            single_edge, chain, chain_set, star, tree, forest = shape[:6]
            cycle, flower, flower_set, shortest_cycle = shape[6:10]
            return StructureEntry(
                profile=ShapeProfile(
                    single_edge=bool(single_edge),
                    chain=bool(chain),
                    chain_set=bool(chain_set),
                    star=bool(star),
                    tree=bool(tree),
                    forest=bool(forest),
                    cycle=bool(cycle),
                    flower=bool(flower),
                    flower_set=bool(flower_set),
                    shortest_cycle=(
                        None if shortest_cycle is None else int(shortest_cycle)
                    ),
                ),
                width=int(data["width"]),
                uses_constants=bool(data["uses_constants"]),
            )
        if kind == "h":
            return HypertreeEntry(
                width=int(data["width"]), node_count=int(data["node_count"])
            )
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise ValueError(f"undecodable {kind!r} entry: {error}") from error
    raise ValueError(f"unknown entry kind {kind!r}")


# ---------------------------------------------------------------------------
# The SQLite backend
# ---------------------------------------------------------------------------


class StructureStore:
    """One open structure-store database file.

    Construct via :meth:`open`, which returns ``None`` (after a
    :class:`RuntimeWarning`) instead of raising when the file is
    corrupt, truncated, schema-mismatched or otherwise unusable — the
    caller then simply runs cold.  Runtime SQLite errors likewise
    disable the store for the rest of the run rather than propagate.
    """

    __slots__ = ("path", "code_version", "readonly", "served", "_connection", "_failed")

    def __init__(
        self,
        connection: sqlite3.Connection,
        path: str,
        version: str,
        readonly: bool,
    ) -> None:
        self._connection = connection
        self.path = path
        self.code_version = version
        self.readonly = readonly
        #: Entries served from disk by :meth:`get` over this handle's
        #: lifetime (in-memory LRU hits never reach the store).
        self.served = 0
        self._failed = False

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: object,
        *,
        readonly: bool = False,
        version: Optional[str] = None,
    ) -> Optional["StructureStore"]:
        """Open (and, writable, initialize) the store at *path*.

        Returns ``None`` — with a :class:`RuntimeWarning` — whenever
        the file cannot serve as a store: unreadable, not SQLite, wrong
        schema version, or (read-only) simply absent.  Never raises.
        """
        resolved = str(path)
        if version is None:
            version = CODE_VERSION
        try:
            if readonly:
                uri = f"file:{Path(resolved).resolve().as_posix()}?mode=ro"
                connection = sqlite3.connect(uri, uri=True, timeout=_BUSY_TIMEOUT)
            else:
                connection = sqlite3.connect(resolved, timeout=_BUSY_TIMEOUT)
        except sqlite3.Error as error:
            _warn_degraded(resolved, f"cannot open ({error})")
            return None
        try:
            if not readonly:
                connection.execute("PRAGMA journal_mode=WAL")
                connection.execute("PRAGMA synchronous=NORMAL")
            user_version = connection.execute("PRAGMA user_version").fetchone()[0]
            has_entries = (
                connection.execute(
                    "SELECT name FROM sqlite_master"
                    " WHERE type = 'table' AND name = 'entries'"
                ).fetchone()
                is not None
            )
            if user_version == 0 and not has_entries:
                if readonly:
                    _warn_degraded(resolved, "store is not initialized")
                    connection.close()
                    return None
                connection.execute(_SCHEMA)
                connection.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION}")
                connection.commit()
            elif user_version != STORE_SCHEMA_VERSION or not has_entries:
                _warn_degraded(
                    resolved,
                    f"unsupported store schema {user_version}"
                    f" (expected {STORE_SCHEMA_VERSION})",
                )
                connection.close()
                return None
        except sqlite3.Error as error:
            _warn_degraded(resolved, f"not a usable store ({error})")
            connection.close()
            return None
        return cls(connection, resolved, version, readonly)

    def close(self) -> None:
        """Flush the sidecar metadata (writable stores) and close."""
        if not self.readonly and not self._failed:
            try:
                stats = self.stats()
                atomic_write_text(
                    self.path + _SIDECAR_SUFFIX,
                    json.dumps(
                        {
                            "store_schema": STORE_SCHEMA_VERSION,
                            "code_version": self.code_version,
                            "entries": stats["entries"],
                        },
                        indent=2,
                    )
                    + "\n",
                )
            except (sqlite3.Error, OSError):  # pragma: no cover - best effort
                pass
        try:
            self._connection.close()
        except sqlite3.Error:  # pragma: no cover - close never fails in practice
            pass

    def _fail(self, reason: str) -> None:
        """Disable the store for the rest of the run, loudly but once."""
        if not self._failed:
            self._failed = True
            _warn_degraded(self.path, reason)

    # -- reads ----------------------------------------------------------

    def get(self, key: Tuple) -> Optional[object]:
        """The decoded entry under cache key *key*; ``None`` on miss.

        A read error or an undecodable row disables the store (one
        warning) and reports a miss — the caller recomputes, so results
        are unaffected.
        """
        if self._failed:
            return None
        kind, signature = key
        try:
            row = self._connection.execute(
                "SELECT payload FROM entries"
                " WHERE sig = ? AND kind = ? AND code_version = ?",
                (signature_hash(signature), kind, self.code_version),
            ).fetchone()
        except sqlite3.Error as error:
            self._fail(f"read failed ({error})")
            return None
        if row is None:
            return None
        try:
            entry = decode_entry(kind, row[0])
        except ValueError as error:
            self._fail(str(error))
            return None
        self.served += 1
        return entry

    # -- writes ---------------------------------------------------------

    def put_many(self, rows: Sequence[Tuple[str, str, str]]) -> None:
        """Upsert encoded ``(kind, sig_hash, payload)`` rows in one batch.

        ``INSERT OR IGNORE`` keeps concurrent flushes of the same
        signature (two workers measuring the same shape in different
        chunks) harmless: first write wins, and both writes carry the
        identical payload anyway.
        """
        if not rows or self.readonly or self._failed:
            return
        try:
            self._connection.executemany(
                "INSERT OR IGNORE INTO entries"
                " (sig, kind, code_version, payload) VALUES (?, ?, ?, ?)",
                [
                    (sig_hash, kind, self.code_version, payload)
                    for kind, sig_hash, payload in rows
                ],
            )
            self._connection.commit()
        except sqlite3.Error as error:
            self._fail(f"write failed ({error})")

    def clear(self) -> int:
        """Delete every entry (all code versions); returns the count."""
        cursor = self._connection.execute("DELETE FROM entries")
        self._connection.commit()
        return cursor.rowcount

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Entry counts by kind and staleness, plus file-level facts."""
        per_kind = {"g": 0, "h": 0}
        total = 0
        current = 0
        for kind, entry_version, count in self._connection.execute(
            "SELECT kind, code_version, COUNT(*) FROM entries"
            " GROUP BY kind, code_version"
        ):
            total += count
            if entry_version == self.code_version:
                current += count
                if kind in per_kind:
                    per_kind[kind] += count
        try:
            size = os.path.getsize(self.path)
        except OSError:  # pragma: no cover - file vanished mid-run
            size = 0
        return {
            "path": self.path,
            "store_schema": STORE_SCHEMA_VERSION,
            "code_version": self.code_version,
            "entries": total,
            "current": current,
            "stale": total - current,
            "graph_entries": per_kind["g"],
            "hypergraph_entries": per_kind["h"],
            "size_bytes": size,
        }


def _warn_degraded(path: str, reason: str) -> None:
    warnings.warn(
        f"structure cache {path}: {reason}; continuing without the "
        "persistent store (cold run, results unaffected)",
        RuntimeWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------------
# The in-process layer
# ---------------------------------------------------------------------------


class StoreBackedStructureCache(StructureCache):
    """A :class:`StructureCache` LRU with a persistent second level.

    Lookups try the in-memory LRU first, then the store; store hits
    are promoted into the LRU (and counted in :attr:`store_hits`, the
    delta profiled runs report).  Fresh computations are recorded as
    pending rows — drained via :meth:`take_pending` by whichever
    process owns a writable handle — so read-only workers still
    contribute their discoveries through the parent's batch flush.

    A ``store`` of ``None`` (the degraded-open case) makes this class
    behave exactly like its base: transparent either way.
    """

    __slots__ = ("store", "store_hits", "_pending")

    def __init__(self, capacity: int, store: Optional[StructureStore]) -> None:
        super().__init__(capacity)
        self.store = store
        self.store_hits = 0
        self._pending: List[Tuple[str, str, str]] = []

    @property
    def enabled(self) -> bool:
        """Whether lookups can ever succeed (LRU capacity or a store)."""
        return self.capacity > 0 or self.store is not None

    def get(self, key: Tuple) -> Optional[object]:
        """LRU first, then the persistent store (promoting on hit)."""
        entry = super().get(key)
        if entry is not None or self.store is None:
            return entry
        stored = self.store.get(key)
        if stored is None:
            return None
        self.store_hits += 1
        # Promote via the base class: a store-served entry is not a
        # fresh discovery, so it must not re-enter the pending queue.
        StructureCache.put(self, key, stored)
        return stored

    def put(self, key: Tuple, entry: object) -> None:
        """Store in the LRU and queue the row for the next batch flush."""
        StructureCache.put(self, key, entry)
        if self.store is not None:
            self._pending.append(encode_entry(key, entry))

    def take_pending(self) -> List[Tuple[str, str, str]]:
        """Drain the pending encoded rows (ownership passes to caller)."""
        pending, self._pending = self._pending, []
        return pending

    def flush(self) -> None:
        """Write pending rows through a writable store, if any."""
        if self.store is not None and not self.store.readonly:
            self.store.put_many(self.take_pending())

    def close(self) -> None:
        """Flush and close the underlying store handle."""
        self.flush()
        if self.store is not None:
            self.store.close()
            self.store = None


# ---------------------------------------------------------------------------
# Driver helpers
# ---------------------------------------------------------------------------


def open_structure_cache(options: Any, *, readonly: bool = False) -> StructureCache:
    """The structural cache a driver (or pool worker) should use.

    Plain LRU when ``options.structure_cache_path`` is unset; otherwise
    a :class:`StoreBackedStructureCache` over the store at that path —
    opened read-only for workers, writable for serial runs and parents.
    A failed open degrades to the plain-LRU behavior.
    """
    path = getattr(options, "structure_cache_path", None)
    if path is None:
        return StructureCache(options.cache_size)
    store = StructureStore.open(path, readonly=readonly)
    return StoreBackedStructureCache(options.cache_size, store)


def pending_rows(cache: Optional[StructureCache]) -> List[Tuple[str, str, str]]:
    """Drain a cache's pending store rows ([] for plain caches)."""
    if isinstance(cache, StoreBackedStructureCache):
        return cache.take_pending()
    return []
