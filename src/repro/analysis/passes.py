"""Composable analyzer passes over a shared :class:`AnalysisContext`.

The corpus study used to be one hardcoded per-query monolith
(``_analyze_query`` → ``_analyze_structure`` → ``_analyze_paths``).
This module breaks it into five independent passes over the memoized
context, each owning a disjoint set of :class:`CorpusStudy` counters:

========== ==========================================================
``shallow``   Table 1/2 counters, Figure 1 histograms, §4.4
              subqueries and projection.
``paths``     Table 5 property-path taxonomy (runs on the *unstripped*
              query — SERVICE clauses carry paths too).
``operators`` Table 3 operator sets.
``fragments`` §5.2 fragment memberships and Figure 5 size histograms.
``structure`` Table 4 shapes + treewidth, §6.1 girth/constants,
              §6.2 hypertree widths — the expensive pass, backed by
              the structural-signature cache.
========== ==========================================================

Because every counter belongs to exactly one pass and queries are
folded in stream order, the default pipeline reproduces the
pre-refactor monolith **byte-identically** (property-tested), and any
subset of passes (``AnalysisOptions.metrics``) yields exactly the
counters those passes own.  Adding a metric is now a one-file change:
implement :class:`AnalysisPass`, register it, give it counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Protocol, Tuple

from ..logs.pipeline import ParsedQuery
from ..sparql import ast, walk
from ..sparql.serializer import serialize_path
from .context import DEFAULT_OPTIONS, AnalysisContext, AnalysisOptions, StructureCache
from .operators import TABLE3_ROWS
from .property_paths import classify_path
from .streaks import StreakAccumulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .study import CorpusStudy, DatasetStats

__all__ = [
    "NON_CTRACT_LIMIT",
    "PASS_NAMES",
    "SEQUENCE_PASS_NAMES",
    "AnalysisPass",
    "PassProfile",
    "SequencePass",
    "StreaksPass",
    "default_passes",
    "resolve_passes",
    "resolve_sequence_passes",
    "run_passes",
    "sequence_only_selection",
]

#: Cap on the number of non-Ctract path expressions kept for Table 5.
#: Overflow is counted in ``CorpusStudy.non_ctract_truncated`` instead
#: of being dropped silently.
NON_CTRACT_LIMIT = 100


class AnalysisPass(Protocol):
    """One measurement pass of the corpus study.

    A pass reads whatever derivations it needs from the context (they
    are memoized — asking twice is free) and increments only counters
    it owns.  Passes must not depend on other passes having run: any
    gating (Select/Ask only, AOF only, …) is re-derived from the
    context so that pass subsets stay correct.
    """

    #: Registry key, also used for ``--metrics`` and profiling rows.
    name: str

    def run(
        self, study: "CorpusStudy", stats: "DatasetStats", ctx: AnalysisContext
    ) -> None:
        """Measure one query into *study*/*stats*."""
        ...


class ShallowPass:
    """Keyword counts, triple histograms, subqueries, projection (§4)."""

    name = "shallow"

    def run(self, study, stats, ctx) -> None:
        """Count keywords, triples, subqueries and projection use."""
        features = ctx.features
        weight = ctx.weight
        study.query_count += weight
        stats.queries += weight
        stats.triple_sum += features.triple_count * weight
        # Sorted: ``keywords`` is a frozenset, so raw iteration order is
        # hash-seed dependent.  Tables render through KEYWORD_ORDER and
        # never noticed, but counter insertion order is serialized by
        # the JSON snapshots — it must not vary between processes.
        for keyword in sorted(features.keywords):
            study.keyword_counts[keyword] += weight
            stats.keyword_counts[keyword] += weight
        if not features.has_body:
            study.no_body_count += weight
        if features.uses_subquery:
            study.subquery_count += weight
        if features.uses_projection is True:
            study.projection_true += weight
            if ctx.query.query_type is ast.QueryType.ASK:
                study.ask_projection += weight
        elif features.uses_projection is None:
            study.projection_indeterminate += weight
        if features.is_select_or_ask():
            study.select_ask_count += weight
            stats.select_ask += weight
            stats.triple_hist[features.triple_count] += weight


class PathsPass:
    """Property-path taxonomy (Table 5, §7) over the unstripped query."""

    name = "paths"

    def run(self, study, stats, ctx) -> None:
        """Classify every property path of the unstripped query."""
        weight = ctx.weight
        for node in walk.iter_path_patterns(ctx.raw_query.pattern):
            study.property_path_total += weight
            classification = classify_path(node.path)
            if not classification.navigational:
                if classification.simple_form:
                    study.simple_path_forms[classification.simple_form] += weight
                continue
            study.path_types[classification.expression_type] += weight
            if classification.k is not None:
                study.path_type_k.setdefault(
                    classification.expression_type, []
                ).append(classification.k)
            if not classification.ctract:
                if len(study.non_ctract) < NON_CTRACT_LIMIT:
                    study.non_ctract.append(serialize_path(node.path))
                else:
                    study.non_ctract_truncated += 1


class OperatorsPass:
    """Operator-set classification of Select/Ask queries (Table 3)."""

    name = "operators"

    def run(self, study, stats, ctx) -> None:
        """Classify the query's operator set (Select/Ask only)."""
        if not ctx.features.is_select_or_ask():
            return
        weight = ctx.weight
        classification = ctx.operators
        if classification.pure:
            if classification.letters in TABLE3_ROWS:
                study.operator_sets[classification.letters] += weight
            else:
                study.operator_other_combination += weight
                study.operator_sets[classification.letters] += weight
        else:
            study.operator_other_features += weight


class FragmentsPass:
    """Fragment memberships and CQ-like size histograms (§5.2, Fig 5)."""

    name = "fragments"

    def run(self, study, stats, ctx) -> None:
        """Record fragment memberships and CQ-like size histograms."""
        if not ctx.features.is_select_or_ask():
            return
        fragments = ctx.fragments
        if not fragments.is_aof:
            return
        weight = ctx.weight
        study.aof_count += weight
        if fragments.is_well_designed:
            study.well_designed_count += weight
            if (
                fragments.has_simple_filters
                and fragments.interface_width is not None
                and fragments.interface_width > 1
            ):
                study.wide_interface_count += weight
        if fragments.is_cq:
            study.cq_count += weight
        if fragments.is_cqf:
            study.cqf_count += weight
        if fragments.is_cqof:
            study.cqof_count += weight

        triples = ctx.features.triple_count
        if triples >= 1:
            if fragments.is_cq:
                study.cq_sizes[triples] += weight
            if fragments.is_cqf:
                study.cqf_sizes[triples] += weight
            if fragments.is_cqof:
                study.cqof_sizes[triples] += weight


class StructurePass:
    """Deep structure: shapes, treewidth, girth, constants, hypertree
    widths (Table 4, §6).  The expensive pass — backed by the
    structural-signature cache on the context."""

    name = "structure"

    def run(self, study, stats, ctx) -> None:
        """Measure shapes, treewidth, girth and hypertree widths."""
        if not ctx.features.is_select_or_ask():
            return
        fragments = ctx.fragments
        if not fragments.is_aof:
            return
        weight = ctx.weight
        if ctx.predicate_variable:
            if fragments.is_cqof:
                study.predicate_variable_cqof += weight
                result = ctx.hypertree_result()
                study.hypertree_widths[result.width] += weight
                study.decomposition_nodes[result.node_count] += weight
            return
        if not (fragments.is_cq or fragments.is_cqf or fragments.is_cqof):
            return
        graph = ctx.graph()
        if graph.node_count() > ctx.options.shape_node_limit:
            study.shape_limit_skipped += weight
            return
        result = ctx.structure_result()
        memberships = result.profile.as_dict()
        for fragment, member in (
            ("CQ", fragments.is_cq),
            ("CQF", fragments.is_cqf),
            ("CQOF", fragments.is_cqof),
        ):
            if not member:
                continue
            study.shape_totals[fragment] += weight
            for shape, holds in memberships.items():
                if holds:
                    study.shape_counts[fragment][shape] += weight
            study.treewidth_counts[fragment][result.width] += weight
        if fragments.is_cq and result.profile.single_edge:
            study.single_edge_cq += weight
            if result.uses_constants:
                study.single_edge_cq_with_constants += weight
        if result.profile.shortest_cycle is not None and fragments.is_cqof:
            study.girth_hist[result.profile.shortest_cycle] += weight


class SequencePass(Protocol):
    """A measurement over the *ordered* query stream (paper §8).

    Per-query passes see one memoized context at a time and may not
    depend on stream position; a sequence pass is the opposite kind: it
    consumes the raw entry stream in order, with bounded lookbehind,
    through a mergeable accumulator.  :meth:`start` creates the
    per-chunk accumulator; the drivers feed every entry of the chunk to
    ``accumulator.push`` and stitch chunk accumulators together with
    ``accumulator.merge`` in stream order, so sharded and streamed runs
    reproduce the serial scan exactly.

    Sequence passes run during *ingestion* (the ordered stream no
    longer exists after deduplication) and their results travel on
    ``LogShard.sequences`` → ``QueryLog.sequences`` →
    ``DatasetStats.streaks``.
    """

    #: Registry key, part of the ``--metrics`` vocabulary.
    name: str

    def start(self, options: AnalysisOptions) -> StreakAccumulator:
        """A fresh accumulator for one chunk of the ordered stream."""
        ...


class StreaksPass:
    """Streak detection (Table 6) as a mergeable sequence pass.

    Opt-in (``--metrics streaks``): the paper calls streak discovery
    "extremely resource-consuming", so it never rides along silently.
    """

    name = "streaks"

    def start(self, options: AnalysisOptions) -> StreakAccumulator:
        """A fresh accumulator with the run's window/threshold."""
        return StreakAccumulator(
            window=options.streak_window, threshold=options.streak_threshold
        )


#: The ordered default pipeline.  Order is documentation (it mirrors
#: the paper's sections); correctness does not depend on it because
#: passes own disjoint counters.
_REGISTRY: "Dict[str, AnalysisPass]" = {
    p.name: p
    for p in (ShallowPass(), PathsPass(), OperatorsPass(), FragmentsPass(), StructurePass())
}

#: Registry order, the vocabulary of ``--metrics``.
PASS_NAMES: Tuple[str, ...] = tuple(_REGISTRY)

#: Sequence passes, also selectable via ``--metrics`` — but opt-in:
#: ``metrics=None`` means every per-query pass and *no* sequence pass.
_SEQUENCE_REGISTRY: "Dict[str, SequencePass]" = {p.name: p for p in (StreaksPass(),)}

SEQUENCE_PASS_NAMES: Tuple[str, ...] = tuple(_SEQUENCE_REGISTRY)


def default_passes() -> Tuple[AnalysisPass, ...]:
    """The full default pipeline, in registry order."""
    return tuple(_REGISTRY.values())


def _check_known(metrics: Iterable[str]) -> set:
    requested = set(metrics)
    unknown = requested - set(PASS_NAMES) - set(SEQUENCE_PASS_NAMES)
    if unknown:
        raise ValueError(
            f"unknown metrics: {', '.join(sorted(unknown))} "
            f"(available: {', '.join(PASS_NAMES + SEQUENCE_PASS_NAMES)})"
        )
    return requested


def resolve_passes(metrics: Optional[Iterable[str]]) -> Tuple[AnalysisPass, ...]:
    """Resolve a ``--metrics`` selection to *per-query* pass instances.

    ``None`` (or selecting everything) is the default pipeline.  The
    selection is normalized to registry order so output never depends
    on how the user spelled it; unknown names raise ``ValueError``.
    Sequence-pass names (``streaks``) are accepted and skipped here —
    :func:`resolve_sequence_passes` is their half of the split.
    """
    if metrics is None:
        return default_passes()
    requested = _check_known(metrics)
    return tuple(_REGISTRY[name] for name in PASS_NAMES if name in requested)


def resolve_sequence_passes(
    metrics: Optional[Iterable[str]],
) -> Tuple[SequencePass, ...]:
    """The sequence passes a ``--metrics`` selection opts into.

    ``None`` — the default pipeline — selects none: sequence passes run
    only when named explicitly, because they scan the full ordered
    stream during ingestion.
    """
    if metrics is None:
        return ()
    requested = _check_known(metrics)
    return tuple(
        _SEQUENCE_REGISTRY[name]
        for name in SEQUENCE_PASS_NAMES
        if name in requested
    )


def sequence_only_selection(metrics: Optional[Iterable[str]]) -> bool:
    """Whether *metrics* selects sequence passes and nothing else.

    The auto-lean predicate: such a run needs only the raw ordered
    stream, so ingestion can skip parsing, deduplication and AST
    retention entirely (``AnalysisOptions.lean_ingestion``).  ``None``
    — the default pipeline — is per-query-only, hence ``False``.
    """
    if metrics is None:
        return False
    requested = _check_known(metrics)
    return bool(requested) and requested <= set(SEQUENCE_PASS_NAMES)


@dataclass
class PassProfile:
    """Per-pass wall time and structural-cache statistics.

    Mergeable like every other accumulator, so sharded profiled runs
    fold their per-chunk profiles in stream order.  Wall times are
    measurement noise by nature — the profile is deliberately excluded
    from :class:`CorpusStudy` equality.
    """

    seconds: Dict[str, float] = field(default_factory=dict)
    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Lookups served from the persistent structure store (a subset of
    #: ``cache_misses``: the in-memory LRU missed, the disk layer hit).
    store_hits: int = 0
    #: Chunk results that crossed the worker-pool boundary as
    #: serialized payloads (0 for in-process runs).
    chunks_shipped: int = 0
    #: Total pickled bytes of those shipped chunk results.
    shipped_bytes: int = 0
    #: Parent-side wall time spent merging partial shards/studies.
    merge_seconds: float = 0.0

    def merge(self, other: "PassProfile") -> "PassProfile":
        """Fold another profile's timings and cache stats into this one."""
        for name, elapsed in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.queries += other.queries
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.store_hits += other.store_hits
        self.chunks_shipped += other.chunks_shipped
        self.shipped_bytes += other.shipped_bytes
        self.merge_seconds += other.merge_seconds
        return self

    @property
    def total_seconds(self) -> float:
        """Total wall time across all passes."""
        return sum(self.seconds.values())

    @property
    def cache_hit_rate(self) -> float:
        """Structural-cache hit rate over all lookups (0.0 when none)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-native snapshot (see :mod:`.snapshot`)."""
        from .snapshot import profile_to_dict

        return profile_to_dict(self)

    @classmethod
    def from_dict(cls, data: object) -> "PassProfile":
        """Inverse of :meth:`to_dict`; raises
        :class:`~repro.exceptions.StudySnapshotError` on malformed input."""
        from .snapshot import profile_from_dict

        return profile_from_dict(data)


def run_passes(
    study: "CorpusStudy",
    stats: "DatasetStats",
    parsed: ParsedQuery,
    weight: int,
    *,
    passes: Optional[Tuple[AnalysisPass, ...]] = None,
    options: AnalysisOptions = DEFAULT_OPTIONS,
    cache: Optional[StructureCache] = None,
    profile: Optional[PassProfile] = None,
) -> None:
    """Run a pass pipeline over one query.

    The single entry point every driver (serial, chunked, worker
    process) funnels through: builds the memoized context, runs the
    passes in order, and — when *profile* is given — charges each
    pass's wall time to its name.
    """
    if passes is None:
        passes = resolve_passes(options.metrics)
    ctx = AnalysisContext(
        parsed, stats.name, weight, options=options, cache=cache
    )
    if profile is None:
        for analysis_pass in passes:
            analysis_pass.run(study, stats, ctx)
        return
    profile.queries += 1
    seconds = profile.seconds
    for analysis_pass in passes:
        started = perf_counter()
        analysis_pass.run(study, stats, ctx)
        seconds[analysis_pass.name] = (
            seconds.get(analysis_pass.name, 0.0) + perf_counter() - started
        )
