"""Streak detection: sequences of gradually-refined queries (paper §8).

A *streak* (window size w) is a sequence of queries q_{i1}, …, q_{ik}
from an ordered log such that consecutive members are at most w
positions apart and each member *matches* its predecessor: the two
queries are similar, and no query in between was similar to the
predecessor.

The paper's similarity test: strip namespace prefixes (everything
before the first SELECT / ASK / CONSTRUCT / DESCRIBE keyword), then
require normalized Levenshtein distance ≤ 0.25 — i.e. the queries are
at least 75% identical.

Levenshtein distance is computed with a banded dynamic program that
gives up as soon as the distance provably exceeds the threshold, which
is what makes streak detection feasible on day-sized logs (the paper
notes the discovery was "extremely resource-consuming"; the band is our
ablation-tested optimization).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "levenshtein",
    "strip_prefixes",
    "queries_similar",
    "Streak",
    "StreakDetector",
    "find_streaks",
    "streak_length_histogram",
    "STREAK_BUCKETS",
]

_BODY_START_RE = re.compile(r"\b(SELECT|ASK|CONSTRUCT|DESCRIBE)\b", re.IGNORECASE)

#: Table 6 row buckets: (low, high) inclusive; None = unbounded.
STREAK_BUCKETS: Tuple[Tuple[int, Optional[int]], ...] = (
    (1, 10), (11, 20), (21, 30), (31, 40), (41, 50),
    (51, 60), (61, 70), (71, 80), (81, 90), (91, 100),
    (101, None),
)


def strip_prefixes(query_text: str) -> str:
    """Drop everything before the first query-form keyword.

    Namespace prefixes introduce superficial similarity between
    otherwise unrelated queries; the paper removes them before
    measuring distance.
    """
    match = _BODY_START_RE.search(query_text)
    if match is None:
        return query_text
    return query_text[match.start():]


def levenshtein(
    a: str, b: str, max_distance: Optional[int] = None
) -> Optional[int]:
    """Levenshtein distance between *a* and *b*.

    When *max_distance* is given, uses a banded DP of width
    2·max_distance+1 and returns ``None`` as soon as the distance
    provably exceeds the bound — O(max_distance · len) instead of
    O(len²).
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    len_a, len_b = len(a), len(b)
    if max_distance is not None and len_b - len_a > max_distance:
        return None
    if max_distance is None:
        return _levenshtein_full(a, b)
    return _levenshtein_banded(a, b, max_distance)


def _levenshtein_full(a: str, b: str) -> int:
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[j] + 1,       # deletion
                    current[j - 1] + 1,    # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def _levenshtein_banded(a: str, b: str, k: int) -> Optional[int]:
    """Banded Levenshtein; assumes len(a) ≤ len(b) and len(b)-len(a) ≤ k.

    The band is stored in offset-indexed lists (index d represents
    column j = i + d - k of row i), which is several times faster than
    dict-keyed rows — the difference that makes day-log streak scans
    affordable (see the Levenshtein ablation bench).
    """
    len_a, len_b = len(a), len(b)
    if k == 0:
        return 0 if a == b else None
    infinity = k + 1
    width = 2 * k + 1
    previous = [infinity] * width
    for j in range(0, min(len_b, k) + 1):
        previous[j + k] = j
    for i in range(1, len_a + 1):
        current = [infinity] * width
        window_low = max(0, i - k)
        window_high = min(len_b, i + k)
        best_in_row = infinity
        char_a = a[i - 1]
        for j in range(window_low, window_high + 1):
            d = j - i + k
            if j == 0:
                value = i
            else:
                diagonal = previous[d]
                if char_a == b[j - 1]:
                    value = diagonal
                else:
                    up = previous[d + 1] if d + 1 < width else infinity
                    left = current[d - 1] if d >= 1 else infinity
                    value = (
                        diagonal if diagonal <= up and diagonal <= left
                        else (up if up <= left else left)
                    ) + 1
            current[d] = value
            if value < best_in_row:
                best_in_row = value
        if best_in_row > k:
            return None
        previous = current
    d_end = len_b - len_a + k
    distance = previous[d_end] if 0 <= d_end < width else infinity
    return distance if distance <= k else None


def queries_similar(
    text_a: str, text_b: str, threshold: float = 0.25
) -> bool:
    """The paper's similarity test (prefix-stripped, ≤ 25% edits)."""
    stripped_a = strip_prefixes(text_a)
    stripped_b = strip_prefixes(text_b)
    longest = max(len(stripped_a), len(stripped_b))
    if longest == 0:
        return True
    budget = int(longest * threshold)
    distance = levenshtein(stripped_a, stripped_b, max_distance=budget)
    return distance is not None


@dataclass
class Streak:
    """A maximal streak: member indices into the analyzed log."""

    indices: List[int] = field(default_factory=list)
    tail_text: str = ""
    tail_stripped: str = ""

    @property
    def length(self) -> int:
        return len(self.indices)

    @property
    def start(self) -> int:
        return self.indices[0]

    @property
    def end(self) -> int:
        return self.indices[-1]


class StreakDetector:
    """Online streak detection over an ordered query stream.

    Feed queries with :meth:`push`; finished streaks accumulate in
    :attr:`finished`.  Call :meth:`close` at end of stream.
    """

    def __init__(self, window: int = 30, threshold: float = 0.25) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.threshold = threshold
        self.finished: List[Streak] = []
        self._active: List[Streak] = []
        self._position = -1

    def push(self, query_text: str) -> None:
        self._position += 1
        position = self._position
        # Retire streaks that fell out of the window.
        still_active: List[Streak] = []
        for streak in self._active:
            if position - streak.end > self.window:
                self.finished.append(streak)
            else:
                still_active.append(streak)
        self._active = still_active

        stripped = strip_prefixes(query_text)
        extended = False
        for streak in self._active:
            if self._similar(streak.tail_stripped, stripped):
                streak.indices.append(position)
                streak.tail_text = query_text
                streak.tail_stripped = stripped
                extended = True
        if not extended:
            self._active.append(
                Streak(
                    indices=[position],
                    tail_text=query_text,
                    tail_stripped=stripped,
                )
            )

    def _similar(self, stripped_a: str, stripped_b: str) -> bool:
        if stripped_a == stripped_b:
            return True  # exact repeats are common in real logs
        longest = max(len(stripped_a), len(stripped_b))
        if longest == 0:
            return True
        budget = int(longest * self.threshold)
        return (
            levenshtein(stripped_a, stripped_b, max_distance=budget)
            is not None
        )

    def close(self) -> List[Streak]:
        self.finished.extend(self._active)
        self._active = []
        return self.finished


def find_streaks(
    queries: Iterable[str], window: int = 30, threshold: float = 0.25
) -> List[Streak]:
    """Detect all streaks in an ordered sequence of query texts."""
    detector = StreakDetector(window=window, threshold=threshold)
    for query_text in queries:
        detector.push(query_text)
    return detector.close()


def streak_length_histogram(
    streaks: Sequence[Streak],
) -> Dict[str, int]:
    """Bucket streak lengths into Table 6's rows."""
    histogram: Dict[str, int] = {}
    for low, high in STREAK_BUCKETS:
        label = f"{low}-{high}" if high is not None else f">{low - 1}"
        histogram[label] = 0
    for streak in streaks:
        for low, high in STREAK_BUCKETS:
            if streak.length >= low and (high is None or streak.length <= high):
                label = f"{low}-{high}" if high is not None else f">{low - 1}"
                histogram[label] += 1
                break
    return histogram
