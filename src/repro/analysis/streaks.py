"""Streak detection: sequences of gradually-refined queries (paper §8).

A *streak* (window size w) is a sequence of queries q_{i1}, …, q_{ik}
from an ordered log such that consecutive members are at most w
positions apart and each member *matches* its predecessor: the two
queries are similar, and no query in between was similar to the
predecessor.

The paper's similarity test: strip namespace prefixes (everything
before the first SELECT / ASK / CONSTRUCT / DESCRIBE keyword), then
require normalized Levenshtein distance ≤ 0.25 — i.e. the queries are
at least 75% identical.

The paper notes the discovery was "extremely resource-consuming"; this
kernel makes it affordable through a chain of *exact* accelerations,
each a provable bound on the edit distance (so every decision is
byte-identical to running the full dynamic program — property-tested
in ``tests/test_streak_prefilters.py``):

1. **equality** — exact repeats, the common case in real logs;
2. **length prefilter** — ``|len(a) − len(b)|`` is a lower bound on
   the distance; O(1);
3. **bag-of-characters prefilter** — the multiset surplus
   ``max(|bag(a)−bag(b)|, |bag(b)−bag(a)|)`` is a lower bound on the
   distance; O(alphabet) using character-frequency vectors cached on
   :class:`PreparedText`;
4. **common-affix accept** — after trimming the shared prefix and
   suffix (which leaves the distance unchanged), the longer remainder
   length is an *upper* bound on the distance: small enough means
   similar without any DP;
5. **banded DP** — the O(k·n) band that gives up as soon as the
   distance provably exceeds the threshold, now running on the trimmed
   remainders only.

See ``docs/PERFORMANCE.md`` for the measured effect of each stage and
:data:`SIMILARITY_COUNTERS` for per-process instrumentation.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BUCKET_LABELS",
    "DEFAULT_STREAK_THRESHOLD",
    "DEFAULT_STREAK_WINDOW",
    "SIMILARITY_COUNTERS",
    "STREAK_BUCKETS",
    "PreparedText",
    "SimilarityCounters",
    "Streak",
    "StreakAccumulator",
    "StreakDetector",
    "bag_distance_bound",
    "bucket_label",
    "find_streaks",
    "levenshtein",
    "prepared_similar",
    "queries_similar",
    "streak_length_histogram",
    "strip_prefixes",
    "stripped_similar",
]

_BODY_START_RE = re.compile(r"\b(SELECT|ASK|CONSTRUCT|DESCRIBE)\b", re.IGNORECASE)

#: The paper's streak parameters (§8): lookbehind window of 30 log
#: positions, normalized Levenshtein distance at most 25%.
DEFAULT_STREAK_WINDOW = 30
DEFAULT_STREAK_THRESHOLD = 0.25

#: Table 6 row buckets: (low, high) inclusive; None = unbounded.
STREAK_BUCKETS: Tuple[Tuple[int, Optional[int]], ...] = (
    (1, 10), (11, 20), (21, 30), (31, 40), (41, 50),
    (51, 60), (61, 70), (71, 80), (81, 90), (91, 100),
    (101, None),
)

#: Table 6 bucket labels, in row order ("1-10", …, ">100").
BUCKET_LABELS: Tuple[str, ...] = tuple(
    f"{low}-{high}" if high is not None else f">{low - 1}"
    for low, high in STREAK_BUCKETS
)


def bucket_label(length: int) -> str:
    """The Table 6 row a streak of *length* members falls into."""
    for (low, high), label in zip(STREAK_BUCKETS, BUCKET_LABELS):
        if length >= low and (high is None or length <= high):
            return label
    raise ValueError(f"streak length must be >= 1, got {length}")


def strip_prefixes(query_text: str) -> str:
    """Drop everything before the first query-form keyword.

    Namespace prefixes introduce superficial similarity between
    otherwise unrelated queries; the paper removes them before
    measuring distance.
    """
    match = _BODY_START_RE.search(query_text)
    if match is None:
        return query_text
    return query_text[match.start():]


def levenshtein(
    a: str, b: str, max_distance: Optional[int] = None
) -> Optional[int]:
    """Levenshtein distance between *a* and *b*.

    Computed with the Myers/Hyyrö bit-parallel algorithm: each text
    position costs a handful of arbitrary-precision integer operations
    on ``len(a)``-bit vectors, i.e. O(len_b · ⌈len_a/64⌉) machine words
    instead of the O(len²) cell-by-cell DP — the difference that makes
    day-log streak scans affordable (see the Levenshtein ablation
    bench, which keeps the older banded DP around as a measured
    comparison point).

    When *max_distance* is given, returns ``None`` if the distance
    exceeds the bound (after an O(1) length-difference rejection).
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    len_a, len_b = len(a), len(b)
    if max_distance is not None and len_b - len_a > max_distance:
        return None
    distance = len_b if len_a == 0 else _levenshtein_bitparallel(a, b)
    if max_distance is not None and distance > max_distance:
        return None
    return distance


def _levenshtein_bitparallel(a: str, b: str) -> int:
    """Exact Levenshtein distance via Myers' bit-vector algorithm.

    Requires *a* non-empty (callers handle the empty case).  The
    pattern *a* is encoded as per-character match masks; each character
    of *b* then updates the vertical positive/negative delta vectors
    with six bit operations on ``len(a)``-bit integers.  Python's
    arbitrary-precision ints hold the whole vector, so no 64-bit block
    chaining is needed.  Verified equal to the full DP in the property
    suite and the Levenshtein ablation bench.
    """
    length = len(a)
    mask = (1 << length) - 1
    last = 1 << (length - 1)
    match_masks: Dict[str, int] = {}
    bit = 1
    for char in a:
        match_masks[char] = match_masks.get(char, 0) | bit
        bit <<= 1
    positive = mask  # vertical delta +1 positions
    negative = 0  # vertical delta -1 positions
    score = length
    get = match_masks.get
    for char in b:
        matches = get(char, 0)
        diagonal = matches | negative
        horizontal_x = (((matches & positive) + positive) ^ positive) | matches
        h_positive = negative | (~(horizontal_x | positive) & mask)
        h_negative = positive & horizontal_x
        if h_positive & last:
            score += 1
        elif h_negative & last:
            score -= 1
        h_positive = ((h_positive << 1) | 1) & mask
        h_negative = (h_negative << 1) & mask
        positive = h_negative | (~(diagonal | h_positive) & mask)
        negative = h_positive & diagonal
    return score


def _levenshtein_full(a: str, b: str) -> int:
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[j] + 1,       # deletion
                    current[j - 1] + 1,    # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def _levenshtein_banded(a: str, b: str, k: int) -> Optional[int]:
    """Banded Levenshtein; assumes len(a) ≤ len(b) and len(b)-len(a) ≤ k.

    The band is stored in offset-indexed lists (index d represents
    column j = i + d - k of row i), which is several times faster than
    dict-keyed rows — the difference that makes day-log streak scans
    affordable (see the Levenshtein ablation bench).
    """
    len_a, len_b = len(a), len(b)
    if k == 0:
        return 0 if a == b else None
    infinity = k + 1
    width = 2 * k + 1
    previous = [infinity] * width
    for j in range(0, min(len_b, k) + 1):
        previous[j + k] = j
    for i in range(1, len_a + 1):
        current = [infinity] * width
        window_low = max(0, i - k)
        window_high = min(len_b, i + k)
        best_in_row = infinity
        char_a = a[i - 1]
        for j in range(window_low, window_high + 1):
            d = j - i + k
            if j == 0:
                value = i
            else:
                diagonal = previous[d]
                if char_a == b[j - 1]:
                    value = diagonal
                else:
                    up = previous[d + 1] if d + 1 < width else infinity
                    left = current[d - 1] if d >= 1 else infinity
                    value = (
                        diagonal if diagonal <= up and diagonal <= left
                        else (up if up <= left else left)
                    ) + 1
            current[d] = value
            if value < best_in_row:
                best_in_row = value
        if best_in_row > k:
            return None
        previous = current
    d_end = len_b - len_a + k
    distance = previous[d_end] if 0 <= d_end < width else infinity
    return distance if distance <= k else None


@dataclass
class SimilarityCounters:
    """Per-process instrumentation of the similarity filter chain.

    Every field counts decisions since the last :meth:`reset`; the
    module-level :data:`SIMILARITY_COUNTERS` instance is what the
    kernel increments.  Counters never influence results — they exist
    so benchmarks (and ``BENCH_passes.json``) can report how much work
    each prefilter stage absorbed before the banded DP ran.
    """

    comparisons: int = 0  #: similarity decisions requested
    equal_accepts: int = 0  #: settled by exact text equality
    length_rejects: int = 0  #: settled by the length-difference bound
    bag_rejects: int = 0  #: settled by the bag-of-chars bound
    trim_accepts: int = 0  #: settled by the common-affix upper bound
    dp_runs: int = 0  #: pairs that actually reached the banded DP
    memo_hits: int = 0  #: decisions reused from a per-push memo
    boundary_hits: int = 0  #: decisions reused from a worker boundary table

    def reset(self) -> None:
        """Zero every counter (start of a measured run)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot, JSON-ready for bench payloads."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def delta_since(self, before: Dict[str, int]) -> Dict[str, int]:
        """Per-field increments since a :meth:`to_dict` snapshot.

        The transactional capture the sharded drivers use: snapshot,
        process a chunk, take the delta, :meth:`restore` the snapshot,
        and ship the delta to the parent — which :meth:`add`\\ s it
        unconditionally.  In-process and pool-worker chunks then count
        exactly once each, wherever they ran.
        """
        return {
            name: getattr(self, name) - before[name]
            for name in self.__dataclass_fields__
        }

    def restore(self, values: Dict[str, int]) -> None:
        """Reset every counter to a :meth:`to_dict` snapshot."""
        for name in self.__dataclass_fields__:
            setattr(self, name, values[name])

    def add(self, delta: Dict[str, int]) -> None:
        """Fold a shipped per-chunk delta into this process's counters."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + delta.get(name, 0))

    @property
    def dp_skip_rate(self) -> float:
        """Fraction of comparisons settled without running the DP."""
        if not self.comparisons:
            return 0.0
        return 1.0 - self.dp_runs / self.comparisons


#: The kernel's live instrumentation (per process; workers each have
#: their own copy, so parent-side numbers cover the serial remainder).
SIMILARITY_COUNTERS = SimilarityCounters()


class PreparedText:
    """A prefix-stripped query text with cached similarity features.

    Streak scanning compares each incoming query against up to
    ``window`` chain tails; preparing the text once (stripping, length,
    lazily a character-frequency :class:`~collections.Counter`) makes
    every one of those comparisons O(1)/O(alphabet) until the rare pair
    that genuinely needs the DP.
    """

    __slots__ = ("text", "length", "_freq")

    def __init__(self, stripped: str) -> None:
        self.text = stripped
        self.length = len(stripped)
        self._freq: Optional[Counter] = None

    @classmethod
    def from_raw(cls, query_text: str) -> "PreparedText":
        """Prepare a raw (unstripped) query text."""
        return cls(strip_prefixes(query_text))

    @property
    def freq(self) -> Counter:
        """Character-frequency vector, computed once per text."""
        freq = self._freq
        if freq is None:
            freq = self._freq = Counter(self.text)
        return freq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedText({self.text!r})"


def bag_distance_bound(freq_a: Counter, freq_b: Counter) -> int:
    """Lower bound on Levenshtein distance from character frequencies.

    ``max`` of the two multiset surpluses: every character *a* has in
    excess of *b* must be deleted or substituted away, and vice versa,
    while one edit operation fixes at most one unit of either surplus.
    Property-tested against the exact distance in
    ``tests/test_streak_prefilters.py``.
    """
    excess_a = 0
    excess_b = 0
    for char, count in freq_a.items():
        difference = count - freq_b.get(char, 0)
        if difference > 0:
            excess_a += difference
    for char, count in freq_b.items():
        difference = count - freq_a.get(char, 0)
        if difference > 0:
            excess_b += difference
    return excess_a if excess_a > excess_b else excess_b


def _strip_common_affixes(a: str, b: str) -> Tuple[str, str]:
    """Trim the shared prefix and suffix; Levenshtein-invariant.

    An optimal alignment never edits inside a common prefix or suffix,
    so ``levenshtein(a, b) == levenshtein(*_strip_common_affixes(a, b))``
    while the DP band shrinks to the differing core (measured ~5× fewer
    cells on real day logs).
    """
    limit = min(len(a), len(b))
    prefix = 0
    while prefix < limit and a[prefix] == b[prefix]:
        prefix += 1
    suffix = 0
    limit -= prefix
    while suffix < limit and a[len(a) - 1 - suffix] == b[len(b) - 1 - suffix]:
        suffix += 1
    return a[prefix:len(a) - suffix], b[prefix:len(b) - suffix]


def prepared_similar(
    a: PreparedText,
    b: PreparedText,
    threshold: float = DEFAULT_STREAK_THRESHOLD,
) -> bool:
    """The similarity test on prepared texts — the kernel's hot path.

    Decision-identical to :func:`stripped_similar` on the underlying
    texts (property-tested); the filter chain documented in the module
    docstring only changes *how fast* the answer arrives.
    """
    counters = SIMILARITY_COUNTERS
    counters.comparisons += 1
    if a.text == b.text:
        counters.equal_accepts += 1
        return True  # exact repeats are common in real logs
    longest = a.length if a.length > b.length else b.length
    budget = int(longest * threshold)
    difference = a.length - b.length
    if (difference if difference > 0 else -difference) > budget:
        counters.length_rejects += 1
        return False
    if bag_distance_bound(a.freq, b.freq) > budget:
        counters.bag_rejects += 1
        return False
    trimmed_a, trimmed_b = _strip_common_affixes(a.text, b.text)
    if max(len(trimmed_a), len(trimmed_b)) <= budget:
        # Distance ≤ max remainder length (delete one side, insert the
        # other — an upper bound), already within budget: similar.
        counters.trim_accepts += 1
        return True
    counters.dp_runs += 1
    return levenshtein(trimmed_a, trimmed_b, max_distance=budget) is not None


def stripped_similar(
    stripped_a: str, stripped_b: str, threshold: float = DEFAULT_STREAK_THRESHOLD
) -> bool:
    """The similarity test on already prefix-stripped texts.

    The single definition shared by :class:`StreakDetector` and
    :class:`StreakAccumulator` — both must agree on every pair, or
    sharded detection could diverge from the serial scan.  Delegates to
    :func:`prepared_similar`; callers comparing one text against many
    should prepare it once instead.
    """
    return prepared_similar(
        PreparedText(stripped_a), PreparedText(stripped_b), threshold
    )


def _similar_reference(
    stripped_a: str, stripped_b: str, threshold: float = DEFAULT_STREAK_THRESHOLD
) -> bool:
    """The pre-prefilter kernel, kept verbatim as the correctness oracle.

    ``tests/test_streak_prefilters.py`` property-tests
    :func:`stripped_similar` against this on arbitrary pairs — the
    filter chain must never flip a decision.
    """
    if stripped_a == stripped_b:
        return True
    longest = max(len(stripped_a), len(stripped_b))
    if longest == 0:
        return True
    budget = int(longest * threshold)
    a, b = stripped_a, stripped_b
    if len(a) > len(b):
        a, b = b, a
    if len(b) - len(a) > budget:
        return False
    return _levenshtein_banded(a, b, budget) is not None


def queries_similar(
    text_a: str, text_b: str, threshold: float = DEFAULT_STREAK_THRESHOLD
) -> bool:
    """The paper's similarity test (prefix-stripped, ≤ 25% edits)."""
    return stripped_similar(
        strip_prefixes(text_a), strip_prefixes(text_b), threshold
    )


@dataclass
class Streak:
    """A maximal streak: member indices into the analyzed log."""

    indices: List[int] = field(default_factory=list)
    tail_text: str = ""
    tail_stripped: str = ""

    @property
    def length(self) -> int:
        """Number of member queries."""
        return len(self.indices)

    @property
    def start(self) -> int:
        """Stream position of the first member."""
        return self.indices[0]

    @property
    def end(self) -> int:
        """Stream position of the last member."""
        return self.indices[-1]


class StreakDetector:
    """Online streak detection over an ordered query stream.

    Feed queries with :meth:`push`; finished streaks accumulate in
    :attr:`finished`.  Call :meth:`close` at end of stream.
    """

    def __init__(self, window: int = 30, threshold: float = 0.25) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.threshold = threshold
        self.finished: List[Streak] = []
        self._active: List[Tuple[Streak, PreparedText]] = []
        self._position = -1

    def push(self, query_text: str) -> None:
        """Feed the next query of the ordered stream."""
        self._position += 1
        position = self._position
        # Retire streaks that fell out of the window.
        still_active: List[Tuple[Streak, PreparedText]] = []
        for entry in self._active:
            if position - entry[0].end > self.window:
                self.finished.append(entry[0])
            else:
                still_active.append(entry)
        self._active = still_active

        prepared = PreparedText.from_raw(query_text)
        # Distinct active streaks often share a tail (the query that
        # extended them all); decide once per distinct tail text.
        decisions: Dict[str, bool] = {}
        extended = False
        for index, (streak, tail) in enumerate(self._active):
            key = tail.text
            if key in decisions:
                verdict = decisions[key]
                SIMILARITY_COUNTERS.memo_hits += 1
            else:
                verdict = prepared_similar(tail, prepared, self.threshold)
                decisions[key] = verdict
            if verdict:
                streak.indices.append(position)
                streak.tail_text = query_text
                streak.tail_stripped = prepared.text
                self._active[index] = (streak, prepared)
                extended = True
        if not extended:
            self._active.append(
                (
                    Streak(
                        indices=[position],
                        tail_text=query_text,
                        tail_stripped=prepared.text,
                    ),
                    prepared,
                )
            )

    def _similar(self, stripped_a: str, stripped_b: str) -> bool:
        return stripped_similar(stripped_a, stripped_b, self.threshold)

    def close(self) -> List[Streak]:
        """Flush still-active streaks and return every streak found."""
        self.finished.extend(streak for streak, _ in self._active)
        self._active = []
        return self.finished


def find_streaks(
    queries: Iterable[str], window: int = 30, threshold: float = 0.25
) -> List[Streak]:
    """Detect all streaks in an ordered sequence of query texts."""
    detector = StreakDetector(window=window, threshold=threshold)
    for query_text in queries:
        detector.push(query_text)
    return detector.close()


def streak_length_histogram(
    streaks: Sequence[Streak],
) -> Dict[str, int]:
    """Bucket streak lengths into Table 6's rows."""
    histogram: Dict[str, int] = {label: 0 for label in BUCKET_LABELS}
    for streak in streaks:
        histogram[bucket_label(streak.length)] += 1
    return histogram


# ---------------------------------------------------------------------------
# Mergeable, order-aware streak accumulation (the sharded Table 6 path)
# ---------------------------------------------------------------------------


@dataclass
class _Chain:
    """One streak under construction inside a :class:`StreakAccumulator`.

    The lean representation: instead of every member's stream position
    (which grows linearly with the streak), a chain keeps only what
    merging can ever ask for — the founding position ``start`` (the
    canonical sort key and the head-founded test), the member count
    ``length``, the last member's position ``end`` (window reach
    arithmetic), ``tail``, the prefix-stripped text of the last member
    (the only text similarity ever compares against), and
    ``head_positions``, the members that fall in the accumulator's head
    region (``< window``).  Member positions are strictly increasing,
    so the head-region members are exactly the first
    ``len(head_positions)`` members: a head position's index in
    ``head_positions`` *is* its member index, which is all the stitch
    needs to absorb a suffix.  State per chain is O(window), however
    long the streak runs.
    """

    start: int
    length: int
    end: int
    head_positions: List[int]
    tail: str
    #: Cached similarity features of ``tail``; derived state, excluded
    #: from equality and snapshots, rebuilt lazily after a reload.
    prepared: Optional[PreparedText] = field(
        default=None, compare=False, repr=False
    )

    def tail_prepared(self) -> PreparedText:
        """The prepared form of ``tail``, (re)built if stale or absent."""
        prepared = self.prepared
        if prepared is None or prepared.text != self.tail:
            prepared = self.prepared = PreparedText(self.tail)
        return prepared

    def copy(self) -> "_Chain":
        """An independent deep copy."""
        return _Chain(
            start=self.start,
            length=self.length,
            end=self.end,
            head_positions=list(self.head_positions),
            tail=self.tail,
            prepared=self.prepared,
        )


class StreakAccumulator:
    """Mergeable per-chunk state of streak detection (§8, Table 6).

    Streak discovery is the one analysis of the paper that depends on
    *stream order* with a bounded lookbehind window, which is exactly
    what a naive chunk split destroys: a streak may span chunk
    boundaries, and whether a query founds a new streak depends on
    whether it extended one from the previous chunk.  This accumulator
    makes the computation mergeable anyway, by keeping three things per
    chunk:

    * ``head`` — the prefix-stripped texts of the chunk's first
      ``window`` queries.  An open streak arriving from the left can
      only be extended by a query within ``window`` positions of its
      tail, so the head is the complete set of candidates a left-hand
      neighbour will ever need to inspect.
    * ``chains`` — explicit records for every streak that is still
      *open* (its tail is within ``window`` of the chunk end, so queries
      to the right may extend it) or was *founded in the head region*
      (a left-hand neighbour's open streak may absorb it: had the
      streams been one, its founder would have extended that streak
      instead of founding a new one).
    * ``closed`` — a length histogram of every other streak, which no
      amount of stitching on either side can change.

    :meth:`merge` stitches a right-hand accumulator on: each of our open
    chains scans the right head for its first similar query within
    window reach; on a hit it absorbs the suffix of whatever chain that
    query belongs to (all chains containing a query share one suffix
    from it, because extending sets the same tail), and deletes the
    absorbed chain if that query *founded* it.  The result is exactly —
    chain records, tails, histogram, bytes — what the serial detector
    produces over the concatenated stream, property-tested in
    ``tests/test_streak_accumulator.py``.

    Canonical form (load-bearing for byte-identical snapshots):
    ``chains`` is kept sorted by founding position, which is also the
    serial founding order.

    Memory bound: retained chains are lean — ``(start, length, end,
    tail, head-region positions)``, O(window) each — so a pathological
    stream that is one endless streak (e.g. a bot repeating a single
    query) holds that one chain open at *constant* size while its
    ``length`` grows.  Total accumulator state is O(window²) however
    long the stream runs, which is what lets watch-mode checkpoints
    (``repro watch``) carry open-chain records as their streak resume
    token (``tests/test_watch.py`` pins the bound).
    """

    __slots__ = (
        "window", "threshold", "length", "head", "chains", "closed", "_boundary"
    )

    def __init__(
        self,
        window: int = DEFAULT_STREAK_WINDOW,
        threshold: float = DEFAULT_STREAK_THRESHOLD,
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.threshold = threshold
        self.length = 0  # queries consumed so far
        self.head: List[str] = []
        self.chains: List[_Chain] = []
        self.closed: Counter = Counter()  # streak length -> count
        #: Optional worker-precomputed decision table for the *next*
        #: chunk's head: (our chain tail, their stripped head text) ->
        #: similar?  Derived state — see :meth:`precompute_boundary`.
        self._boundary: Optional[Dict[Tuple[str, str], bool]] = None

    # -- feeding ---------------------------------------------------------

    def push(self, query_text: str) -> None:
        """Feed the next query of the ordered stream."""
        prepared = PreparedText.from_raw(query_text)
        position = self.length
        self.length += 1
        if position < self.window:
            self.head.append(prepared.text)
        # Retire chains that fell out of the window (mirrors
        # StreakDetector.push); head-founded ones stay as records
        # because a future left-hand merge may still absorb them.
        # Chains sharing a tail (extended by the same query) share one
        # decision, so memoize per distinct tail text within the push.
        decisions: Dict[str, bool] = {}
        extended = False
        for chain in self.chains:
            gap = position - chain.end
            if gap > self.window:
                continue  # retired (kept or already counted below)
            key = chain.tail
            if key in decisions:
                verdict = decisions[key]
                SIMILARITY_COUNTERS.memo_hits += 1
            else:
                verdict = prepared_similar(
                    chain.tail_prepared(), prepared, self.threshold
                )
                decisions[key] = verdict
            if verdict:
                if position < self.window:
                    chain.head_positions.append(position)
                chain.length += 1
                chain.end = position
                chain.tail = prepared.text
                chain.prepared = prepared
                extended = True
        self._sweep_closed()
        if not extended:
            self.chains.append(
                _Chain(
                    start=position,
                    length=1,
                    end=position,
                    head_positions=[position] if position < self.window else [],
                    tail=prepared.text,
                    prepared=prepared,
                )
            )

    def _sweep_closed(self) -> None:
        """Move dead, non-head-founded chains into the histogram.

        A chain is dead once the next stream position (``self.length``)
        is already more than ``window`` past its tail — no future query
        can extend it — and immutable under stitching unless it was
        founded in the head region.  Sweeping eagerly keeps the state
        canonical: a serially-fed accumulator equals the stitched one at
        every chunk boundary, not just after a final normalization.
        """
        kept: List[_Chain] = []
        for chain in self.chains:
            if self.length - chain.end > self.window and chain.start >= self.window:
                self.closed[chain.length] += 1
            else:
                kept.append(chain)
        self.chains = kept

    # -- merging ---------------------------------------------------------

    def copy(self) -> "StreakAccumulator":
        """An independent deep copy (merge mutates the left side)."""
        duplicate = StreakAccumulator(self.window, self.threshold)
        duplicate.length = self.length
        duplicate.head = list(self.head)
        duplicate.chains = [chain.copy() for chain in self.chains]
        duplicate.closed = Counter(self.closed)
        duplicate._boundary = (
            dict(self._boundary) if self._boundary is not None else None
        )
        return duplicate

    def precompute_boundary(self, lookahead: Sequence[str]) -> None:
        """Precompute the decisions a right-hand stitch will ask for.

        *lookahead* is the raw text of the first ``window`` queries of
        the stream slice that directly follows ours — i.e. the next
        chunk's ``head``.  A worker that already holds both can score
        every (open chain tail, head text) pair the parent's
        :meth:`merge` scan will evaluate, moving that work off the
        serial merge path.  The table is consulted with an exact
        fallback on miss (chains stitched through from *earlier* chunks
        carry tails this worker never saw), so byte-identity is trivial:
        the same :func:`prepared_similar` computes both sides.

        The scan order and early-``break`` mirror :meth:`merge` exactly,
        which also means no decision is computed that the merge could
        not ask for.  Reach arithmetic is frame-independent: at merge
        time the gap to a chain is ``merged_length - shifted_end``,
        equal to our local ``length - end``.
        """
        table: Dict[Tuple[str, str], bool] = {}
        prepared_head = [
            PreparedText.from_raw(text) for text in lookahead[: self.window]
        ]
        for chain in self.chains:
            reach = self.window - (self.length - chain.end)
            if reach < 0:
                continue  # retired: the stitch will skip it too
            tail = chain.tail_prepared()
            for prepared in prepared_head[: reach + 1]:
                key = (tail.text, prepared.text)
                if key in table:
                    verdict = table[key]
                else:
                    verdict = table[key] = prepared_similar(
                        tail, prepared, self.threshold
                    )
                if verdict:
                    break
        self._boundary = table

    def merge(self, other: "StreakAccumulator") -> "StreakAccumulator":
        """Stitch *other* — the accumulator of the stream slice that
        directly follows ours — onto this one, in place.

        Exactness argument: once a query q extends a streak, the streak's
        tail and end equal q's, so every chain containing q evolves
        identically from q on.  An open chain from the left therefore
        only needs its *first* similar in-window query on the right —
        from there its future is the recorded suffix of q's chain.  And
        a query founds a chain iff it extended nothing, so the only
        right-hand chains the stitch can delete are those founded by a
        query that now extends an incoming chain.
        """
        if other.window != self.window or other.threshold != self.threshold:
            raise ValueError(
                "cannot merge streak accumulators with different "
                f"window/threshold: ({self.window}, {self.threshold}) vs "
                f"({other.window}, {other.threshold})"
            )
        offset = self.length
        window = self.window

        # Which right-hand chain does each head position belong to, and
        # at which member index?  All chains containing a position share
        # its suffix, so the first (canonical order) is as good as any.
        # Head positions are the first members of their chain (positions
        # strictly increase), so the index within ``head_positions`` is
        # the member index.
        position_index: Dict[int, Tuple[_Chain, int]] = {}
        for chain in other.chains:
            for index, position in enumerate(chain.head_positions):
                position_index.setdefault(position, (chain, index))

        # Scan the right head once per incoming open chain.  Workers
        # precompute these decisions against their successor's head
        # (see precompute_boundary); the table is authoritative on hit —
        # same prepared_similar, same inputs — and misses (tails
        # stitched through from earlier chunks) fall back to computing
        # the decision here.
        boundary = self._boundary
        absorbed_founders = set()
        extensions: List[Tuple[_Chain, int]] = []
        prepared_head: List[Optional[PreparedText]] = [None] * len(other.head)
        for chain in self.chains:
            reach = window - (offset - chain.end)
            if reach < 0:
                continue  # retired: no future query can reach it
            tail = chain.tail
            tail_prepared: Optional[PreparedText] = None
            for position, stripped in enumerate(other.head[: reach + 1]):
                if boundary is not None and (tail, stripped) in boundary:
                    verdict = boundary[(tail, stripped)]
                    SIMILARITY_COUNTERS.boundary_hits += 1
                else:
                    if tail_prepared is None:
                        tail_prepared = chain.tail_prepared()
                    candidate = prepared_head[position]
                    if candidate is None:
                        candidate = prepared_head[position] = PreparedText(stripped)
                    verdict = prepared_similar(
                        tail_prepared, candidate, self.threshold
                    )
                if verdict:
                    extensions.append((chain, position))
                    break
        for chain, position in extensions:
            try:
                source, index = position_index[position]
            except KeyError:  # pragma: no cover - accumulator invariant
                raise RuntimeError(
                    f"streak stitch: head position {position} belongs to "
                    "no recorded chain"
                ) from None
            if index == 0:
                # *source* was founded by this query: a query founds a
                # chain iff it extended nothing, so a founding position
                # appears in exactly one chain, at member index 0.
                absorbed_founders.add(position)
            # Absorb the suffix of *source* from member *index* on: the
            # absorbed members shifted by *offset* land in our head
            # region only if they were right-hand head positions that
            # shift below the window.
            chain.length += source.length - index
            chain.end = source.end + offset
            if offset < window:
                chain.head_positions.extend(
                    member + offset
                    for member in source.head_positions[index:]
                    if member + offset < window
                )
            chain.tail = source.tail
            chain.prepared = source.prepared

        # Assemble: surviving right-hand chains shift into our frame.
        merged = list(self.chains)
        for chain in other.chains:
            if chain.start in absorbed_founders:
                continue
            merged.append(
                _Chain(
                    start=chain.start + offset,
                    length=chain.length,
                    end=chain.end + offset,
                    head_positions=[
                        member + offset
                        for member in chain.head_positions
                        if member + offset < window
                    ],
                    tail=chain.tail,
                    prepared=chain.prepared,
                )
            )
        self.closed.update(other.closed)
        self.length += other.length
        if offset < window:
            self.head.extend(other.head[: window - offset])
        # The next stitch scans the head of *other*'s successor; adopt
        # its precomputed decisions (None if it had none).
        self._boundary = other._boundary

        # Canonicalize: founding order, and close everything that is
        # now neither open nor head-founded.
        merged.sort(key=lambda chain: chain.start)
        kept: List[_Chain] = []
        for chain in merged:
            open_ = self.length - chain.end <= window
            if open_ or chain.start < window:
                kept.append(chain)
            else:
                self.closed[chain.length] += 1
        self.chains = kept
        return self

    # -- results ---------------------------------------------------------

    @property
    def streak_count(self) -> int:
        """Total streaks detected so far (open ones count: the serial
        detector's ``close()`` flushes them as finished)."""
        return len(self.chains) + sum(self.closed.values())

    @property
    def longest(self) -> int:
        """Length of the longest streak (0 on an empty stream)."""
        longest_open = max((chain.length for chain in self.chains), default=0)
        longest_closed = max(
            (length for length, count in self.closed.items() if count), default=0
        )
        return max(longest_open, longest_closed)

    def length_histogram(self) -> Dict[str, int]:
        """The Table 6 row histogram, every bucket present in row order.

        Equals ``streak_length_histogram(find_streaks(stream))`` for the
        stream this accumulator (or its merged parts) consumed.
        """
        histogram: Dict[str, int] = {label: 0 for label in BUCKET_LABELS}
        for length, count in self.closed.items():
            histogram[bucket_label(length)] += count
        for chain in self.chains:
            histogram[bucket_label(chain.length)] += 1
        return histogram

    # -- equality / snapshots -------------------------------------------

    def _key(self) -> Tuple[Any, ...]:
        return (
            self.window,
            self.threshold,
            self.length,
            tuple(self.head),
            tuple(
                (c.start, c.length, c.end, tuple(c.head_positions), c.tail)
                for c in self.chains
            ),
            frozenset(self.closed.items()),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreakAccumulator):
            return NotImplemented
        return self._key() == other._key()

    def __repr__(self) -> str:
        return (
            f"StreakAccumulator(window={self.window}, "
            f"threshold={self.threshold}, length={self.length}, "
            f"streaks={self.streak_count})"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native snapshot in canonical form (sorted ``closed``
        pairs, chains in founding order) — serial and stitched runs of
        the same stream serialize to identical bytes.  The inverse
        lives in :mod:`repro.analysis.snapshot`."""
        return {
            "window": self.window,
            "threshold": self.threshold,
            "length": self.length,
            "head": list(self.head),
            "chains": [
                {
                    "start": chain.start,
                    "length": chain.length,
                    "end": chain.end,
                    "head_positions": list(chain.head_positions),
                    "tail": chain.tail,
                }
                for chain in self.chains
            ],
            "closed": [
                [length, count] for length, count in sorted(self.closed.items())
            ],
        }
