"""Streak detection: sequences of gradually-refined queries (paper §8).

A *streak* (window size w) is a sequence of queries q_{i1}, …, q_{ik}
from an ordered log such that consecutive members are at most w
positions apart and each member *matches* its predecessor: the two
queries are similar, and no query in between was similar to the
predecessor.

The paper's similarity test: strip namespace prefixes (everything
before the first SELECT / ASK / CONSTRUCT / DESCRIBE keyword), then
require normalized Levenshtein distance ≤ 0.25 — i.e. the queries are
at least 75% identical.

Levenshtein distance is computed with a banded dynamic program that
gives up as soon as the distance provably exceeds the threshold, which
is what makes streak detection feasible on day-sized logs (the paper
notes the discovery was "extremely resource-consuming"; the band is our
ablation-tested optimization).
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BUCKET_LABELS",
    "DEFAULT_STREAK_THRESHOLD",
    "DEFAULT_STREAK_WINDOW",
    "STREAK_BUCKETS",
    "Streak",
    "StreakAccumulator",
    "StreakDetector",
    "bucket_label",
    "find_streaks",
    "levenshtein",
    "queries_similar",
    "streak_length_histogram",
    "strip_prefixes",
    "stripped_similar",
]

_BODY_START_RE = re.compile(r"\b(SELECT|ASK|CONSTRUCT|DESCRIBE)\b", re.IGNORECASE)

#: The paper's streak parameters (§8): lookbehind window of 30 log
#: positions, normalized Levenshtein distance at most 25%.
DEFAULT_STREAK_WINDOW = 30
DEFAULT_STREAK_THRESHOLD = 0.25

#: Table 6 row buckets: (low, high) inclusive; None = unbounded.
STREAK_BUCKETS: Tuple[Tuple[int, Optional[int]], ...] = (
    (1, 10), (11, 20), (21, 30), (31, 40), (41, 50),
    (51, 60), (61, 70), (71, 80), (81, 90), (91, 100),
    (101, None),
)

#: Table 6 bucket labels, in row order ("1-10", …, ">100").
BUCKET_LABELS: Tuple[str, ...] = tuple(
    f"{low}-{high}" if high is not None else f">{low - 1}"
    for low, high in STREAK_BUCKETS
)


def bucket_label(length: int) -> str:
    """The Table 6 row a streak of *length* members falls into."""
    for (low, high), label in zip(STREAK_BUCKETS, BUCKET_LABELS):
        if length >= low and (high is None or length <= high):
            return label
    raise ValueError(f"streak length must be >= 1, got {length}")


def strip_prefixes(query_text: str) -> str:
    """Drop everything before the first query-form keyword.

    Namespace prefixes introduce superficial similarity between
    otherwise unrelated queries; the paper removes them before
    measuring distance.
    """
    match = _BODY_START_RE.search(query_text)
    if match is None:
        return query_text
    return query_text[match.start():]


def levenshtein(
    a: str, b: str, max_distance: Optional[int] = None
) -> Optional[int]:
    """Levenshtein distance between *a* and *b*.

    When *max_distance* is given, uses a banded DP of width
    2·max_distance+1 and returns ``None`` as soon as the distance
    provably exceeds the bound — O(max_distance · len) instead of
    O(len²).
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    len_a, len_b = len(a), len(b)
    if max_distance is not None and len_b - len_a > max_distance:
        return None
    if max_distance is None:
        return _levenshtein_full(a, b)
    return _levenshtein_banded(a, b, max_distance)


def _levenshtein_full(a: str, b: str) -> int:
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[j] + 1,       # deletion
                    current[j - 1] + 1,    # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def _levenshtein_banded(a: str, b: str, k: int) -> Optional[int]:
    """Banded Levenshtein; assumes len(a) ≤ len(b) and len(b)-len(a) ≤ k.

    The band is stored in offset-indexed lists (index d represents
    column j = i + d - k of row i), which is several times faster than
    dict-keyed rows — the difference that makes day-log streak scans
    affordable (see the Levenshtein ablation bench).
    """
    len_a, len_b = len(a), len(b)
    if k == 0:
        return 0 if a == b else None
    infinity = k + 1
    width = 2 * k + 1
    previous = [infinity] * width
    for j in range(0, min(len_b, k) + 1):
        previous[j + k] = j
    for i in range(1, len_a + 1):
        current = [infinity] * width
        window_low = max(0, i - k)
        window_high = min(len_b, i + k)
        best_in_row = infinity
        char_a = a[i - 1]
        for j in range(window_low, window_high + 1):
            d = j - i + k
            if j == 0:
                value = i
            else:
                diagonal = previous[d]
                if char_a == b[j - 1]:
                    value = diagonal
                else:
                    up = previous[d + 1] if d + 1 < width else infinity
                    left = current[d - 1] if d >= 1 else infinity
                    value = (
                        diagonal if diagonal <= up and diagonal <= left
                        else (up if up <= left else left)
                    ) + 1
            current[d] = value
            if value < best_in_row:
                best_in_row = value
        if best_in_row > k:
            return None
        previous = current
    d_end = len_b - len_a + k
    distance = previous[d_end] if 0 <= d_end < width else infinity
    return distance if distance <= k else None


def stripped_similar(
    stripped_a: str, stripped_b: str, threshold: float = DEFAULT_STREAK_THRESHOLD
) -> bool:
    """The similarity test on already prefix-stripped texts.

    The single definition shared by :class:`StreakDetector` and
    :class:`StreakAccumulator` — both must agree on every pair, or
    sharded detection could diverge from the serial scan.
    """
    if stripped_a == stripped_b:
        return True  # exact repeats are common in real logs
    longest = max(len(stripped_a), len(stripped_b))
    if longest == 0:
        return True
    budget = int(longest * threshold)
    return levenshtein(stripped_a, stripped_b, max_distance=budget) is not None


def queries_similar(
    text_a: str, text_b: str, threshold: float = DEFAULT_STREAK_THRESHOLD
) -> bool:
    """The paper's similarity test (prefix-stripped, ≤ 25% edits)."""
    return stripped_similar(
        strip_prefixes(text_a), strip_prefixes(text_b), threshold
    )


@dataclass
class Streak:
    """A maximal streak: member indices into the analyzed log."""

    indices: List[int] = field(default_factory=list)
    tail_text: str = ""
    tail_stripped: str = ""

    @property
    def length(self) -> int:
        """Number of member queries."""
        return len(self.indices)

    @property
    def start(self) -> int:
        """Stream position of the first member."""
        return self.indices[0]

    @property
    def end(self) -> int:
        """Stream position of the last member."""
        return self.indices[-1]


class StreakDetector:
    """Online streak detection over an ordered query stream.

    Feed queries with :meth:`push`; finished streaks accumulate in
    :attr:`finished`.  Call :meth:`close` at end of stream.
    """

    def __init__(self, window: int = 30, threshold: float = 0.25) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.threshold = threshold
        self.finished: List[Streak] = []
        self._active: List[Streak] = []
        self._position = -1

    def push(self, query_text: str) -> None:
        """Feed the next query of the ordered stream."""
        self._position += 1
        position = self._position
        # Retire streaks that fell out of the window.
        still_active: List[Streak] = []
        for streak in self._active:
            if position - streak.end > self.window:
                self.finished.append(streak)
            else:
                still_active.append(streak)
        self._active = still_active

        stripped = strip_prefixes(query_text)
        extended = False
        for streak in self._active:
            if self._similar(streak.tail_stripped, stripped):
                streak.indices.append(position)
                streak.tail_text = query_text
                streak.tail_stripped = stripped
                extended = True
        if not extended:
            self._active.append(
                Streak(
                    indices=[position],
                    tail_text=query_text,
                    tail_stripped=stripped,
                )
            )

    def _similar(self, stripped_a: str, stripped_b: str) -> bool:
        return stripped_similar(stripped_a, stripped_b, self.threshold)

    def close(self) -> List[Streak]:
        """Flush still-active streaks and return every streak found."""
        self.finished.extend(self._active)
        self._active = []
        return self.finished


def find_streaks(
    queries: Iterable[str], window: int = 30, threshold: float = 0.25
) -> List[Streak]:
    """Detect all streaks in an ordered sequence of query texts."""
    detector = StreakDetector(window=window, threshold=threshold)
    for query_text in queries:
        detector.push(query_text)
    return detector.close()


def streak_length_histogram(
    streaks: Sequence[Streak],
) -> Dict[str, int]:
    """Bucket streak lengths into Table 6's rows."""
    histogram: Dict[str, int] = {label: 0 for label in BUCKET_LABELS}
    for streak in streaks:
        histogram[bucket_label(streak.length)] += 1
    return histogram


# ---------------------------------------------------------------------------
# Mergeable, order-aware streak accumulation (the sharded Table 6 path)
# ---------------------------------------------------------------------------


@dataclass
class _Chain:
    """One streak under construction inside a :class:`StreakAccumulator`.

    ``positions`` are stream positions of the members (strictly
    increasing; the first one is the founder), ``tail`` is the
    prefix-stripped text of the last member — the only text similarity
    ever compares against.
    """

    positions: List[int]
    tail: str

    @property
    def start(self) -> int:
        """Stream position of the founder (first member)."""
        return self.positions[0]

    @property
    def end(self) -> int:
        """Stream position of the last member."""
        return self.positions[-1]

    @property
    def length(self) -> int:
        """Number of member queries."""
        return len(self.positions)

    def copy(self) -> "_Chain":
        """An independent deep copy."""
        return _Chain(positions=list(self.positions), tail=self.tail)


class StreakAccumulator:
    """Mergeable per-chunk state of streak detection (§8, Table 6).

    Streak discovery is the one analysis of the paper that depends on
    *stream order* with a bounded lookbehind window, which is exactly
    what a naive chunk split destroys: a streak may span chunk
    boundaries, and whether a query founds a new streak depends on
    whether it extended one from the previous chunk.  This accumulator
    makes the computation mergeable anyway, by keeping three things per
    chunk:

    * ``head`` — the prefix-stripped texts of the chunk's first
      ``window`` queries.  An open streak arriving from the left can
      only be extended by a query within ``window`` positions of its
      tail, so the head is the complete set of candidates a left-hand
      neighbour will ever need to inspect.
    * ``chains`` — explicit records for every streak that is still
      *open* (its tail is within ``window`` of the chunk end, so queries
      to the right may extend it) or was *founded in the head region*
      (a left-hand neighbour's open streak may absorb it: had the
      streams been one, its founder would have extended that streak
      instead of founding a new one).
    * ``closed`` — a length histogram of every other streak, which no
      amount of stitching on either side can change.

    :meth:`merge` stitches a right-hand accumulator on: each of our open
    chains scans the right head for its first similar query within
    window reach; on a hit it absorbs the suffix of whatever chain that
    query belongs to (all chains containing a query share one suffix
    from it, because extending sets the same tail), and deletes the
    absorbed chain if that query *founded* it.  The result is exactly —
    member positions, tails, histogram, bytes — what the serial
    detector produces over the concatenated stream, property-tested in
    ``tests/test_streak_accumulator.py``.

    Canonical form (load-bearing for byte-identical snapshots):
    ``chains`` is kept sorted by founding position, which is also the
    serial founding order.

    Memory bound: retained chains store their full member-position
    lists — the same O(streak length) the serial detector's
    :class:`Streak` records cost, and negligible for real refinement
    streaks (the paper's longest was 169).  A pathological stream that
    is one endless streak (e.g. a bot repeating a single query) keeps
    that one chain open, and state grows linearly with it; if that
    ever matters, the lean representation (length/end/tail plus only
    head-region positions) is a snapshot-schema change, not an
    algorithm change.
    """

    __slots__ = ("window", "threshold", "length", "head", "chains", "closed")

    def __init__(
        self,
        window: int = DEFAULT_STREAK_WINDOW,
        threshold: float = DEFAULT_STREAK_THRESHOLD,
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.threshold = threshold
        self.length = 0  # queries consumed so far
        self.head: List[str] = []
        self.chains: List[_Chain] = []
        self.closed: Counter = Counter()  # streak length -> count

    # -- feeding ---------------------------------------------------------

    def push(self, query_text: str) -> None:
        """Feed the next query of the ordered stream."""
        stripped = strip_prefixes(query_text)
        position = self.length
        self.length += 1
        if position < self.window:
            self.head.append(stripped)
        # Retire chains that fell out of the window (mirrors
        # StreakDetector.push); head-founded ones stay as records
        # because a future left-hand merge may still absorb them.
        extended = False
        for chain in self.chains:
            gap = position - chain.end
            if gap > self.window:
                continue  # retired (kept or already counted below)
            if stripped_similar(chain.tail, stripped, self.threshold):
                chain.positions.append(position)
                chain.tail = stripped
                extended = True
        self._sweep_closed()
        if not extended:
            self.chains.append(_Chain(positions=[position], tail=stripped))

    def _sweep_closed(self) -> None:
        """Move dead, non-head-founded chains into the histogram.

        A chain is dead once the next stream position (``self.length``)
        is already more than ``window`` past its tail — no future query
        can extend it — and immutable under stitching unless it was
        founded in the head region.  Sweeping eagerly keeps the state
        canonical: a serially-fed accumulator equals the stitched one at
        every chunk boundary, not just after a final normalization.
        """
        kept: List[_Chain] = []
        for chain in self.chains:
            if self.length - chain.end > self.window and chain.start >= self.window:
                self.closed[chain.length] += 1
            else:
                kept.append(chain)
        self.chains = kept

    # -- merging ---------------------------------------------------------

    def copy(self) -> "StreakAccumulator":
        """An independent deep copy (merge mutates the left side)."""
        duplicate = StreakAccumulator(self.window, self.threshold)
        duplicate.length = self.length
        duplicate.head = list(self.head)
        duplicate.chains = [chain.copy() for chain in self.chains]
        duplicate.closed = Counter(self.closed)
        return duplicate

    def merge(self, other: "StreakAccumulator") -> "StreakAccumulator":
        """Stitch *other* — the accumulator of the stream slice that
        directly follows ours — onto this one, in place.

        Exactness argument: once a query q extends a streak, the streak's
        tail and end equal q's, so every chain containing q evolves
        identically from q on.  An open chain from the left therefore
        only needs its *first* similar in-window query on the right —
        from there its future is the recorded suffix of q's chain.  And
        a query founds a chain iff it extended nothing, so the only
        right-hand chains the stitch can delete are those founded by a
        query that now extends an incoming chain.
        """
        if other.window != self.window or other.threshold != self.threshold:
            raise ValueError(
                "cannot merge streak accumulators with different "
                f"window/threshold: ({self.window}, {self.threshold}) vs "
                f"({other.window}, {other.threshold})"
            )
        offset = self.length
        window = self.window

        # Which right-hand chain does each head position belong to, and
        # at which member index?  All chains containing a position share
        # its suffix, so the first (canonical order) is as good as any.
        position_index: Dict[int, Tuple[_Chain, int]] = {}
        for chain in other.chains:
            for index, position in enumerate(chain.positions):
                if position >= window:
                    break
                position_index.setdefault(position, (chain, index))

        # Scan the right head once per incoming open chain.
        absorbed_founders = set()
        extensions: List[Tuple[_Chain, int]] = []
        for chain in self.chains:
            reach = window - (offset - chain.end)
            if reach < 0:
                continue  # retired: no future query can reach it
            for position, stripped in enumerate(other.head[: reach + 1]):
                if stripped_similar(chain.tail, stripped, self.threshold):
                    extensions.append((chain, position))
                    break
        for chain, position in extensions:
            try:
                source, index = position_index[position]
            except KeyError:  # pragma: no cover - accumulator invariant
                raise RuntimeError(
                    f"streak stitch: head position {position} belongs to "
                    "no recorded chain"
                ) from None
            if index == 0:
                # *source* was founded by this query: a query founds a
                # chain iff it extended nothing, so a founding position
                # appears in exactly one chain, at member index 0.
                absorbed_founders.add(position)
            chain.positions.extend(
                member + offset for member in source.positions[index:]
            )
            chain.tail = source.tail

        # Assemble: surviving right-hand chains shift into our frame.
        merged = list(self.chains)
        for chain in other.chains:
            if chain.start in absorbed_founders:
                continue
            merged.append(
                _Chain(
                    positions=[member + offset for member in chain.positions],
                    tail=chain.tail,
                )
            )
        self.closed.update(other.closed)
        self.length += other.length
        if offset < window:
            self.head.extend(other.head[: window - offset])

        # Canonicalize: founding order, and close everything that is
        # now neither open nor head-founded.
        merged.sort(key=lambda chain: chain.start)
        kept: List[_Chain] = []
        for chain in merged:
            open_ = self.length - chain.end <= window
            if open_ or chain.start < window:
                kept.append(chain)
            else:
                self.closed[chain.length] += 1
        self.chains = kept
        return self

    # -- results ---------------------------------------------------------

    @property
    def streak_count(self) -> int:
        """Total streaks detected so far (open ones count: the serial
        detector's ``close()`` flushes them as finished)."""
        return len(self.chains) + sum(self.closed.values())

    @property
    def longest(self) -> int:
        """Length of the longest streak (0 on an empty stream)."""
        longest_open = max((chain.length for chain in self.chains), default=0)
        longest_closed = max(
            (length for length, count in self.closed.items() if count), default=0
        )
        return max(longest_open, longest_closed)

    def length_histogram(self) -> Dict[str, int]:
        """The Table 6 row histogram, every bucket present in row order.

        Equals ``streak_length_histogram(find_streaks(stream))`` for the
        stream this accumulator (or its merged parts) consumed.
        """
        histogram: Dict[str, int] = {label: 0 for label in BUCKET_LABELS}
        for length, count in self.closed.items():
            histogram[bucket_label(length)] += count
        for chain in self.chains:
            histogram[bucket_label(chain.length)] += 1
        return histogram

    # -- equality / snapshots -------------------------------------------

    def _key(self) -> Tuple[Any, ...]:
        return (
            self.window,
            self.threshold,
            self.length,
            tuple(self.head),
            tuple((tuple(c.positions), c.tail) for c in self.chains),
            frozenset(self.closed.items()),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreakAccumulator):
            return NotImplemented
        return self._key() == other._key()

    def __repr__(self) -> str:
        return (
            f"StreakAccumulator(window={self.window}, "
            f"threshold={self.threshold}, length={self.length}, "
            f"streaks={self.streak_count})"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native snapshot in canonical form (sorted ``closed``
        pairs, chains in founding order) — serial and stitched runs of
        the same stream serialize to identical bytes.  The inverse
        lives in :mod:`repro.analysis.snapshot`."""
        return {
            "window": self.window,
            "threshold": self.threshold,
            "length": self.length,
            "head": list(self.head),
            "chains": [
                {"positions": list(chain.positions), "tail": chain.tail}
                for chain in self.chains
            ],
            "closed": [
                [length, count] for length, count in sorted(self.closed.items())
            ],
        }
