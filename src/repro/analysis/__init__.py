"""Query-log analytics: the paper's core contribution."""

from .canonical import (
    Hypergraph,
    canonical_graph,
    canonical_hypergraph,
    collect_triples,
    has_predicate_variable,
)
from .context import (
    AnalysisContext,
    AnalysisOptions,
    StructureCache,
    graph_signature,
    hypergraph_signature,
)
from .features import QueryFeatures, detect_projection, extract_features
from .fragments import (
    FragmentProfile,
    classify_fragments,
    is_aof,
    is_cpf,
    is_cq,
    is_cqf,
    is_simple_filter,
)
from .graphutil import Multigraph
from .hypertree import HypertreeResult, hypertree_width
from .operators import (
    Operator,
    OperatorClassification,
    classify_operators,
)
from .parallel import (
    build_query_log_parallel,
    build_query_logs_parallel,
    iter_chunks,
    measure_chunk,
    merge_shards,
    merge_studies,
    study_corpus_parallel,
)
from .passes import (
    PASS_NAMES,
    AnalysisPass,
    PassProfile,
    default_passes,
    resolve_passes,
    run_passes,
)
from .property_paths import (
    PathClassification,
    classify_path,
    in_ctract,
    is_navigational,
)
from .shapes import ShapeProfile, classify_shape
from .streak_metrics import StreakMetrics, compute_streak_metrics, keyword_evolution
from .streaks import (
    Streak,
    StreakDetector,
    find_streaks,
    levenshtein,
    queries_similar,
    streak_length_histogram,
    strip_prefixes,
)
from .treewidth import TreewidthResult, treewidth, treewidth_at_most_2
from .welldesigned import (
    PatternTreeNode,
    build_pattern_tree,
    interface_width,
    is_well_designed,
    to_binary_algebra,
    tree_is_variable_connected,
)

__all__ = [
    "AnalysisContext",
    "AnalysisOptions",
    "AnalysisPass",
    "PASS_NAMES",
    "PassProfile",
    "StructureCache",
    "default_passes",
    "graph_signature",
    "hypergraph_signature",
    "resolve_passes",
    "run_passes",
    "StreakMetrics",
    "compute_streak_metrics",
    "keyword_evolution",
    "Hypergraph",
    "canonical_graph",
    "canonical_hypergraph",
    "collect_triples",
    "has_predicate_variable",
    "QueryFeatures",
    "detect_projection",
    "extract_features",
    "FragmentProfile",
    "classify_fragments",
    "is_aof",
    "is_cpf",
    "is_cq",
    "is_cqf",
    "is_simple_filter",
    "Multigraph",
    "HypertreeResult",
    "hypertree_width",
    "Operator",
    "OperatorClassification",
    "classify_operators",
    "build_query_log_parallel",
    "build_query_logs_parallel",
    "iter_chunks",
    "measure_chunk",
    "merge_shards",
    "merge_studies",
    "study_corpus_parallel",
    "PathClassification",
    "classify_path",
    "in_ctract",
    "is_navigational",
    "ShapeProfile",
    "classify_shape",
    "Streak",
    "StreakDetector",
    "find_streaks",
    "levenshtein",
    "queries_similar",
    "streak_length_histogram",
    "strip_prefixes",
    "TreewidthResult",
    "treewidth",
    "treewidth_at_most_2",
    "PatternTreeNode",
    "build_pattern_tree",
    "interface_width",
    "is_well_designed",
    "to_binary_algebra",
    "tree_is_variable_connected",
]
