"""Operator-set classification of query bodies (paper §4.3, Table 3).

For each Select/Ask query the paper asks: which operators from
O = {And, Filter, Opt, Graph, Union} does the body use — and does it
use *only* constructs built from those operators (plus triple
patterns)?  Queries whose body uses anything else (property paths,
Bind, Minus, subqueries, …) fall into an "other features" bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Tuple

from ..sparql import ast, walk

__all__ = [
    "Operator",
    "OperatorClassification",
    "classify_operators",
    "OPERATOR_LETTERS",
    "TABLE3_ROWS",
]


class Operator(str, Enum):
    """The five operators of the paper's set O, with their letters."""

    AND = "A"
    FILTER = "F"
    OPT = "O"
    GRAPH = "G"
    UNION = "U"


OPERATOR_LETTERS = {
    Operator.AND: "A",
    Operator.FILTER: "F",
    Operator.OPT: "O",
    Operator.GRAPH: "G",
    Operator.UNION: "U",
}

#: The operator sets that get their own row in Table 3, in paper order.
#: (frozensets of letters; "none" is the empty set.)
TABLE3_ROWS: Tuple[FrozenSet[str], ...] = (
    frozenset(),
    frozenset("F"),
    frozenset("A"),
    frozenset("AF"),
    frozenset("O"),
    frozenset("OF"),
    frozenset("AO"),
    frozenset("AOF"),
    frozenset("G"),
    frozenset("U"),
    frozenset("UF"),
    frozenset("AU"),
    frozenset("AUF"),
    frozenset("AOUF"),
)


@dataclass(frozen=True)
class OperatorClassification:
    """Result of classifying one query body.

    *operators* is the set of O-operators present; *pure* is True when
    the body uses only triple patterns and operators from O.  A query
    counts toward a Table 3 row only when it is pure.
    """

    operators: FrozenSet[Operator]
    pure: bool

    @property
    def letters(self) -> FrozenSet[str]:
        """The operator set as paper letters (A, F, O, U, G)."""
        return frozenset(OPERATOR_LETTERS[op] for op in self.operators)

    def is_cpf(self) -> bool:
        """Conjunctive pattern with filters (Definition 4.1): pure and
        uses only And/Filter (or nothing)."""
        return self.pure and self.operators <= {Operator.AND, Operator.FILTER}

    def in_cpf_plus(self, extra: Operator) -> bool:
        """Pure, uses *extra*, and otherwise only And/Filter (the
        paper's CPF+O / CPF+G / CPF+U increments)."""
        return (
            self.pure
            and extra in self.operators
            and self.operators <= {Operator.AND, Operator.FILTER, extra}
        )


def classify_operators(query: ast.Query) -> OperatorClassification:
    """Classify the body of *query* (Table 3 semantics).

    A body-less query is pure with an empty operator set ("none" in
    Table 3 includes queries without a body).
    """
    operators = set()
    pure = True
    for node in walk.iter_patterns(query.pattern, enter_subqueries=False):
        if isinstance(node, ast.TriplePattern):
            continue
        if isinstance(node, ast.GroupPattern):
            if _joins(node):
                operators.add(Operator.AND)
        elif isinstance(node, ast.FilterPattern):
            operators.add(Operator.FILTER)
            if _filter_has_exotic_parts(node.expression):
                pure = False
        elif isinstance(node, ast.OptionalPattern):
            operators.add(Operator.OPT)
        elif isinstance(node, ast.GraphGraphPattern):
            operators.add(Operator.GRAPH)
        elif isinstance(node, ast.UnionPattern):
            operators.add(Operator.UNION)
        else:
            # PathPattern, BindPattern, ValuesPattern, MinusPattern,
            # ServicePattern, SubSelectPattern: outside of O.
            pure = False
    return OperatorClassification(frozenset(operators), pure)


def _joins(group: ast.GroupPattern) -> bool:
    non_filter = 0
    for element in group.elements:
        if not isinstance(element, ast.FilterPattern):
            non_filter += 1
            if non_filter >= 2:
                return True
    return False


def _filter_has_exotic_parts(expression: ast.Expression) -> bool:
    """EXISTS / NOT EXISTS inside a filter embeds patterns, which takes
    the query outside the plain O-operator fragment."""
    for node in walk.iter_expressions(expression):
        if isinstance(node, ast.ExistsExpression):
            return True
        if isinstance(node, ast.Aggregate):
            return True
    return False
