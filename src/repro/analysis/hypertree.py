"""Generalized hypertree width for small widths (paper §6.2).

The paper runs detkdecomp on the canonical hypergraphs of the 6.96M
CQOF queries with predicate variables and finds width 1 everywhere
except 86 queries of width 2 and eight of width 3, with decompositions
of at most ten nodes.  This module reproduces that measurement:

* width 1 is equivalent to α-acyclicity, decided by GYO reduction;
* width ≤ k (k = 2, 3, …) is decided by the standard top-down
  decomposition search: pick a bag that is the union of ≤ k hyperedges
  covering the connector set, split the remaining hyperedges into
  connected components, and recurse — memoized on (component,
  connector), which is exactly det-k-decomp's strategy.

The search also returns the number of decomposition nodes, which §6.2
uses as a proxy for caching opportunities in trie joins.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..rdf.terms import Term
from .canonical import Hypergraph

__all__ = ["hypertree_width", "HypertreeResult", "decompose"]

Edge = FrozenSet[Term]


class HypertreeResult:
    """Width, exactness flag, and decomposition node count."""

    __slots__ = ("width", "exact", "node_count")

    def __init__(self, width: int, exact: bool, node_count: int) -> None:
        self.width = width
        self.exact = exact
        self.node_count = node_count

    def __repr__(self) -> str:
        marker = "" if self.exact else "<="
        return f"HypertreeResult({marker}{self.width}, nodes={self.node_count})"


def hypertree_width(
    hypergraph: Hypergraph, max_width: int = 4, search_limit: int = 64
) -> HypertreeResult:
    """Compute the (generalized) hypertree width of *hypergraph*.

    Returns exact results up to *max_width*; if no decomposition of
    width ≤ max_width exists (or the hypergraph has more than
    *search_limit* distinct edges), falls back to the trivial upper
    bound (one bag covering everything) with ``exact=False``.
    """
    edges = [frozenset(edge) for edge in hypergraph.distinct_edges()]
    if not edges:
        return HypertreeResult(0, True, 0)
    if hypergraph.is_acyclic():
        return HypertreeResult(1, True, len(edges))
    if len(edges) > search_limit:
        return HypertreeResult(len(edges), False, 1)
    for k in range(2, max_width + 1):
        node_count = _decompose_width(edges, k)
        if node_count is not None:
            return HypertreeResult(k, True, node_count)
    return HypertreeResult(len(edges), False, 1)


def decompose(hypergraph: Hypergraph, k: int) -> Optional[int]:
    """Return the node count of some width-≤k decomposition, or None."""
    edges = [frozenset(edge) for edge in hypergraph.distinct_edges()]
    if not edges:
        return 0
    return _decompose_width(edges, k)


def _decompose_width(edges: List[Edge], k: int) -> Optional[int]:
    all_edges = tuple(edges)
    memo: Dict[Tuple[FrozenSet[Edge], FrozenSet[Term]], Optional[int]] = {}
    component = frozenset(edges)
    return _solve(component, frozenset(), all_edges, k, memo)


def _solve(
    component: FrozenSet[Edge],
    connector: FrozenSet[Term],
    all_edges: Tuple[Edge, ...],
    k: int,
    memo: Dict,
) -> Optional[int]:
    """Smallest node count of a width-≤k decomposition of *component*
    whose root bag covers *connector*; None if none exists."""
    key = (component, connector)
    if key in memo:
        return memo[key]
    memo[key] = None  # cycle guard; overwritten below on success
    component_nodes: Set[Term] = set().union(*component) | set(connector)
    # Candidate bags: unions of ≤ k edges that touch the component.
    relevant = [
        edge for edge in all_edges if edge & component_nodes
    ]
    best: Optional[int] = None
    for size in range(1, k + 1):
        for chosen in combinations(relevant, size):
            bag: Set[Term] = set().union(*chosen)
            if not connector <= bag:
                continue
            remaining = [edge for edge in component if not edge <= bag]
            if not remaining:
                cost = 1
            else:
                cost = _recurse_components(
                    remaining, bag, all_edges, k, memo
                )
                if cost is None:
                    continue
                cost += 1
            if best is None or cost < best:
                best = cost
        if best is not None and size == 1:
            # A single-edge bag already worked; wider bags cannot give a
            # *smaller* width, only (possibly) fewer nodes — keep
            # searching size 1 results only, for speed.
            break
    memo[key] = best
    return best


def _recurse_components(
    remaining: List[Edge],
    bag: Set[Term],
    all_edges: Tuple[Edge, ...],
    k: int,
    memo: Dict,
) -> Optional[int]:
    """Split *remaining* edges into [bag]-components and solve each."""
    components = _split_components(remaining, bag)
    total = 0
    for sub_edges in components:
        sub_nodes: Set[Term] = set().union(*sub_edges)
        connector = frozenset(sub_nodes & bag)
        cost = _solve(frozenset(sub_edges), connector, all_edges, k, memo)
        if cost is None:
            return None
        total += cost
    return total


def _split_components(edges: List[Edge], bag: Set[Term]) -> List[List[Edge]]:
    """Connected components of the edges when nodes in *bag* are cut."""
    unassigned = list(edges)
    components: List[List[Edge]] = []
    while unassigned:
        seed = unassigned.pop()
        component = [seed]
        frontier = set(seed) - bag
        changed = True
        while changed:
            changed = False
            still_unassigned = []
            for edge in unassigned:
                if set(edge) & frontier:
                    component.append(edge)
                    frontier |= set(edge) - bag
                    changed = True
                else:
                    still_unassigned.append(edge)
            unassigned = still_unassigned
        components.append(component)
    return components
