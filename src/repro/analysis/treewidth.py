"""Exact treewidth for small graphs (paper §6.2).

The paper reports that all CQ-like queries have treewidth ≤ 2 except a
single treewidth-3 query (Figure 7).  We therefore need *decisions* for
small widths on small graphs:

* width ≤ 1 — the graph is a forest;
* width ≤ 2 — the classical reduction: repeatedly delete vertices of
  degree ≤ 1 and contract vertices of degree 2 (a graph has treewidth
  ≤ 2 iff this empties it — equivalently, iff it has no K4 minor);
* general k — elimination-order search with memoization, feasible for
  the handful of residual graphs (canonical graphs of real queries have
  at most a few dozen nodes once the tw ≤ 2 sieve has run).

Loops and edge multiplicities never affect treewidth, so everything
operates on the simplified graph.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from .graphutil import Multigraph

__all__ = ["treewidth", "treewidth_at_most_2", "TreewidthResult"]


class TreewidthResult:
    """Treewidth value plus whether it is exact or an upper bound."""

    __slots__ = ("width", "exact")

    def __init__(self, width: int, exact: bool) -> None:
        self.width = width
        self.exact = exact

    def __repr__(self) -> str:
        marker = "" if self.exact else "<="
        return f"TreewidthResult({marker}{self.width})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TreewidthResult):
            return self.width == other.width and self.exact == other.exact
        return NotImplemented


def _simple_adjacency(graph: Multigraph) -> Dict[object, Set[object]]:
    adjacency = graph.simple_graph()
    for node, neighbors in adjacency.items():
        neighbors.discard(node)
    return adjacency


def treewidth_at_most_2(graph: Multigraph) -> bool:
    """Decide tw(G) ≤ 2 by degree-≤2 reduction (no-K4-minor test)."""
    adjacency = _simple_adjacency(graph)
    queue = [node for node, nbrs in adjacency.items() if len(nbrs) <= 2]
    while queue:
        node = queue.pop()
        neighbors = adjacency.get(node)
        if neighbors is None or len(neighbors) > 2:
            continue
        if len(neighbors) == 2:
            a, b = neighbors
            adjacency[a].add(b)
            adjacency[b].add(a)
        for neighbor in neighbors:
            adjacency[neighbor].discard(node)
            if len(adjacency[neighbor]) <= 2:
                queue.append(neighbor)
        del adjacency[node]
    return not adjacency


def _eliminate(adjacency: Dict[object, Set[object]], node: object) -> None:
    """Remove *node*, connecting its neighbors into a clique (in place)."""
    neighbors = adjacency.pop(node)
    neighbor_list = list(neighbors)
    for i, u in enumerate(neighbor_list):
        adjacency[u].discard(node)
        for v in neighbor_list[i + 1 :]:
            adjacency[u].add(v)
            adjacency[v].add(u)


def _decide_width(
    adjacency: Dict[object, Set[object]],
    k: int,
    memo: Dict[FrozenSet[object], bool],
) -> bool:
    """Is there an elimination order where every vertex has ≤ k
    neighbors when eliminated?  (Equivalent to tw ≤ k.)"""
    # Greedily eliminate forced vertices (degree ≤ 1 is always safe,
    # and simplicial vertices of degree ≤ k are safe) to shrink the
    # search space.
    while True:
        forced = None
        for node, neighbors in adjacency.items():
            if len(neighbors) <= 1:
                forced = node
                break
            if len(neighbors) <= k and _is_simplicial(adjacency, node):
                forced = node
                break
        if forced is None:
            break
        _eliminate(adjacency, forced)
    if not adjacency:
        return True
    key = frozenset(adjacency)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = False
    candidates = sorted(
        (node for node, nbrs in adjacency.items() if len(nbrs) <= k),
        key=lambda node: len(adjacency[node]),
    )
    for node in candidates:
        branch = {u: set(vs) for u, vs in adjacency.items()}
        _eliminate(branch, node)
        if _decide_width(branch, k, memo):
            result = True
            break
    memo[key] = result
    return result


def _is_simplicial(adjacency: Dict[object, Set[object]], node: object) -> bool:
    neighbors = list(adjacency[node])
    for i, u in enumerate(neighbors):
        for v in neighbors[i + 1 :]:
            if v not in adjacency[u]:
                return False
    return True


def _min_fill_upper_bound(adjacency: Dict[object, Set[object]]) -> int:
    """Min-fill greedy elimination: classic treewidth upper bound."""
    adjacency = {u: set(vs) for u, vs in adjacency.items()}
    width = 0
    while adjacency:
        best_node = None
        best_fill = None
        for node, neighbors in adjacency.items():
            neighbor_list = list(neighbors)
            fill = sum(
                1
                for i, u in enumerate(neighbor_list)
                for v in neighbor_list[i + 1 :]
                if v not in adjacency[u]
            )
            if best_fill is None or fill < best_fill:
                best_fill = fill
                best_node = node
        width = max(width, len(adjacency[best_node]))
        _eliminate(adjacency, best_node)
    return width


def treewidth(graph: Multigraph, exact_limit: int = 40) -> TreewidthResult:
    """Compute the treewidth of *graph*.

    Graphs with at most *exact_limit* nodes remaining after the cheap
    sieves get an exact answer; larger ones fall back to the min-fill
    upper bound (``exact=False``).  The sieves decide widths 0–2
    without any search, which covers >99.9% of real query graphs.
    """
    if graph.node_count() == 0:
        return TreewidthResult(0, True)
    adjacency = _simple_adjacency(graph)
    if not any(adjacency.values()):
        return TreewidthResult(0, True)
    if graph.is_acyclic_simple() or _forest(adjacency):
        return TreewidthResult(1, True)
    if treewidth_at_most_2(graph):
        return TreewidthResult(2, True)
    if graph.node_count() > exact_limit:
        return TreewidthResult(_min_fill_upper_bound(adjacency), False)
    upper = _min_fill_upper_bound(adjacency)
    for k in range(3, upper):
        branch = {u: set(vs) for u, vs in adjacency.items()}
        if _decide_width(branch, k, {}):
            return TreewidthResult(k, True)
    return TreewidthResult(upper, True)


def _forest(adjacency: Dict[object, Set[object]]) -> bool:
    """Forest test on a simple adjacency map (handles the case where
    the multigraph had loops/parallel edges that simplification drops —
    they do not change treewidth)."""
    visited: Set[object] = set()
    for start in adjacency:
        if start in visited:
            continue
        stack = [(start, None)]
        visited.add(start)
        while stack:
            node, parent = stack.pop()
            for neighbor in adjacency[node]:
                if neighbor == parent:
                    continue
                if neighbor in visited:
                    return False
                visited.add(neighbor)
                stack.append((neighbor, node))
    return True
