"""Shape classification of canonical graphs (paper §6.1, Table 4).

Implements the paper's shape taxonomy over pseudographs:

* **single edge** — one edge between two distinct nodes;
* **chain** — a path graph (a single edge is a chain of length 1);
* **chain set** — every connected component is a chain;
* **star** — a tree with exactly one node of degree ≥ 3;
* **tree** — connected, simple, acyclic;
* **forest** — every component is a tree;
* **cycle** — a single (multigraph) cycle; parallel edges form a cycle
  of length 2 and a self-loop one of length 1;
* **petal** (Definition 6.1) — two nodes s, t joined by ≥ 2 internally
  node-disjoint paths (a cycle is a petal);
* **flower** (Definition 6.1) — a node x with chain attachments
  (*stamens*), tree attachments (*stems*), and petal attachments
  (all petals rooted at x); every tree is a flower (zero petals);
* **flower set** — every component is a flower.

These predicates are arranged exactly so Table 4's rows are cumulative:
single edge ⊆ chain ⊆ chain set ⊆ flower set, star ⊆ tree ⊆ forest ⊆
flower set, cycle ⊆ petal ⊆ flower ⊆ flower set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from .graphutil import Multigraph

__all__ = [
    "ShapeProfile",
    "classify_shape",
    "is_single_edge",
    "is_chain",
    "is_chain_set",
    "is_star",
    "is_tree",
    "is_forest",
    "is_cycle",
    "is_petal",
    "is_flower",
    "is_flower_set",
    "SHAPE_ORDER",
]

#: Row order of Table 4.
SHAPE_ORDER = (
    "single edge",
    "chain",
    "chain set",
    "star",
    "tree",
    "forest",
    "cycle",
    "flower",
    "flower set",
)


def is_single_edge(graph: Multigraph) -> bool:
    """Whether the graph is one edge (possibly a loop), Table 4 row 1."""
    return (
        graph.edge_count() == 1
        and graph.node_count() == 2
        and not graph.has_loops()
    )


def is_chain(graph: Multigraph) -> bool:
    """A path graph.  A single node without edges counts as a trivial
    chain (length 0); this only matters for constants-excluded graphs."""
    if not graph.is_connected():
        return False
    if graph.has_loops() or graph.has_parallel_edges():
        return False
    if graph.node_count() <= 1:
        return graph.edge_count() == 0
    degrees = [graph.simple_degree(node) for node in graph.nodes()]
    if any(degree > 2 for degree in degrees):
        return False
    endpoints = sum(1 for degree in degrees if degree == 1)
    # A connected, max-degree-2, simple graph is a path iff it has two
    # endpoints (otherwise it is a cycle).
    return endpoints == 2


def is_chain_set(graph: Multigraph) -> bool:
    """Whether every component is a chain."""
    return all(
        is_chain(graph.induced_subgraph(component))
        for component in graph.connected_components()
    )


def is_tree(graph: Multigraph) -> bool:
    """Whether the graph is a single tree."""
    if not graph.is_connected():
        return False
    if graph.node_count() == 0:
        return True
    return graph.is_acyclic_simple()


def is_forest(graph: Multigraph) -> bool:
    """Whether every component is a tree."""
    return graph.is_acyclic_simple()


def is_star(graph: Multigraph) -> bool:
    """A tree with exactly one node having more than two neighbors."""
    if not is_tree(graph):
        return False
    centers = sum(
        1 for node in graph.nodes() if graph.simple_degree(node) >= 3
    )
    return centers == 1


def is_cycle(graph: Multigraph) -> bool:
    """A single closed walk visiting every node: connected with every
    node of (multigraph) degree exactly 2 and |E| = |V|."""
    if graph.node_count() == 0:
        return False
    if not graph.is_connected():
        return False
    if graph.node_count() == 1:
        return graph.loops_at(graph.nodes()[0]) == 1 and graph.edge_count() == 1
    return (
        all(graph.degree(node) == 2 for node in graph.nodes())
        and graph.edge_count() == graph.node_count()
    )


def is_petal(graph: Multigraph) -> bool:
    """s and t joined by at least two internally node-disjoint paths."""
    return _petal_endpoints(graph) is not None


def _petal_endpoints(graph: Multigraph) -> Optional[Set]:
    """Return {s, t} when the graph is a petal (all nodes of a cycle
    when it is one), else None."""
    if graph.node_count() < 2 or not graph.is_connected():
        return None
    if graph.has_loops():
        return None
    exceptional = [
        node for node in graph.nodes() if graph.degree(node) != 2
    ]
    if not exceptional:
        # A plain cycle: any two nodes work as s/t.
        if graph.edge_count() == graph.node_count():
            return set(graph.nodes())
        return None
    if len(exceptional) != 2:
        return None
    s, t = exceptional
    p = graph.degree(s)
    if graph.degree(t) != p or p < 3:
        return None
    # Every maximal degree-2 path must run from s to t (no s–s or t–t
    # lobes), and together with direct s–t edges there must be p paths.
    direct = graph.multiplicity(s, t)
    interior = graph.induced_subgraph(set(graph.nodes()) - {s, t})
    path_count = direct
    for component in interior.connected_components():
        component_graph = interior.induced_subgraph(component)
        if not is_chain(component_graph):
            return None
        attachments_s = sum(
            graph.multiplicity(node, s) for node in component
        )
        attachments_t = sum(
            graph.multiplicity(node, t) for node in component
        )
        if attachments_s != 1 or attachments_t != 1:
            return None
        path_count += 1
    if path_count != p:
        return None
    return {s, t}


def is_flower(graph: Multigraph) -> bool:
    """Is there a core x making every attachment a chain, tree or petal
    rooted at x?  Trees are flowers; so are cycles (x on the cycle)."""
    if graph.node_count() == 0:
        return True
    if not graph.is_connected():
        return False
    if is_tree(graph):
        return True
    for core in graph.nodes():
        if _is_flower_with_core(graph, core):
            return True
    return False


def _is_flower_with_core(graph: Multigraph, core) -> bool:
    # Loops directly at the core are length-1 petals: strip them before
    # examining attachments (they would otherwise spoil every test).
    rest = graph.remove_node(core)
    for component in rest.connected_components():
        attachment = _attachment_without_core_loops(graph, component, core)
        if attachment.is_acyclic_simple():
            continue  # stamen (chain) or stem (tree)
        endpoints = _petal_endpoints(attachment)
        if endpoints is not None and core in endpoints:
            continue  # petal rooted at the core
        return False
    return True


def _attachment_without_core_loops(
    graph: Multigraph, component: Set, core
) -> Multigraph:
    attachment = Multigraph()
    nodes = set(component) | {core}
    for node in nodes:
        attachment.add_node(node)
        if node != core:
            for _ in range(graph.loops_at(node)):
                attachment.add_edge(node, node)
    seen = set()
    for u in nodes:
        for v in graph.neighbors(u):
            if v in nodes and u != v:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    for _ in range(graph.multiplicity(u, v)):
                        attachment.add_edge(u, v)
    return attachment


def is_flower_set(graph: Multigraph) -> bool:
    """Whether every component is a flower (petals + external chains)."""
    return all(
        is_flower(graph.induced_subgraph(component))
        for component in graph.connected_components()
    )


@dataclass(frozen=True)
class ShapeProfile:
    """Membership in each Table 4 shape class, plus the girth."""

    single_edge: bool
    chain: bool
    chain_set: bool
    star: bool
    tree: bool
    forest: bool
    cycle: bool
    flower: bool
    flower_set: bool
    #: Length of the shortest cycle; None when acyclic (§6.1).
    shortest_cycle: Optional[int]

    def as_dict(self) -> Dict[str, bool]:
        """The shape memberships as an ordered name -> bool mapping."""
        return {
            "single edge": self.single_edge,
            "chain": self.chain,
            "chain set": self.chain_set,
            "star": self.star,
            "tree": self.tree,
            "forest": self.forest,
            "cycle": self.cycle,
            "flower": self.flower,
            "flower set": self.flower_set,
        }


def classify_shape(graph: Multigraph) -> ShapeProfile:
    """Classify *graph* into every shape class of Table 4 at once."""
    single = is_single_edge(graph)
    chain = single or is_chain(graph)
    tree = chain or is_tree(graph)
    chain_set = chain or is_chain_set(graph)
    forest = tree or chain_set or is_forest(graph)
    star = is_star(graph)
    cycle = is_cycle(graph)
    flower = tree or cycle or is_flower(graph)
    flower_set = flower or forest or is_flower_set(graph)
    return ShapeProfile(
        single_edge=single,
        chain=chain,
        chain_set=chain_set,
        star=star,
        tree=tree,
        forest=forest,
        cycle=cycle,
        flower=flower,
        flower_set=flower_set,
        shortest_cycle=graph.girth(),
    )
