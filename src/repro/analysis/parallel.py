"""Sharded, streaming, multiprocessing-capable pipeline and study drivers.

The paper's headline corpus is ~180M queries; a strictly serial
clean → parse → measure pass bounds corpus size by one core — and a
driver that materializes the raw stream before sharding it bounds
corpus size by one heap.  This module does neither: the work is split
into chunks *lazily*, the chunks are executed with a bounded number in
flight (``imap``-style backpressure), and the partial results are
combined in stream order through the mergeable accumulators
(:class:`~repro.logs.pipeline.LogShard`,
:class:`~repro.analysis.study.DatasetStats`,
:class:`~repro.analysis.study.CorpusStudy`):

* :func:`build_query_log_parallel` — clean → parse → dedup over chunks
  of raw entries.  Deduplication is two-phase: each shard builds its
  own text → count map and the maps are merged in stream order before
  the unique stream is materialized.
* :func:`study_corpus_parallel` — the full corpus study over chunks of
  the (already deduplicated) per-dataset query streams.

Both accept plain iterators — e.g. the lazy file sources of
:mod:`repro.logs.sources` — and never pull more than
``workers × _CHUNKS_PER_WORKER`` chunks of input into memory at once:
peak ingestion memory is O(workers × chunk_size), not O(log size).
(The deduplicated unique set is accumulated by design — it *is* the
result — so total memory is chunk window + unique state.)

The parallel runtime itself is built from four reusable pieces:

* :class:`WorkerPool` — a persistent process pool created once (per
  :class:`~repro.api.AnalysisSession`) and reused across datasets,
  corpora and runs, so repeated runs don't pay a fork storm.  Workers
  keep *keyed* caches (parse caches per prefix environment, structure
  caches per option set) that stay warm across runs on the same pool.
* adaptive chunk sizing (:func:`adaptive_chunk_sizes`) — chunks start
  small and grow geometrically toward ~``_TARGET_CHUNKS_PER_WORKER``
  chunks per worker, so tiny corpora stay near serial cost and huge
  corpora amortize IPC.  ``workers=1`` collapses to one chunk (the
  serial scan); explicit ``chunk_size`` still pins a fixed size.
* compact shard transport — pool workers serialize their results
  themselves and return ``bytes``: pre-reduced payloads (counter
  deltas, streak boundary state, fully reduced partial studies — never
  the chunk's AST object graphs), with the parent counting exactly how
  many bytes each chunk shipped (:class:`TransportStats`, surfaced as
  ``PassProfile`` counters).
* pairwise tree merge (:func:`tree_merge`) — partial results reduce
  through an online binary-counter tree instead of one long left fold.
  Every accumulator merge here is associative, so the merge tree's
  shape can never change a byte (property-tested).

Chunks are always merged in stream order, so both drivers are
guaranteed to reproduce the serial result exactly — including counter
key order, which breaks ties in table rendering.  ``workers=1`` (or a
single chunk) never touches :mod:`multiprocessing`: it runs the same
chunked code path serially, lazily, and deterministically in-process.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from functools import partial
from itertools import chain, islice, repeat
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
    Union,
)

from ..logs.pipeline import LogShard, ParseCache, ParsedQuery, QueryLog, process_entries
from .context import DEFAULT_OPTIONS, AnalysisOptions, StructureCache
from .passes import (
    PassProfile,
    resolve_passes,
    resolve_sequence_passes,
    run_passes,
)
from .streaks import SIMILARITY_COUNTERS
from .structure_store import (
    StoreBackedStructureCache,
    StructureStore,
    open_structure_cache,
    pending_rows,
)
from .study import CorpusStudy, DatasetStats, _claim_streaks

__all__ = [
    "DEFAULT_STREAM_CHUNK_SIZE",
    "TransportStats",
    "WorkerPool",
    "adaptive_chunk_sizes",
    "build_query_log_parallel",
    "build_query_logs_parallel",
    "default_chunk_size",
    "imap_bounded",
    "iter_chunks",
    "iter_scheduled_chunks",
    "measure_chunk",
    "merge_shards",
    "merge_studies",
    "resolve_workers",
    "study_corpus_parallel",
    "tree_merge",
]

_Payload = TypeVar("_Payload")
_Result = TypeVar("_Result")

#: Target number of in-flight chunks per worker.  More than one chunk
#: per worker smooths load imbalance (shape/treewidth analysis cost
#: varies wildly per query) while keeping the backpressure window — and
#: therefore peak memory — a small fixed multiple of the chunk size.
#: The value is deterministic so chunk boundaries and merge order never
#: depend on timing.
_CHUNKS_PER_WORKER = 4

#: Steady-state chunk-count target of the adaptive schedule: chunk
#: sizes grow until the whole input splits into about this many chunks
#: per worker.  Enough chunks to smooth load imbalance, few enough
#: that per-chunk IPC stays amortized.
_TARGET_CHUNKS_PER_WORKER = 8

#: First chunk size of the adaptive schedule: small, so short inputs
#: produce their first result (and their only chunks) near serial cost.
_ADAPTIVE_INITIAL_CHUNK = 64

#: Chunk size used when the input is a one-shot iterator whose length
#: is unknowable up front (the streaming ingestion path).  Also the
#: growth cap of the adaptive schedule on such streams — memory stays
#: bounded without counting the stream first.
DEFAULT_STREAM_CHUNK_SIZE = 1024


def resolve_workers(workers: Union[int, str, None]) -> int:
    """Normalize a worker count (``None``/``0``/``"auto"`` → all CPUs).

    ``"auto"`` is the spelling the CLI accepts; it resolves to the CPUs
    usable by this process (``os.process_cpu_count`` where available,
    ``os.cpu_count`` otherwise).  Any other string raises.
    """
    if isinstance(workers, str):
        if workers != "auto":
            raise ValueError(
                f"workers must be a positive integer or 'auto', got {workers!r}"
            )
        workers = None
    if workers is None or workers <= 0:
        return getattr(os, "process_cpu_count", os.cpu_count)() or 1
    return workers


def default_chunk_size(n_items: int, workers: int) -> int:
    """Deterministic chunk size: ~`_CHUNKS_PER_WORKER` chunks per worker."""
    return max(1, -(-n_items // (workers * _CHUNKS_PER_WORKER)))


def adaptive_chunk_sizes(
    total: Optional[int], workers: int
) -> Iterator[int]:
    """The adaptive chunk-size schedule: small first, growing toward few.

    Yields chunk sizes forever (the chunker stops pulling when the
    input runs dry).  Sizes start at ``_ADAPTIVE_INITIAL_CHUNK`` and
    double until the whole input would split into about
    ``_TARGET_CHUNKS_PER_WORKER`` chunks per worker — so a tiny corpus
    is one or two cheap chunks while a huge one settles into large,
    IPC-amortizing chunks after a logarithmic ramp.  *total* ``None``
    (an unsized stream) caps growth at ``DEFAULT_STREAM_CHUNK_SIZE``
    instead, keeping the memory bound that streaming mode promises.

    ``workers == 1`` yields the whole (sized) input as one chunk: the
    driver's collapse path then runs it serially with zero chunking or
    merge overhead.  The schedule depends only on ``(total, workers)``,
    never on timing, so chunk boundaries — and therefore merge trees —
    are deterministic.
    """
    if workers == 1 and total is not None:
        size = max(1, total)
        while True:
            yield size
    if total is None:
        cap = DEFAULT_STREAM_CHUNK_SIZE
    else:
        cap = max(
            _ADAPTIVE_INITIAL_CHUNK,
            -(-total // (workers * _TARGET_CHUNKS_PER_WORKER)),
        )
    size = min(_ADAPTIVE_INITIAL_CHUNK, cap)
    while True:
        yield size
        size = min(size * 2, cap)


def _chunk_schedule(
    chunk_size: Optional[int], total: Optional[int], workers: int
) -> Iterator[int]:
    """Fixed sizes for an explicit *chunk_size*, adaptive otherwise."""
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        return repeat(chunk_size)
    return adaptive_chunk_sizes(total, workers)


def iter_chunks(items: Iterable[_Payload], chunk_size: int) -> Iterator[List[_Payload]]:
    """Lazily split *items* into contiguous chunks of at most *chunk_size*.

    Accepts any iterable — including one-shot iterators — and never
    holds more than one chunk of it.  ``chunk_size`` is validated
    eagerly so misuse fails at the call site, not mid-stream.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return iter_scheduled_chunks(items, repeat(chunk_size))


def iter_scheduled_chunks(
    items: Iterable[_Payload], sizes: Iterator[int]
) -> Iterator[List[_Payload]]:
    """Like :func:`iter_chunks`, but each chunk's size comes from *sizes*.

    *sizes* may be shared between several chunkers (the drivers share
    one schedule across all datasets of a corpus, so the geometric ramp
    happens once per run, not once per dataset).
    """
    iterator = iter(items)
    for size in sizes:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


# ---------------------------------------------------------------------------
# Transport accounting and the persistent worker pool
# ---------------------------------------------------------------------------


@dataclass
class TransportStats:
    """What a sharded run shipped and how long merging took.

    Filled by the drivers when the caller passes one in (the
    :class:`~repro.api.AnalysisSession` does, folding the totals into
    the run's :class:`~repro.analysis.passes.PassProfile`).  A chunk
    counts as *shipped* when its result crossed the pool boundary as a
    serialized payload; in-process paths (``workers=1``, single-chunk
    collapse without a pool) ship nothing.
    """

    #: Chunk results that came back as serialized payloads.
    chunks_shipped: int = 0
    #: Total pickled bytes of those payloads.
    shipped_bytes: int = 0
    #: Parent-side wall time spent merging partial results.
    merge_seconds: float = 0.0

    def add_to_profile(self, profile: PassProfile) -> None:
        """Fold these counters into a run's pass profile."""
        profile.chunks_shipped += self.chunks_shipped
        profile.shipped_bytes += self.shipped_bytes
        profile.merge_seconds += self.merge_seconds


class WorkerPool:
    """A persistent worker pool, reused across datasets, corpora and runs.

    The per-call drivers spin a pool up and tear it down per invocation
    — correct, but a session analyzing many corpora pays the process
    start-up cost every time.  A ``WorkerPool`` owns one
    :class:`~concurrent.futures.ProcessPoolExecutor` (fork context
    where available), created lazily on first submit and kept until
    :meth:`close`.

    Workers of a persistent pool keep *keyed* state instead of
    initializer-built globals, because one pool serves runs with
    different configurations: parse caches are keyed by prefix
    environment (a :class:`~repro.logs.pipeline.ParseCache` is pinned
    to one), structure caches by the option fields they depend on.
    State stays warm across runs — which can only change *when* a
    result is computed, never what it is (cache-transparency
    invariant).

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, workers: Union[int, str, None] = None) -> None:
        self.workers = resolve_workers(workers)
        self._executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> ProcessPoolExecutor:
        """The underlying executor, created on first use."""
        if self._executor is None:
            context = _fork_context()
            kwargs = {} if context is None else {"mp_context": context}
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, **kwargs
            )
        return self._executor

    @property
    def started(self) -> bool:
        """Whether worker processes exist yet (the pool is lazy)."""
        return self._executor is not None

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker entry points (top-level so they pickle under spawn and fork)
# ---------------------------------------------------------------------------


#: Per-worker parse cache, created by the pool initializer so it lives
#: for the whole pool: duplicates recurring across a worker's chunks are
#: parsed once.  In the parent it is only ever set by the collapsed
#: (<= 1 payload) serial fallback, which re-runs the initializer first —
#: each run gets a fresh cache, so prefix environments can't leak
#: between runs.  (Per-call pools only; persistent-pool workers use the
#: keyed caches below.)
_WORKER_PARSE_CACHE: Optional[ParseCache] = None


def _init_parse_worker() -> None:
    global _WORKER_PARSE_CACHE
    _WORKER_PARSE_CACHE = ParseCache()


#: Keyed per-worker caches for persistent pools.  A ParseCache is
#: pinned to one prefix environment (it raises on a mismatch), so a
#: pool worker serving many runs keeps one cache per environment.
_POOL_PARSE_CACHES: Dict[object, ParseCache] = {}

#: Keyed per-worker structure caches for persistent pools, one per
#: (cache_size, structure_cache_path) — the option fields the cache is
#: built from.  Warm entries surviving across runs is exactly the
#: cache-transparency invariant: results never change, only timings.
_POOL_STRUCTURE_CACHES: Dict[Tuple[int, Optional[str]], StructureCache] = {}


def _pool_parse_cache(extra_prefixes: Optional[Dict[str, str]]) -> ParseCache:
    key = (
        None if not extra_prefixes else tuple(sorted(extra_prefixes.items()))
    )
    cache = _POOL_PARSE_CACHES.get(key)
    if cache is None:
        cache = _POOL_PARSE_CACHES[key] = ParseCache()
    return cache


def _pool_structure_cache(options: AnalysisOptions) -> StructureCache:
    key = (options.cache_size, options.structure_cache_path)
    cache = _POOL_STRUCTURE_CACHES.get(key)
    if cache is None:
        cache = _POOL_STRUCTURE_CACHES[key] = open_structure_cache(
            options, readonly=True
        )
    return cache


def _attach_sequences(
    shard: LogShard,
    texts: List[str],
    options: Optional[AnalysisOptions],
    lookahead: Optional[List[str]] = None,
) -> LogShard:
    """Feed this chunk's *raw* texts, in order, to every selected
    sequence pass and hang the accumulators on the shard.

    Sequence passes (streak detection) must see the stream *before*
    deduplication — duplicate entries are exactly what streaks are made
    of — so they ride the ingestion chunks, not the measure phase.

    *lookahead* — the first ``window`` raw texts of the *next* chunk of
    the same dataset — lets the worker precompute the similarity
    decisions the parent's merge-time boundary stitch will need
    (:meth:`~repro.analysis.streaks.StreakAccumulator
    .precompute_boundary`), moving that scoring off the serial merge
    path and onto the pool.
    """
    if options is None:
        return shard
    for sequence_pass in resolve_sequence_passes(options.metrics):
        accumulator = sequence_pass.start(options)
        for text in texts:
            accumulator.push(text)
        if lookahead is not None and hasattr(accumulator, "precompute_boundary"):
            accumulator.precompute_boundary(lookahead)
        shard.sequences[sequence_pass.name] = accumulator
    return shard


def _ingest_chunk(
    texts: List[str],
    extra_prefixes: Optional[Dict[str, str]],
    options: Optional[AnalysisOptions],
    cache: Optional[ParseCache],
) -> LogShard:
    """Clean → parse → dedup one chunk — or skip all three in lean mode.

    Lean ingestion (``options.lean_ingestion``) applies when only
    sequence passes are selected: they read the raw ordered stream, so
    the shard needs nothing but its Total counter.  Valid/Unique then
    honestly report 0 — the parse stage never ran.
    """
    if options is not None and options.lean_ingestion:
        return LogShard(total=len(texts))
    return process_entries(texts, extra_prefixes=extra_prefixes, cache=cache)


def _ingest_scored(
    name: str,
    texts: List[str],
    extra_prefixes: Optional[Dict[str, str]],
    options: Optional[AnalysisOptions],
    lookahead: Optional[List[str]],
    cache: Optional[ParseCache],
) -> Tuple[str, LogShard, Optional[Dict[str, int]]]:
    """Ingest one chunk, capturing the similarity-counter delta it caused.

    :data:`~repro.analysis.streaks.SIMILARITY_COUNTERS` is per-process
    state; without this capture, counter work done on pool workers
    would silently vanish from the parent's numbers (under-reporting
    ``dp_skip_rate`` in profiled sharded runs).  The capture is
    transactional — snapshot, scan, delta, restore — so a chunk counts
    exactly once whether it ran on a worker or (the collapsed or
    ``workers=1`` fallbacks) in the parent process itself, where the
    parent later :meth:`adds <repro.analysis.streaks
    .SimilarityCounters.add>` the shipped delta unconditionally.
    """
    if options is None:
        return name, _ingest_chunk(texts, extra_prefixes, None, cache), None
    before = SIMILARITY_COUNTERS.to_dict()
    shard = _ingest_chunk(texts, extra_prefixes, options, cache)
    shard = _attach_sequences(shard, texts, options, lookahead)
    delta = SIMILARITY_COUNTERS.delta_since(before)
    SIMILARITY_COUNTERS.restore(before)
    return name, shard, delta


def _parse_chunk(
    payload: Tuple[
        str,
        List[str],
        Optional[Dict[str, str]],
        Optional[AnalysisOptions],
        Optional[List[str]],
    ],
) -> Tuple[str, LogShard, Optional[Dict[str, int]]]:
    name, texts, extra_prefixes, options, lookahead = payload
    return _ingest_scored(
        name, texts, extra_prefixes, options, lookahead, _WORKER_PARSE_CACHE
    )


def _pool_parse_chunk(
    payload: Tuple[
        str,
        List[str],
        Optional[Dict[str, str]],
        Optional[AnalysisOptions],
        Optional[List[str]],
    ],
) -> bytes:
    """Persistent-pool ingestion worker: keyed cache, pre-pickled result.

    Returning ``bytes`` makes the transport explicit: the parent counts
    exactly ``len(result)`` shipped bytes per chunk, and the executor's
    own result pickling degenerates to a cheap bytes copy.
    """
    name, texts, extra_prefixes, options, lookahead = payload
    cache = _pool_parse_cache(extra_prefixes)
    result = _ingest_scored(name, texts, extra_prefixes, options, lookahead, cache)
    return pickle.dumps(result, pickle.HIGHEST_PROTOCOL)


#: Per-worker structural-signature cache, created by the pool
#: initializer so it lives for the whole pool: recurring query shapes
#: across a worker's chunks reuse their shape/treewidth/hypertree
#: results.  Bounded LRU, so per-worker memory stays O(cache_size) and
#: the O(workers × chunk) ingestion invariant holds.  Stays ``None`` in
#: the parent (the serial paths build run-local caches instead).
_WORKER_STRUCTURE_CACHE: Optional[StructureCache] = None


def _init_measure_worker(options: AnalysisOptions) -> None:
    # Workers attach to the persistent structure store (if configured)
    # read-only: the parent is the only writer, flushing the pending
    # rows the workers ship back alongside their partial studies.
    global _WORKER_STRUCTURE_CACHE
    _WORKER_STRUCTURE_CACHE = open_structure_cache(options, readonly=True)


def _measure_chunk(
    payload: Tuple[str, List[ParsedQuery], bool, AnalysisOptions],
) -> Tuple[CorpusStudy, List[Tuple[str, str, str]]]:
    dataset, queries, dedup, options = payload
    study = measure_chunk(
        dataset, queries, dedup=dedup, options=options, cache=_WORKER_STRUCTURE_CACHE
    )
    return study, pending_rows(_WORKER_STRUCTURE_CACHE)


def _pool_measure_chunk(
    payload: Tuple[str, List[ParsedQuery], bool, AnalysisOptions],
) -> bytes:
    """Persistent-pool measure worker: compact, pre-reduced transport.

    What comes back is the fully reduced partial study — plain counters
    and histograms, a couple of KB regardless of chunk size — never the
    chunk's AST object graphs, which stay on the worker.  Pre-pickling
    it here makes the shipped size explicit: the parent counts exactly
    ``len(result)`` bytes per chunk.
    """
    dataset, queries, dedup, options = payload
    cache = _pool_structure_cache(options)
    study = measure_chunk(
        dataset, queries, dedup=dedup, options=options, cache=cache
    )
    return pickle.dumps((study, pending_rows(cache)), pickle.HIGHEST_PROTOCOL)


#: Logs shared with fork-started measure workers through inherited
#: memory: the measure phase always runs over *materialized*
#: :class:`QueryLog` objects, so index slices — not chunks of recursive
#: AST object graphs — are what crosses the process boundary.  Set (and
#: held, under the lock) for the whole drain of one
#: :func:`study_corpus_parallel` run, because pool workers fork lazily
#: on first submit; cleared right after.  The lock serializes
#: concurrent runs in one process so a second thread can't swap the
#: global between another run's fork and its submits.  (Per-call pools
#: only: a persistent pool forked long before this run's logs existed,
#: so its workers receive query chunks instead.)
_SHARED_LOGS: Optional[Mapping[str, QueryLog]] = None
_SHARED_LOGS_LOCK = threading.Lock()


def _measure_slice(
    payload: Tuple[str, int, int, bool, AnalysisOptions],
) -> Tuple[CorpusStudy, List[Tuple[str, str, str]]]:
    name, start, stop, dedup, options = payload
    assert _SHARED_LOGS is not None
    study = measure_chunk(
        name,
        _SHARED_LOGS[name].parsed[start:stop],
        dedup=dedup,
        options=options,
        cache=_WORKER_STRUCTURE_CACHE,
    )
    return study, pending_rows(_WORKER_STRUCTURE_CACHE)


def measure_chunk(
    dataset: str,
    queries: Iterable[ParsedQuery],
    dedup: bool = True,
    options: AnalysisOptions = DEFAULT_OPTIONS,
    cache: Optional[StructureCache] = None,
) -> CorpusStudy:
    """Measure one chunk of a dataset's unique stream into a partial study.

    *cache* may be shared across chunks (it is transparent — results
    never depend on it); with ``options.profile`` the chunk's own
    timings and the cache hit/miss delta it caused land on the partial
    study's ``pass_profile``, merged in stream order like every other
    accumulator.
    """
    passes = resolve_passes(options.metrics)
    profile = PassProfile() if options.profile else None
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    store_before = getattr(cache, "store_hits", 0)
    study = CorpusStudy(dedup=dedup)
    stats = DatasetStats(name=dataset)
    study.datasets[dataset] = stats
    for parsed in queries:
        run_passes(
            study,
            stats,
            parsed,
            1 if dedup else parsed.count,
            passes=passes,
            options=options,
            cache=cache,
            profile=profile,
        )
    if profile is not None:
        if cache is not None:
            profile.cache_hits = cache.hits - hits_before
            profile.cache_misses = cache.misses - misses_before
            profile.store_hits = getattr(cache, "store_hits", 0) - store_before
        study.pass_profile = profile
    return study


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return None


def imap_bounded(
    worker_fn: Callable[[_Payload], _Result],
    payloads: Iterable[_Payload],
    workers: int,
    *,
    initializer: Optional[Callable[[], None]] = None,
    max_inflight: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
) -> Iterator[_Result]:
    """Apply *worker_fn* to *payloads*, yielding results in input order.

    The streaming heart of this module.  *payloads* may be a one-shot
    iterator; it is consumed with backpressure — at most *max_inflight*
    (default ``workers × _CHUNKS_PER_WORKER``) payloads are pulled
    ahead of the consumer, so peak memory is bounded by the window, not
    the stream.  Results are yielded strictly in submission order,
    which is what makes merge-in-stream-order reproducible.

    ``workers=1`` — or a stream that turns out to hold at most one
    payload — is the deterministic serial fallback: same code path,
    same order, fully lazy, no :mod:`multiprocessing` and no pickling.

    *pool* submits to a persistent :class:`WorkerPool` instead of
    spinning up (and tearing down) a per-call executor; *worker_fn*
    must then manage its own worker-side state (*initializer* is for
    per-call pools, whose single configuration it pins).

    *workers* is validated eagerly, at the call site rather than from
    inside the pool mid-stream (callers resolve 0/None via
    :func:`resolve_workers` first).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return _imap_bounded(
        worker_fn,
        payloads,
        workers,
        initializer=initializer,
        max_inflight=max_inflight,
        pool=pool,
    )


def _imap_bounded(
    worker_fn: Callable[[_Payload], _Result],
    payloads: Iterable[_Payload],
    workers: int,
    *,
    initializer: Optional[Callable[[], None]],
    max_inflight: Optional[int],
    pool: Optional[WorkerPool],
) -> Iterator[_Result]:
    iterator = iter(payloads)
    collapsed = False
    if workers != 1:
        head = list(islice(iterator, 2))
        if len(head) > 1:
            iterator = chain(head, iterator)
        else:
            iterator, workers, collapsed = iter(head), 1, True
    if workers == 1:
        if collapsed and initializer is not None:
            # A multi-worker run that turned out to hold <= 1 payload
            # executes the worker fn in-process; run its initializer
            # here so worker-global state (per-worker caches) exists
            # exactly as it would inside a pool.  (Pool worker fns need
            # no initializer — their keyed state builds itself.)
            initializer()
        for payload in iterator:
            yield worker_fn(payload)
        return
    if max_inflight is None:
        max_inflight = workers * _CHUNKS_PER_WORKER
    max_inflight = max(max_inflight, workers)
    if pool is not None:
        executor = pool.executor()
        pending: deque = deque()
        for payload in iterator:
            pending.append(executor.submit(worker_fn, payload))
            if len(pending) >= max_inflight:
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()
        return
    context = _fork_context()
    kwargs = {} if context is None else {"mp_context": context}
    with ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, **kwargs
    ) as executor:
        per_call_pending: deque = deque()
        for payload in iterator:
            per_call_pending.append(executor.submit(worker_fn, payload))
            if len(per_call_pending) >= max_inflight:
                yield per_call_pending.popleft().result()
        while per_call_pending:
            yield per_call_pending.popleft().result()


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------


class _TreeMerger:
    """Online pairwise reduction that preserves stream adjacency.

    A binary-counter tree: each pushed item sits at level 0; whenever
    two adjacent subtrees of equal level exist, the *earlier* one
    absorbs the later (``merge_fn(earlier, later)``), keeping strict
    stream order inside every partial.  At most O(log n) partials are
    alive at once, and every item participates in at most O(log n)
    merges — no accumulator is re-scanned n times the way a left fold's
    left operand is.  Because every merge here is associative (the
    accumulators' contract, property-tested), the tree's shape cannot
    change a byte of the result.
    """

    __slots__ = ("_merge_fn", "_stack")

    def __init__(self, merge_fn: Callable[[_Result, _Result], _Result]) -> None:
        self._merge_fn = merge_fn
        #: (level, value) pairs in stream order, levels strictly
        #: decreasing — exactly the set bits of the pushed-item count.
        self._stack: List[Tuple[int, _Result]] = []

    def push(self, item: _Result) -> None:
        level = 0
        while self._stack and self._stack[-1][0] == level:
            _, earlier = self._stack.pop()
            item = self._merge_fn(earlier, item)
            level += 1
        self._stack.append((level, item))

    def result(self) -> Optional[_Result]:
        """Fold the remaining partials (oldest first); ``None`` if empty."""
        if not self._stack:
            return None
        merged: Optional[_Result] = None
        for _, value in self._stack:
            merged = value if merged is None else self._merge_fn(merged, value)
        self._stack = []
        return merged


def tree_merge(
    items: Iterable[_Result], merge_fn: Callable[[_Result, _Result], _Result]
) -> Optional[_Result]:
    """Reduce *items* pairwise (binary-counter tree), adjacency preserved.

    Equivalent to a left fold for any associative *merge_fn* — which
    every accumulator merge in this package is — while touching each
    partial only O(log n) times.  Returns ``None`` for an empty input.
    """
    merger: _TreeMerger = _TreeMerger(merge_fn)
    for item in items:
        merger.push(item)
    return merger.result()


def _merge_pair(left, right):
    """The in-place accumulator merge as a two-argument function."""
    return left.merge(right)


def merge_shards(shards: Iterable[LogShard]) -> LogShard:
    """Merge pipeline shards in stream order (pairwise tree)."""
    merged = tree_merge(shards, _merge_pair)
    return merged if merged is not None else LogShard()


def merge_studies(studies: Iterable[CorpusStudy], dedup: bool = True) -> CorpusStudy:
    """Merge partial studies in stream order (pairwise tree)."""
    merged = CorpusStudy(dedup=dedup)
    tail = tree_merge(studies, _merge_pair)
    if tail is not None:
        merged.merge(tail)
    return merged


# ---------------------------------------------------------------------------
# Public drivers
# ---------------------------------------------------------------------------


def _corpus_total(corpora: Mapping[str, Iterable]) -> Optional[int]:
    """Total sized length of a corpus, or ``None`` with any lazy stream.

    When every stream knows its length, the adaptive schedule sizes
    chunks against the whole corpus (many small logs must not explode
    into many tiny shards).  Any unsized iterator in the mix means
    streaming mode: growth caps at a fixed size so memory stays bounded
    without counting the stream first.
    """
    total = 0
    for texts in corpora.values():
        if not hasattr(texts, "__len__"):
            return None
        total += len(texts)  # type: ignore[arg-type]
    return total


def build_query_logs_parallel(
    corpora: Mapping[str, Iterable[str]],
    extra_prefixes: Optional[Dict[str, str]] = None,
    *,
    workers: Union[int, str, None] = None,
    chunk_size: Optional[int] = None,
    options: Optional[AnalysisOptions] = None,
    pool: Optional[WorkerPool] = None,
    transport: Optional[TransportStats] = None,
) -> Dict[str, QueryLog]:
    """Streaming clean → parse → dedup over a whole corpus of raw logs.

    All datasets share one worker pool, so small logs don't each pay
    the pool start-up cost — and with *pool* (a persistent
    :class:`WorkerPool`) not even this run pays it.  Corpus values may
    be lists *or* lazy iterators (e.g.
    :func:`repro.logs.sources.iter_entries`); either way the stream is
    chunked lazily (adaptive sizes unless *chunk_size* pins one) and
    consumed with bounded in-flight chunks.  Per dataset, shards reduce
    through a pairwise merge tree in stream order: the result is
    identical to the serial pipeline.  *transport* (when given)
    receives the shipped-bytes and merge-time accounting.

    *options* selects sequence passes (``metrics`` containing
    ``streaks``): each chunk then also feeds its raw texts, in order,
    to a per-chunk :class:`~repro.analysis.streaks.StreakAccumulator`,
    and the chunk accumulators are stitched in stream order onto
    ``QueryLog.sequences`` — byte-identical to a serial scan of the
    whole log.  Each chunk payload also carries a lookahead of its
    successor's head, so workers pre-score the boundary similarity
    decisions the stitch will consult instead of computing them on the
    serial merge path.  With ``options.lean_ingestion`` the parse /
    dedup / AST stages are skipped entirely (sequence passes read the
    raw stream): Total stays exact, Valid/Unique report 0.
    """
    workers = pool.workers if pool is not None else resolve_workers(workers)
    schedule = _chunk_schedule(chunk_size, _corpus_total(corpora), workers)
    if options is not None and not resolve_sequence_passes(options.metrics):
        options = None  # nothing order-aware to compute; keep payloads lean
    if (
        options is not None
        and options.lean_ingestion
        and resolve_passes(options.metrics)
    ):
        # Per-query passes need parsed ASTs; lean mode is only honored
        # for sequence-only selections (the facade validates this — a
        # direct caller gets the safe behavior, not empty tables).
        options = replace(options, lean_ingestion=False)
    # Boundary lookahead: give each chunk the first streak-window texts
    # of its successor, so workers pre-score the merge-time boundary
    # stitch (see _attach_sequences).  Costs holding one extra chunk in
    # the producer — the backpressure window is unchanged.
    lookahead_size = options.streak_window if options is not None else 0

    def payloads() -> Iterator[
        Tuple[
            str,
            List[str],
            Optional[Dict[str, str]],
            Optional[AnalysisOptions],
            Optional[List[str]],
        ]
    ]:
        """Lazily yield (dataset, chunk, prefixes, options, lookahead)."""
        for name, texts in corpora.items():
            held: Optional[List[str]] = None
            for chunk in iter_scheduled_chunks(texts, schedule):
                if held is not None:
                    yield (name, held, extra_prefixes, options,
                           chunk[:lookahead_size])
                held = chunk
            if held is not None:
                yield (name, held, extra_prefixes, options, None)

    use_pool: Optional[WorkerPool] = None
    if workers == 1:
        # In-process: share one run-local parse cache across all chunks
        # and datasets, like the serial pipeline — duplicate-heavy logs
        # parse O(unique) texts, not O(total).  Run-local (not module
        # state), so successive runs can't leak prefix environments.
        cache = ParseCache()

        def parse_chunk(payload):
            """Parse one chunk in-process, sharing the run-local cache."""
            name, texts, prefixes, chunk_options, lookahead = payload
            return _ingest_scored(name, texts, prefixes, chunk_options, lookahead, cache)

        worker_fn, initializer = parse_chunk, None
    elif pool is not None:
        worker_fn, initializer, use_pool = _pool_parse_chunk, None, pool
    else:
        worker_fn, initializer = _parse_chunk, _init_parse_worker

    mergers: Dict[str, _TreeMerger] = {
        name: _TreeMerger(_merge_pair) for name in corpora
    }
    for result in imap_bounded(
        worker_fn, payloads(), workers, initializer=initializer, pool=use_pool
    ):
        if isinstance(result, bytes):
            if transport is not None:
                transport.chunks_shipped += 1
                transport.shipped_bytes += len(result)
            result = pickle.loads(result)
        name, shard, counter_delta = result
        started = perf_counter()
        mergers[name].push(shard)
        if transport is not None:
            transport.merge_seconds += perf_counter() - started
        if counter_delta is not None:
            # Fold the chunk's similarity-counter work into the parent's
            # per-process counters; without this, instrumentation done on
            # pool workers would be silently dropped from sharded runs.
            SIMILARITY_COUNTERS.add(counter_delta)
    merged: Dict[str, LogShard] = {}
    started = perf_counter()
    for name, merger in mergers.items():
        shard = merger.result()
        merged[name] = shard if shard is not None else LogShard()
    if transport is not None:
        transport.merge_seconds += perf_counter() - started
    if options is not None:
        # An empty corpus yields zero chunks and therefore no worker-built
        # accumulators; selected sequence metrics must still come back as
        # (empty) state, exactly like a serial scan of an empty stream.
        for shard in merged.values():
            for sequence_pass in resolve_sequence_passes(options.metrics):
                shard.sequences.setdefault(
                    sequence_pass.name, sequence_pass.start(options)
                )
    return {name: shard.to_query_log(name) for name, shard in merged.items()}


def build_query_log_parallel(
    name: str,
    raw_queries: Iterable[str],
    extra_prefixes: Optional[Dict[str, str]] = None,
    *,
    workers: Union[int, str, None] = None,
    chunk_size: Optional[int] = None,
    options: Optional[AnalysisOptions] = None,
    pool: Optional[WorkerPool] = None,
    transport: Optional[TransportStats] = None,
) -> QueryLog:
    """Streaming clean → parse → dedup, identical to the serial pipeline."""
    logs = build_query_logs_parallel(
        {name: raw_queries},
        extra_prefixes,
        workers=workers,
        chunk_size=chunk_size,
        options=options,
        pool=pool,
        transport=transport,
    )
    return logs[name]


def study_corpus_parallel(
    logs: Mapping[str, QueryLog],
    dedup: bool = True,
    *,
    workers: Union[int, str, None] = None,
    chunk_size: Optional[int] = None,
    options: Optional[AnalysisOptions] = None,
    pool: Optional[WorkerPool] = None,
    transport: Optional[TransportStats] = None,
) -> CorpusStudy:
    """Sharded corpus study, identical to the serial :func:`study_corpus`.

    The Table 1 counters (Total/Valid/Unique) are carried by the
    pre-created per-dataset stats; worker shards contribute measurement
    counters only, so merging never double-counts the pipeline totals.
    Chunks are produced lazily and kept in flight in bounded number, so
    even a huge materialized log is never copied wholesale into a
    payload list.  Partial studies reduce through a pairwise merge tree
    in stream order.

    Without *pool*, per-call executors are used and on fork platforms
    workers receive (name, start, stop) index slices, reading the logs
    through inherited memory — no AST chunks are pickled into the pool
    at all.  With a persistent *pool* the workers forked before this
    run's logs existed, so query chunks are shipped in and compact
    pre-reduced partial studies come back (pre-pickled, counted into
    *transport*).
    """
    workers = pool.workers if pool is not None else resolve_workers(workers)
    if options is None:
        options = DEFAULT_OPTIONS
    store: Optional[StructureStore] = None
    if options.structure_cache_path is not None:
        # The parent is the store's single writer.  Open (initializing
        # the schema if needed) *before* any pool work is submitted, so
        # the read-only worker attachments always find a valid file.  A
        # degraded open runs the whole study cold: strip the path so
        # every worker doesn't re-warn about the same broken file.
        store = StructureStore.open(options.structure_cache_path)
        if store is None:
            options = replace(options, structure_cache_path=None)
    try:
        return _study_corpus_parallel(
            logs, dedup, workers, chunk_size, options, store, pool, transport
        )
    finally:
        if store is not None:
            store.close()


def _study_corpus_parallel(
    logs: Mapping[str, QueryLog],
    dedup: bool,
    workers: int,
    chunk_size: Optional[int],
    options: AnalysisOptions,
    store: Optional[StructureStore],
    pool: Optional[WorkerPool],
    transport: Optional[TransportStats],
) -> CorpusStudy:
    """The driver body behind :func:`study_corpus_parallel`.

    *store* (when given) is the parent's writable handle on the
    persistent structure store: every merged chunk's pending rows are
    flushed through it at the chunk boundary — batched upserts, so
    duplicate discoveries across workers are harmless.
    """
    study = CorpusStudy(dedup=dedup)
    total = sum(log.unique for log in logs.values())
    schedule = _chunk_schedule(chunk_size, total, workers)
    for name, log in logs.items():
        # The sequence accumulators (like the Table 1 counters) were
        # computed at ingestion over the whole ordered stream; worker
        # shards carry none, so merging never double-counts them.
        study.datasets[name] = DatasetStats(
            name=name, total=log.total, valid=log.valid, unique=log.unique,
            streaks=_claim_streaks(name, log),
        )
    initializer = partial(_init_measure_worker, options)

    def drain(results: Iterable) -> None:
        """Tree-merge partial studies as they arrive, flushing store rows."""
        merger = _TreeMerger(_merge_pair)
        for result in results:
            if isinstance(result, bytes):
                if transport is not None:
                    transport.chunks_shipped += 1
                    transport.shipped_bytes += len(result)
                result = pickle.loads(result)
            shard, rows = result
            started = perf_counter()
            merger.push(shard)
            if transport is not None:
                transport.merge_seconds += perf_counter() - started
            if store is not None:
                store.put_many(rows)
        started = perf_counter()
        tail = merger.result()
        if tail is not None:
            study.merge(tail)
        if transport is not None:
            transport.merge_seconds += perf_counter() - started

    def chunk_payloads() -> Iterator[Tuple[str, List[ParsedQuery], bool, AnalysisOptions]]:
        """Lazily yield (dataset, chunk, dedup, options) payloads."""
        for name, log in logs.items():
            for chunk in iter_scheduled_chunks(log.unique_queries(), schedule):
                yield (name, chunk, dedup, options)

    if pool is not None and workers != 1:
        # Persistent pool: workers forked before this run's logs
        # existed, so chunks of the unique stream are shipped in and
        # compact snapshot payloads come back (see _pool_measure_chunk).
        drain(
            imap_bounded(
                _pool_measure_chunk, chunk_payloads(), workers, pool=pool
            )
        )
        return study

    if workers != 1 and _fork_context() is not None:
        # Per-call fork path: ship (name, start, stop) index slices and
        # let the workers read the logs from inherited memory — no
        # pickling of AST chunks into the pool, only the small partial
        # studies back.
        def slice_payloads() -> Iterator[Tuple[str, int, int, bool, AnalysisOptions]]:
            """Lazily yield (dataset, start, stop) index-slice payloads."""
            for name, log in logs.items():
                start = 0
                while start < log.unique:
                    stop = min(start + next(schedule), log.unique)
                    yield (name, start, stop, dedup, options)
                    start = stop

        global _SHARED_LOGS
        with _SHARED_LOGS_LOCK:
            _SHARED_LOGS = logs
            try:
                drain(
                    imap_bounded(
                        _measure_slice,
                        slice_payloads(),
                        workers,
                        initializer=initializer,
                    )
                )
            finally:
                _SHARED_LOGS = None
        return study

    if workers == 1:
        # In-process: one run-local cache shared across all chunks and
        # datasets, like the serial study — duplicate shapes reuse
        # their structure results.  Run-local (not module state), so
        # successive runs with different options can't interfere.  With
        # a store, the run cache reads *and* queues writes through the
        # parent handle directly.
        run_cache: StructureCache
        if store is not None:
            run_cache = StoreBackedStructureCache(options.cache_size, store)
        else:
            run_cache = StructureCache(options.cache_size)

        def measure_payload(payload):
            """Measure one chunk in-process, sharing the run-local cache."""
            name, chunk, payload_dedup, payload_options = payload
            partial_study = measure_chunk(
                name, chunk, dedup=payload_dedup, options=payload_options,
                cache=run_cache,
            )
            return partial_study, pending_rows(run_cache)

        worker_fn = measure_payload
    else:
        worker_fn = _measure_chunk

    drain(
        imap_bounded(worker_fn, chunk_payloads(), workers, initializer=initializer)
    )
    return study
