"""Sharded, multiprocessing-capable execution of the pipeline and study.

The paper's headline corpus is ~180M queries; a strictly serial
clean → parse → measure pass bounds corpus size by one core and one
heap.  This module splits the work into chunks, runs them on worker
processes, and combines the partial results through the mergeable
accumulators (:class:`~repro.logs.pipeline.LogShard`,
:class:`~repro.analysis.study.DatasetStats`,
:class:`~repro.analysis.study.CorpusStudy`):

* :func:`build_query_log_parallel` — clean → parse → dedup over chunks
  of raw entries.  Deduplication is two-phase: each shard builds its
  own text → count map and the maps are merged in stream order before
  the unique stream is materialized.
* :func:`study_corpus_parallel` — the full corpus study over chunks of
  the (already deduplicated) per-dataset query streams.

Chunks are always merged in stream order, so both functions are
guaranteed to reproduce the serial result exactly — including counter
key order, which breaks ties in table rendering.  ``workers=1`` (or a
single chunk) never touches :mod:`multiprocessing`: it runs the same
chunked code path serially and deterministically in-process.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..logs.pipeline import LogShard, ParseCache, ParsedQuery, QueryLog, process_entries
from .study import CorpusStudy, DatasetStats, _analyze_query

__all__ = [
    "build_query_log_parallel",
    "build_query_logs_parallel",
    "iter_chunks",
    "measure_chunk",
    "merge_shards",
    "merge_studies",
    "resolve_workers",
    "study_corpus_parallel",
]

#: Target number of chunks handed to each worker.  More than one chunk
#: per worker smooths load imbalance (shape/treewidth analysis cost
#: varies wildly per query); the value is deterministic so chunk
#: boundaries — and therefore merge order — never depend on timing.
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker count (``None``/``0`` → all CPUs)."""
    if workers is None or workers <= 0:
        return os.cpu_count() or 1
    return workers


def default_chunk_size(n_items: int, workers: int) -> int:
    """Deterministic chunk size: ~`_CHUNKS_PER_WORKER` chunks per worker."""
    return max(1, -(-n_items // (workers * _CHUNKS_PER_WORKER)))


def iter_chunks(items: Sequence, chunk_size: int) -> Iterator[List]:
    """Split *items* into contiguous chunks of at most *chunk_size*."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, len(items), chunk_size):
        yield list(items[start : start + chunk_size])


# ---------------------------------------------------------------------------
# Worker entry points (top-level so they pickle under spawn and fork)
# ---------------------------------------------------------------------------


#: Per-worker parse cache, created by the pool initializer so it lives
#: for the whole pool: duplicates recurring across a worker's chunks are
#: parsed once.  Stays ``None`` in the parent, so the serial fallback
#: keeps its per-chunk caches and successive calls can't leak prefixes.
_WORKER_PARSE_CACHE: Optional[ParseCache] = None


def _init_parse_worker() -> None:
    global _WORKER_PARSE_CACHE
    _WORKER_PARSE_CACHE = ParseCache()


def _parse_chunk(
    payload: Tuple[str, List[str], Optional[Dict[str, str]]],
) -> Tuple[str, LogShard]:
    name, texts, extra_prefixes = payload
    return name, process_entries(
        texts, extra_prefixes=extra_prefixes, cache=_WORKER_PARSE_CACHE
    )


def _measure_chunk(payload: Tuple[str, List[ParsedQuery], bool]) -> CorpusStudy:
    dataset, queries, dedup = payload
    return measure_chunk(dataset, queries, dedup=dedup)


def measure_chunk(
    dataset: str, queries: Iterable[ParsedQuery], dedup: bool = True
) -> CorpusStudy:
    """Measure one chunk of a dataset's unique stream into a partial study."""
    study = CorpusStudy(dedup=dedup)
    stats = DatasetStats(name=dataset)
    study.datasets[dataset] = stats
    for parsed in queries:
        _analyze_query(study, stats, parsed, 1 if dedup else parsed.count)
    return study


#: Payloads shared with fork-started workers through inherited memory.
#: Set immediately before the pool is created (children snapshot the
#: parent's address space at fork), cleared right after; workers index
#: into it so chunk inputs are never pickled.  The lock serializes
#: concurrent parallel runs in one process: a second thread must not
#: swap the global between another run's fork and its map.
_SHARED_PAYLOADS: Optional[List] = None
_SHARED_LOCK = threading.Lock()


def _call_shared(args) -> object:
    worker_fn, index = args
    assert _SHARED_PAYLOADS is not None
    return worker_fn(_SHARED_PAYLOADS[index])


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return None


def _run_tasks(worker_fn, payloads: List, workers: int, initializer=None) -> List:
    """Run *worker_fn* over *payloads*, on processes when it pays off.

    ``workers=1`` (or a single payload) is the deterministic serial
    fallback: same code path, same order, no multiprocessing.  With a
    ``fork`` start method the payloads travel to workers via inherited
    memory instead of pickling; only results cross process boundaries.
    """
    if workers == 1 or len(payloads) <= 1:
        return [worker_fn(payload) for payload in payloads]
    global _SHARED_PAYLOADS
    max_workers = min(workers, len(payloads))
    context = _fork_context()
    if context is not None:
        with _SHARED_LOCK:
            _SHARED_PAYLOADS = payloads
            try:
                with ProcessPoolExecutor(
                    max_workers=max_workers, mp_context=context, initializer=initializer
                ) as executor:
                    return list(
                        executor.map(
                            _call_shared,
                            [(worker_fn, i) for i in range(len(payloads))],
                        )
                    )
            finally:
                _SHARED_PAYLOADS = None
    with ProcessPoolExecutor(max_workers=max_workers, initializer=initializer) as executor:
        return list(executor.map(worker_fn, payloads))


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------


def merge_shards(shards: Iterable[LogShard]) -> LogShard:
    """Merge pipeline shards in stream order."""
    merged = LogShard()
    for shard in shards:
        merged.merge(shard)
    return merged


def merge_studies(studies: Iterable[CorpusStudy], dedup: bool = True) -> CorpusStudy:
    """Merge partial studies in stream order."""
    merged = CorpusStudy(dedup=dedup)
    for study in studies:
        merged.merge(study)
    return merged


# ---------------------------------------------------------------------------
# Public drivers
# ---------------------------------------------------------------------------


def build_query_logs_parallel(
    corpora: Mapping[str, Iterable[str]],
    extra_prefixes: Optional[Dict[str, str]] = None,
    *,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> Dict[str, QueryLog]:
    """Sharded clean → parse → dedup over a whole corpus of raw logs.

    All datasets share one worker pool, so small logs don't each pay
    the pool start-up cost.  Per dataset, shards are merged in stream
    order: the result is identical to the serial pipeline.
    """
    workers = resolve_workers(workers)
    materialized = {name: list(texts) for name, texts in corpora.items()}
    size = chunk_size
    if size is None:
        # Size chunks against the whole corpus, not per dataset: many
        # small logs must not explode into many tiny shards (each shard
        # re-parses its own duplicates and pickles its own ASTs back).
        total = sum(len(texts) for texts in materialized.values())
        size = default_chunk_size(total, workers)
    payloads = []
    for name, texts in materialized.items():
        for chunk in iter_chunks(texts, size):
            payloads.append((name, chunk, extra_prefixes))
    results = _run_tasks(_parse_chunk, payloads, workers, _init_parse_worker)
    merged: Dict[str, LogShard] = {name: LogShard() for name in corpora}
    for name, shard in results:
        merged[name].merge(shard)
    return {name: shard.to_query_log(name) for name, shard in merged.items()}


def build_query_log_parallel(
    name: str,
    raw_queries: Iterable[str],
    extra_prefixes: Optional[Dict[str, str]] = None,
    *,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> QueryLog:
    """Sharded clean → parse → dedup, identical to the serial pipeline."""
    logs = build_query_logs_parallel(
        {name: raw_queries},
        extra_prefixes,
        workers=workers,
        chunk_size=chunk_size,
    )
    return logs[name]


def study_corpus_parallel(
    logs: Mapping[str, QueryLog],
    dedup: bool = True,
    *,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> CorpusStudy:
    """Sharded corpus study, identical to the serial :func:`study_corpus`.

    The Table 1 counters (Total/Valid/Unique) are carried by the
    pre-created per-dataset stats; worker shards contribute measurement
    counters only, so merging never double-counts the pipeline totals.
    """
    workers = resolve_workers(workers)
    study = CorpusStudy(dedup=dedup)
    size = chunk_size
    if size is None:
        total = sum(log.unique for log in logs.values())
        size = default_chunk_size(total, workers)
    payloads: List[Tuple[str, List[ParsedQuery], bool]] = []
    for name, log in logs.items():
        study.datasets[name] = DatasetStats(
            name=name, total=log.total, valid=log.valid, unique=log.unique
        )
        for chunk in iter_chunks(list(log.unique_queries()), size):
            payloads.append((name, chunk, dedup))
    partials = _run_tasks(_measure_chunk, payloads, workers)
    for partial in partials:
        study.merge(partial)
    return study
