"""Refined streak metrics (paper §8's stated future work).

The paper measures only streak *lengths* and notes that "more complex
metrics on the similarity of the queries within each streak" are future
work.  This module implements the natural candidates:

* **step distances** — normalized Levenshtein between consecutive
  streak members (how big each refinement step was);
* **drift** — normalized distance between the first and last member
  (how far the query traveled overall; low drift with many steps means
  the user circled, high drift means directed refinement);
* **span** — log positions covered, and **density** — members per
  position (1.0 = perfectly consecutive);
* **keyword evolution** — which query-form/modifier keywords appeared
  or disappeared between the seed and the final query (e.g. the paper's
  hypothesis that ORDER BY shows up late in the "development process").
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence, Set, Tuple

from .streaks import Streak, levenshtein, strip_prefixes

__all__ = ["StreakMetrics", "compute_streak_metrics", "keyword_evolution"]

_KEYWORD_RE = re.compile(
    r"\b(SELECT|ASK|CONSTRUCT|DESCRIBE|DISTINCT|LIMIT|OFFSET|ORDER|GROUP|"
    r"HAVING|FILTER|OPTIONAL|UNION|GRAPH|MINUS)\b",
    re.IGNORECASE,
)


def _normalized_distance(a: str, b: str) -> float:
    stripped_a, stripped_b = strip_prefixes(a), strip_prefixes(b)
    longest = max(len(stripped_a), len(stripped_b))
    if longest == 0:
        return 0.0
    distance = levenshtein(stripped_a, stripped_b)
    assert distance is not None
    return distance / longest


def _surface_keywords(text: str) -> Set[str]:
    return {m.group(1).upper() for m in _KEYWORD_RE.finditer(text)}


@dataclass(frozen=True)
class StreakMetrics:
    """Summary metrics of one streak against its source log."""

    length: int
    span: int  # last position - first position + 1
    density: float  # length / span
    drift: float  # normalized distance first->last
    mean_step: float  # mean normalized distance between neighbors
    max_step: float
    keywords_added: Tuple[str, ...]
    keywords_removed: Tuple[str, ...]

    @property
    def is_directed(self) -> bool:
        """Directed refinement: the query moved further overall than
        its average single step (it did not just oscillate)."""
        return self.drift >= self.mean_step


def compute_streak_metrics(
    streak: Streak, log: Sequence[str]
) -> StreakMetrics:
    """Compute :class:`StreakMetrics` for *streak* over its *log*."""
    texts = [log[index] for index in streak.indices]
    steps = [
        _normalized_distance(a, b) for a, b in zip(texts, texts[1:])
    ]
    drift = _normalized_distance(texts[0], texts[-1]) if len(texts) > 1 else 0.0
    added, removed = keyword_evolution(texts[0], texts[-1])
    span = streak.indices[-1] - streak.indices[0] + 1
    return StreakMetrics(
        length=len(texts),
        span=span,
        density=len(texts) / span,
        drift=drift,
        mean_step=sum(steps) / len(steps) if steps else 0.0,
        max_step=max(steps) if steps else 0.0,
        keywords_added=added,
        keywords_removed=removed,
    )


def keyword_evolution(first: str, last: str) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Keywords present at the end but not the start, and vice versa."""
    start = _surface_keywords(first)
    end = _surface_keywords(last)
    return tuple(sorted(end - start)), tuple(sorted(start - end))
