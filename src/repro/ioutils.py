"""Small filesystem helpers shared by everything that writes to disk.

Every file this package persists — study snapshots (plain or gzip),
the structure store's sidecar metadata — goes through
:func:`atomic_write_text` / :func:`atomic_write_bytes`: write to a
same-directory temporary file, flush + fsync, then ``os.replace`` over
the destination.  A crash or interrupt mid-write can therefore never
leave a truncated file behind; readers see either the old content or
the new content, never a prefix of the new one.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path: Union[str, Path], payload: bytes) -> None:
    """Write *payload* to *path* atomically.

    The temporary file lives in the destination's directory so the
    final ``os.replace`` is a same-filesystem rename (atomic on POSIX).
    On any failure — including :class:`KeyboardInterrupt` — the
    temporary file is removed and the destination is left untouched.
    """
    target = Path(path)
    handle = tempfile.NamedTemporaryFile(
        mode="wb",
        dir=str(target.parent) or ".",
        prefix=target.name + ".",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:  # pragma: no cover - already renamed or gone
            pass
        raise


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Write *text* to *path* atomically (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))
