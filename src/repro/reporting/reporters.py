"""Pluggable multi-format study reporters.

The text tables of :mod:`repro.reporting.tables` used to be the *only*
way to consume a :class:`~repro.analysis.study.CorpusStudy`.  This
module turns output into a registry of :class:`Reporter` objects —
``text``, ``json``, ``jsonl``, ``csv``, ``markdown`` out of the box —
that all render from the study alone (Table 1 comes from the pipeline
counters carried on ``study.datasets``), so a snapshot loaded from JSON
reports exactly like a freshly computed study.

Contracts:

* ``render_report(study, "text")`` is byte-identical to the historical
  ``render_study(study, logs)`` output for any study produced by the
  drivers (golden-tested) — Table 1 first, then the paper tables.
* Every reporter is a pure function of the study: same study, same
  bytes, so serial/sharded/streamed/reloaded runs compare equal.
* Third-party formats plug in via :func:`register_reporter`; the CLI
  (``repro analyze --format``, ``repro report --format``) picks them
  up from the registry automatically.
"""

from __future__ import annotations

import csv
import io
import json
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..analysis.study import CorpusStudy
from ..exceptions import ReporterRegistrationError
from .tables import (
    _pct,
    figure5_rows,
    render_coverage_caveats,
    render_study,
    render_table1_from_study,
    table1_rows,
)

__all__ = [
    "Reporter",
    "TextReporter",
    "JsonReporter",
    "JsonlReporter",
    "CsvReporter",
    "MarkdownReporter",
    "DiffReporter",
    "get_reporter",
    "register_reporter",
    "render_diff",
    "render_report",
    "render_rows_diff",
    "reporter_names",
    "study_long_rows",
]


@runtime_checkable
class Reporter(Protocol):
    """One output format for a corpus study.

    Implementations must be pure: ``render`` may not mutate the study
    and must return the same bytes for equal studies."""

    #: Registry key, the vocabulary of ``--format``.
    name: str
    #: One-line description for ``--help`` and error messages.
    description: str

    def render(self, study: CorpusStudy) -> str:
        """Render *study* to a complete output document."""
        ...


class TextReporter:
    """The paper-style monospace tables (the historical CLI output)."""

    name = "text"
    description = "paper-style monospace tables (default)"

    def render(self, study: CorpusStudy) -> str:
        """Render the monospace report (Table 1 + the paper tables)."""
        # Table 1 from the stats the pipeline stamped onto the study,
        # then the same block sequence render_study(study, logs) built:
        # byte-identical to the pre-registry CLI output.
        return render_table1_from_study(study) + "\n\n" + render_study(study)


class JsonReporter:
    """The versioned snapshot itself: machine-readable, reloadable."""

    name = "json"
    description = "versioned JSON snapshot (loadable by `repro report`/`merge`)"

    def render(self, study: CorpusStudy) -> str:
        """Render the versioned JSON snapshot."""
        return json.dumps(study.to_dict(), indent=2) + "\n"


class JsonlReporter:
    """One JSON object per dataset: stream-friendly per-source stats."""

    name = "jsonl"
    description = "one JSON line per dataset (per-source counters + shares)"

    def render(self, study: CorpusStudy) -> str:
        """Render one JSON line per dataset."""
        lines = []
        for name, stats in study.datasets.items():
            record = {"dataset": name}
            data = stats.to_dict()
            del data["name"]
            # The raw accumulator is snapshot detail; per-dataset lines
            # get the digest (and nothing at all on streak-less runs,
            # keeping pre-streaks output byte-identical).
            del data["streaks"]
            record.update(data)
            record["select_ask_share"] = round(stats.select_ask_share, 6)
            record["average_triples"] = round(stats.average_triples, 6)
            if stats.streaks is not None:
                record["streaks"] = {
                    "count": stats.streaks.streak_count,
                    "longest": stats.streaks.longest,
                    "histogram": stats.streaks.length_histogram(),
                }
            lines.append(json.dumps(record))
        return "\n".join(lines) + "\n" if lines else ""


def study_long_rows(study: CorpusStudy) -> List[Tuple[str, str, str, str]]:
    """Every table of the study flattened to (section, row, column, value).

    The long format makes every measurement one addressable cell —
    trivially loadable into pandas/SQL — without inventing a schema per
    table.  Percentages are fixed to 4 decimals so output is stable.
    """
    rows: List[Tuple[str, str, str, str]] = []

    def pct(value: float) -> str:
        """Fixed four-decimal percentage (stable CSV bytes)."""
        return f"{value:.4f}"

    for name, total, valid, unique in table1_rows(study):
        rows.append(("table1", name, "total", str(total)))
        rows.append(("table1", name, "valid", str(valid)))
        rows.append(("table1", name, "unique", str(unique)))
    for keyword, absolute, relative in study.keyword_table():
        rows.append(("table2", keyword, "absolute", str(absolute)))
        rows.append(("table2", keyword, "relative_pct", pct(relative)))
    for name, stats in study.datasets.items():
        rows.append(("figure1", name, "select_ask_share_pct",
                     pct(100.0 * stats.select_ask_share)))
        rows.append(("figure1", name, "average_triples",
                     f"{stats.average_triples:.4f}"))
        for bucket, share in stats.triple_hist_percentages().items():
            rows.append(("figure1", name, f"triples_{bucket}_pct", pct(share)))
    for label, count, relative in study.operator_table():
        rows.append(("table3", label, "absolute", str(count)))
        rows.append(("table3", label, "relative_pct", pct(relative)))
    for letter, name in (("O", "CPF+O"), ("G", "CPF+G"), ("U", "CPF+U")):
        increment, relative = study.cpf_plus(letter)
        rows.append(("table3", name, "absolute", str(increment)))
        rows.append(("table3", name, "relative_pct", pct(relative)))
    rows.append(("table3", "other combinations", "absolute",
                 str(study.operator_other_combination)))
    rows.append(("table3", "other features", "absolute",
                 str(study.operator_other_features)))
    low, high = study.projection_bounds()
    rows.append(("sec4.4", "subqueries", "absolute", str(study.subquery_count)))
    rows.append(("sec4.4", "projection", "lower_pct", pct(low)))
    rows.append(("sec4.4", "projection", "upper_pct", pct(high)))
    for label, count in (
        ("AOF", study.aof_count),
        ("CQ", study.cq_count),
        ("CQF", study.cqf_count),
        ("CQOF", study.cqof_count),
        ("well-designed", study.well_designed_count),
        ("interface width > 1", study.wide_interface_count),
    ):
        rows.append(("sec5.2", label, "absolute", str(count)))
    for fragment, sizes in (
        ("CQ", study.cq_sizes),
        ("CQF", study.cqf_sizes),
        ("CQOF", study.cqof_sizes),
    ):
        for size, count in sizes.items():
            rows.append(("figure5", fragment, f"size_{size}", str(count)))
    for fragment in ("CQ", "CQF", "CQOF"):
        for shape, count, relative in study.shape_table(fragment):
            rows.append((f"table4:{fragment}", shape, "absolute", str(count)))
            rows.append((f"table4:{fragment}", shape, "relative_pct", pct(relative)))
    for length, count in sorted(study.girth_hist.items()):
        rows.append(("sec6.1", f"shortest_cycle_{length}", "absolute", str(count)))
    rows.append(("sec6.1", "single_edge_cq", "absolute", str(study.single_edge_cq)))
    rows.append(("sec6.1", "single_edge_cq_with_constants", "absolute",
                 str(study.single_edge_cq_with_constants)))
    for width, count in sorted(study.hypertree_widths.items()):
        rows.append(("sec6.2", f"hypertree_width_{width}", "absolute", str(count)))
    for nodes, count in sorted(study.decomposition_nodes.items()):
        rows.append(("sec6.2", f"decomposition_nodes_{nodes}", "absolute", str(count)))
    rows.append(("table5", "property_paths_total", "absolute",
                 str(study.property_path_total)))
    for form, count in study.simple_path_forms.items():
        rows.append(("table5", f"simple_{form}", "absolute", str(count)))
    for name, count, relative, k_range in study.path_table():
        rows.append(("table5", name, "absolute", str(count)))
        rows.append(("table5", name, "relative_pct", pct(relative)))
        if k_range:
            rows.append(("table5", name, "k_range", k_range))
    for name, histogram in study.streak_histograms().items():
        for bucket, count in histogram.items():
            rows.append(("table6", bucket, name, str(count)))
        stats = study.datasets[name]
        rows.append(("table6", "total streaks", name,
                     str(stats.streaks.streak_count)))
        rows.append(("table6", "longest streak", name,
                     str(stats.streaks.longest)))
    rows.append(("coverage", "shape_limit_skipped", "absolute",
                 str(study.shape_limit_skipped)))
    rows.append(("coverage", "non_ctract_truncated", "absolute",
                 str(study.non_ctract_truncated)))
    return rows


def render_rows_diff(
    old: Sequence[Tuple[str, str, str, str]],
    new: Sequence[Tuple[str, str, str, str]],
) -> str:
    """Cell-level difference of two :func:`study_long_rows` listings.

    Every measurement of the study is one ``(section, row, column)``
    cell; the diff lists, per section and in the *new* study's
    presentation order, the cells that appeared (``+``), vanished
    (``-``), or changed value (``old -> new``).  Identical studies
    produce the empty string, so ``repro watch`` cycles that ingested
    nothing print nothing — the property the CI round-trip check pins.
    """
    old_cells = {(section, row, column): value
                 for section, row, column, value in old}
    new_cells = {(section, row, column): value
                 for section, row, column, value in new}
    lines: List[str] = []
    section_lines: List[str] = []
    current: str = ""

    def flush() -> None:
        if section_lines:
            lines.append(f"{current}:")
            lines.extend(section_lines)
            section_lines.clear()

    seen_keys = set()
    for section, row, column, value in new:
        key = (section, row, column)
        seen_keys.add(key)
        before = old_cells.get(key)
        if before == value:
            continue
        if section != current:
            flush()
            current = section
        label = f"{row} / {column}"
        if before is None:
            section_lines.append(f"  + {label} = {value}")
        else:
            section_lines.append(f"    {label}: {before} -> {value}")
    flush()
    removed = [
        (section, row, column, value)
        for section, row, column, value in old
        if (section, row, column) not in seen_keys
    ]
    for section, row, column, value in removed:
        if section != current:
            flush()
            current = section
            lines.append(f"{current}:")
        lines.append(f"  - {row} / {column} = {value}")
    return "\n".join(lines) + "\n" if lines else ""


def render_diff(old: Optional[CorpusStudy], new: CorpusStudy) -> str:
    """What changed in the paper tables between two studies.

    *old* may be ``None`` (everything is new — the first watch cycle's
    view).  Equal studies render as the empty string."""
    return render_rows_diff(
        [] if old is None else study_long_rows(old), study_long_rows(new)
    )


class DiffReporter:
    """Change report against a baseline study (``repro watch`` cycles).

    The registry instantiates this with no baseline — rendering then
    shows every cell as new, which is the honest diff against "no
    study".  Programmatic users (and the watch loop) construct their
    own ``DiffReporter(baseline)`` or call :func:`render_diff`.
    """

    name = "diff"
    description = "cells added/changed/removed vs a baseline study"

    def __init__(self, baseline: Optional[CorpusStudy] = None) -> None:
        self.baseline = baseline

    def render(self, study: CorpusStudy) -> str:
        """Render the cell diff of *study* against the baseline."""
        return render_diff(self.baseline, study)


class CsvReporter:
    """Long-format CSV: one measurement cell per row."""

    name = "csv"
    description = "long-format CSV (section,row,column,value)"

    def render(self, study: CorpusStudy) -> str:
        """Render the long-format CSV document."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(("section", "row", "column", "value"))
        writer.writerows(study_long_rows(study))
        return buffer.getvalue()


def _md_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "| " + " | ".join("---" for _ in headers) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


class MarkdownReporter:
    """GitHub-flavored markdown: the paper tables as pipe tables."""

    name = "markdown"
    description = "GitHub-flavored markdown tables"

    def render(self, study: CorpusStudy) -> str:
        """Render the markdown report."""
        corpus = "Unique" if study.dedup else "Valid"
        blocks = [f"# SPARQL log study ({corpus} corpus)"]
        blocks.append(
            "## Table 1: Sizes of query logs\n\n"
            + _md_table(
                ("Source", "Total #Q", "Valid #Q", "Unique #Q"),
                [
                    (name, f"{total:,}", f"{valid:,}", f"{unique:,}")
                    for name, total, valid, unique in table1_rows(study)
                ],
            )
        )
        blocks.append(
            "## Table 2: Keyword count in queries\n\n"
            + _md_table(
                ("Element", "Absolute", "Relative"),
                [
                    (keyword, f"{absolute:,}", _pct(relative))
                    for keyword, absolute, relative in study.keyword_table()
                ],
            )
        )
        summary_rows = [
            (
                name,
                f"{100.0 * stats.select_ask_share:.2f}%",
                f"{stats.average_triples:.2f}",
            )
            for name, stats in study.datasets.items()
        ]
        blocks.append(
            "## Figure 1: S/A share and average triples\n\n"
            + _md_table(("Dataset", "S/A", "Avg#T"), summary_rows)
        )
        operator_rows = [
            (label, f"{count:,}", _pct(relative))
            for label, count, relative in study.operator_table()
        ]
        for letter, label in (("O", "CPF+O"), ("G", "CPF+G"), ("U", "CPF+U")):
            increment, relative = study.cpf_plus(letter)
            operator_rows.append((label, f"+{increment:,}", f"+{relative:.2f}%"))
        blocks.append(
            "## Table 3: Sets of operators used in queries\n\n"
            + _md_table(("Operator Set", "Absolute", "Relative"), operator_rows)
        )
        low, high = study.projection_bounds()
        blocks.append(
            "## Sec 4.4: Subqueries and projection\n\n"
            + _md_table(
                ("Measure", "Value"),
                [
                    ("queries with subqueries", f"{study.subquery_count:,}"),
                    ("projection bounds", f"{low:.2f}%-{high:.2f}%"),
                ],
            )
        )
        sa = study.select_ask_count or 1
        aof = study.aof_count or 1
        blocks.append(
            "## Sec 5.2: Query fragments\n\n"
            + _md_table(
                ("Fragment", "Absolute", "Relative"),
                [
                    ("AOF patterns", f"{study.aof_count:,}",
                     _pct(100.0 * study.aof_count / sa)),
                    ("CQ (of AOF)", f"{study.cq_count:,}",
                     _pct(100.0 * study.cq_count / aof)),
                    ("CQF (of AOF)", f"{study.cqf_count:,}",
                     _pct(100.0 * study.cqf_count / aof)),
                    ("well-designed (of AOF)", f"{study.well_designed_count:,}",
                     _pct(100.0 * study.well_designed_count / aof)),
                    ("CQOF (of AOF)", f"{study.cqof_count:,}",
                     _pct(100.0 * study.cqof_count / aof)),
                    ("interface width > 1", f"{study.wide_interface_count:,}",
                     _pct(100.0 * study.wide_interface_count / aof)),
                ],
            )
        )
        blocks.append(
            "## Figure 5: Size of CQ-like queries with at least two triples\n\n"
            + _md_table(("size", "CQ", "CQF", "CQOF"), figure5_rows(study))
        )
        for fragment in ("CQ", "CQF", "CQOF"):
            blocks.append(
                f"## Table 4 ({fragment}): cumulative shape analysis\n\n"
                + _md_table(
                    ("Shape", "#Queries", "Relative %"),
                    [
                        (shape, f"{count:,}", _pct(relative))
                        for shape, count, relative in study.shape_table(fragment)
                    ],
                )
            )
        girth_rows = [
            (f"shortest cycle = {length}", f"{count:,}")
            for length, count in sorted(study.girth_hist.items())
        ]
        constants = study.single_edge_cq_with_constants
        total_single = study.single_edge_cq or 1
        blocks.append(
            "## Sec 6.1: Cycles and constants\n\n"
            + _md_table(
                ("Measure", "#Queries"),
                girth_rows
                + [
                    ("single-edge CQs", f"{study.single_edge_cq:,}"),
                    (
                        "single-edge CQs using constants",
                        f"{constants:,} ({100.0 * constants / total_single:.2f}%)",
                    ),
                ],
            )
        )
        blocks.append(
            "## Sec 6.2: Hypertree width of predicate-variable CQOF queries\n\n"
            + _md_table(
                ("Measure", "#Queries"),
                [
                    (f"hypertree width {width}", f"{count:,}")
                    for width, count in sorted(study.hypertree_widths.items())
                ]
                + [
                    (f"decomposition nodes = {nodes}", f"{count:,}")
                    for nodes, count in sorted(study.decomposition_nodes.items())
                ],
            )
        )
        blocks.append(
            "## Table 5: Structure of navigational property paths\n\n"
            + _md_table(
                ("Expression Type", "Absolute", "Relative", "k"),
                [
                    (name, f"{count:,}", _pct(relative), k_range)
                    for name, count, relative, k_range in study.path_table()
                ],
            )
        )
        histograms = study.streak_histograms()
        if histograms:
            names = list(histograms)
            buckets = list(next(iter(histograms.values())))
            table6 = _md_table(
                ("Streak length", *names),
                [
                    (bucket, *(f"{histograms[name][bucket]:,}" for name in names))
                    for bucket in buckets
                ],
            )
            longest = study.streak_longest()
            if longest:
                table6 += f"\n\nLongest streak: {longest:,} queries."
            blocks.append(
                "## Table 6: Length of streaks in single-day log files\n\n" + table6
            )
        caveats = render_coverage_caveats(study)
        if caveats is not None:
            blocks.append(
                "## Coverage caveats\n\n"
                + _md_table(
                    ("Limit", "Dropped"),
                    [
                        ("queries over the shape-node limit",
                         f"{study.shape_limit_skipped:,}"),
                        ("non-Ctract paths beyond the sample cap",
                         f"{study.non_ctract_truncated:,}"),
                    ],
                )
            )
        return "\n\n".join(blocks) + "\n"


#: The built-in formats, in presentation order.
_REGISTRY: Dict[str, Reporter] = {}


def register_reporter(reporter: Reporter, *, replace: bool = False) -> None:
    """Add *reporter* to the registry under ``reporter.name``.

    Registering a taken name raises
    :class:`~repro.exceptions.ReporterRegistrationError` unless
    ``replace=True`` — accidental shadowing of a built-in format should
    be loud."""
    if not replace and reporter.name in _REGISTRY:
        raise ReporterRegistrationError(
            f"reporter {reporter.name!r} is already registered"
        )
    _REGISTRY[reporter.name] = reporter


for _reporter in (
    TextReporter(),
    JsonReporter(),
    JsonlReporter(),
    CsvReporter(),
    MarkdownReporter(),
    DiffReporter(),
):
    register_reporter(_reporter)


def reporter_names() -> Tuple[str, ...]:
    """Registered format names, in registration order."""
    return tuple(_REGISTRY)


def get_reporter(name: str) -> Reporter:
    """Look up a format; unknown names raise with the available list."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown report format {name!r} "
            f"(available: {', '.join(_REGISTRY)})"
        ) from None


def render_report(study: CorpusStudy, format: str = "text") -> str:
    """Render *study* in the named *format* (the one-call entry point)."""
    return get_reporter(format).render(study)
