"""Paper-style table and figure renderers.

Every benchmark prints its result through one of these functions, so
the rows come out in the same shape as the paper's tables — experiment
id, row labels, absolute counts, relative percentages — making the
paper-vs-measured comparison in EXPERIMENTS.md mechanical.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from ..analysis.passes import PassProfile
from ..analysis.study import CorpusStudy
from ..logs.pipeline import QueryLog

__all__ = [
    "render_study",
    "render_table",
    "render_table1",
    "render_table1_from_study",
    "table1_rows",
    "render_table2",
    "render_figure1",
    "figure5_rows",
    "render_table3",
    "render_projection",
    "render_fragments",
    "render_figure5",
    "render_table4",
    "render_table5",
    "render_table6",
    "render_table6_from_study",
    "render_hypertree",
    "render_figure3",
    "render_coverage_caveats",
    "render_pass_profile",
]


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Monospace table with a title rule."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialized:
        lines.append(
            "  ".join(cell.rjust(widths[index]) if index else cell.ljust(widths[0])
                      for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_study(
    study: CorpusStudy, logs: Optional[Mapping[str, QueryLog]] = None
) -> str:
    """The full paper report for one study, as a single string.

    The output is a pure function of the study (plus the optional logs
    for Table 1), so serial and sharded runs can be compared
    byte-for-byte.
    """
    blocks: List[str] = []
    if logs is not None:
        blocks.append(render_table1(logs))
    blocks.extend(
        [
            render_table2(study),
            render_figure1(study),
            render_table3(study),
            render_projection(study),
            render_fragments(study),
            render_figure5(study),
            render_table4(study),
            render_hypertree(study),
            render_table5(study),
        ]
    )
    streaks = render_table6_from_study(study)
    if streaks is not None:
        blocks.append(streaks)
    caveats = render_coverage_caveats(study)
    if caveats is not None:
        blocks.append(caveats)
    return "\n\n".join(blocks)


def _pct(value: float) -> str:
    if 0 < value < 0.005:
        return "<0.01%"
    return f"{value:.2f}%"


def table1_rows(study: CorpusStudy) -> List[Tuple[str, int, int, int]]:
    """Table 1 `(source, total, valid, unique)` rows (with a Total row)
    from the per-dataset pipeline counters carried on the study."""
    rows = []
    total = valid = unique = 0
    for name, stats in study.datasets.items():
        rows.append((name, stats.total, stats.valid, stats.unique))
        total += stats.total
        valid += stats.valid
        unique += stats.unique
    rows.append(("Total", total, valid, unique))
    return rows


def _render_table1_rows(rows: Iterable[Tuple[str, int, int, int]]) -> str:
    return render_table(
        "Table 1: Sizes of query logs in our corpus",
        ("Source", "Total #Q", "Valid #Q", "Unique #Q"),
        [
            (name, f"{total:,}", f"{valid:,}", f"{unique:,}")
            for name, total, valid, unique in rows
        ],
    )


def render_table1(logs: Mapping[str, QueryLog]) -> str:
    """Table 1 from live :class:`QueryLog` objects."""
    rows = []
    total = valid = unique = 0
    for name, log in logs.items():
        rows.append((name, log.total, log.valid, log.unique))
        total += log.total
        valid += log.valid
        unique += log.unique
    rows.append(("Total", total, valid, unique))
    return _render_table1_rows(rows)


def render_table1_from_study(study: CorpusStudy) -> str:
    """Table 1 rendered from ``study.datasets`` instead of live logs.

    ``study_corpus`` copies the pipeline counters (Total/Valid/Unique)
    onto each :class:`DatasetStats`, so for any study the drivers
    produce this is byte-identical to :func:`render_table1` over the
    source logs — which is what lets a snapshot loaded from JSON render
    the exact same report with no :class:`QueryLog` objects around.
    """
    return _render_table1_rows(table1_rows(study))


def render_table2(study: CorpusStudy, title: str = "Table 2") -> str:
    """Table 2: keyword counts with relative shares."""
    rows = [
        (keyword, f"{absolute:,}", _pct(relative))
        for keyword, absolute, relative in study.keyword_table()
    ]
    return render_table(
        f"{title}: Keyword count in queries",
        ("Element", "Absolute", "Relative"),
        rows,
    )


def render_figure1(study: CorpusStudy, title: str = "Figure 1") -> str:
    """Figure 1: triple-count distribution, S/A share, Avg#T."""
    blocks: List[str] = []
    header = ["bucket"] + list(study.datasets)
    hist_rows: List[List[str]] = []
    buckets = [str(i) for i in range(11)] + ["11+"]
    per_dataset = {
        name: stats.triple_hist_percentages()
        for name, stats in study.datasets.items()
    }
    for bucket in buckets:
        row = [bucket] + [
            f"{per_dataset[name][bucket]:.1f}" for name in study.datasets
        ]
        hist_rows.append(row)
    blocks.append(
        render_table(
            f"{title}: % of S/A queries per number of triples", header, hist_rows
        )
    )
    summary_rows = [
        ["S/A"] + [
            f"{100.0 * stats.select_ask_share:.2f}%"
            for stats in study.datasets.values()
        ],
        ["Avg#T"] + [
            f"{stats.average_triples:.2f}" for stats in study.datasets.values()
        ],
    ]
    blocks.append(
        render_table(
            f"{title} (bottom): S/A share and average triples", header, summary_rows
        )
    )
    return "\n\n".join(blocks)


def render_table3(study: CorpusStudy, title: str = "Table 3") -> str:
    """Table 3: operator-set distribution with CPF increments."""
    rows = [
        (label, f"{count:,}", _pct(pct))
        for label, count, pct in study.operator_table()
    ]
    for letter, name in (("O", "CPF+O"), ("G", "CPF+G"), ("U", "CPF+U")):
        increment, pct = study.cpf_plus(letter)
        rows.append((name, f"+{increment:,}", f"+{pct:.2f}%"))
    rows.append(
        (
            "other combinations",
            f"{study.operator_other_combination:,}",
            _pct(100.0 * study.operator_other_combination
                 / (study.select_ask_count or 1)),
        )
    )
    rows.append(
        (
            "other features",
            f"{study.operator_other_features:,}",
            _pct(100.0 * study.operator_other_features
                 / (study.select_ask_count or 1)),
        )
    )
    return render_table(
        f"{title}: Sets of operators used in queries",
        ("Operator Set", "Absolute", "Relative"),
        rows,
    )


def render_projection(study: CorpusStudy) -> str:
    """Sec 4.4: subquery counts and projection bounds."""
    low, high = study.projection_bounds()
    subquery_pct = 100.0 * study.subquery_count / (study.query_count or 1)
    rows = [
        ("queries with subqueries", f"{study.subquery_count:,}", _pct(subquery_pct)),
        ("projection (definite)", f"{study.projection_true:,}", _pct(low)),
        (
            "projection (indeterminate, Bind)",
            f"{study.projection_indeterminate:,}",
            _pct(high - low),
        ),
        ("projection bounds", "", f"{low:.2f}%-{high:.2f}%"),
    ]
    return render_table(
        "Sec 4.4: Subqueries and projection",
        ("Measure", "Absolute", "Relative"),
        rows,
    )


def render_fragments(study: CorpusStudy) -> str:
    """Sec 5.2: fragment sizes relative to S/A and AOF."""
    sa = study.select_ask_count or 1
    aof = study.aof_count or 1
    rows = [
        ("AOF patterns", f"{study.aof_count:,}", _pct(100.0 * study.aof_count / sa)),
        ("CQ (of AOF)", f"{study.cq_count:,}", _pct(100.0 * study.cq_count / aof)),
        ("CQF (of AOF)", f"{study.cqf_count:,}", _pct(100.0 * study.cqf_count / aof)),
        (
            "well-designed (of AOF)",
            f"{study.well_designed_count:,}",
            _pct(100.0 * study.well_designed_count / aof),
        ),
        (
            "CQOF (of AOF)",
            f"{study.cqof_count:,}",
            _pct(100.0 * study.cqof_count / aof),
        ),
        (
            "interface width > 1",
            f"{study.wide_interface_count:,}",
            _pct(100.0 * study.wide_interface_count / aof),
        ),
    ]
    return render_table(
        "Sec 5.2: Query fragments",
        ("Fragment", "Absolute", "Relative"),
        rows,
    )


def figure5_rows(study: CorpusStudy) -> List[Tuple[str, str, str, str]]:
    """Figure 5 `(size, CQ%, CQF%, CQOF%)` rows, shared by renderers."""
    rows: List[Tuple[str, str, str, str]] = []

    def column(sizes, bucket_low: int, bucket_high: Optional[int]) -> str:
        """One Figure 5 percentage cell for a bucket of sizes."""
        multi = {k: v for k, v in sizes.items() if k >= 2}
        denominator = sum(multi.values()) or 1
        if bucket_high is None:
            count = sum(v for k, v in multi.items() if k >= bucket_low)
        else:
            count = sum(
                v for k, v in multi.items() if bucket_low <= k <= bucket_high
            )
        return f"{100.0 * count / denominator:.1f}%"

    for size in range(2, 11):
        rows.append(
            (
                str(size),
                column(study.cq_sizes, size, size),
                column(study.cqf_sizes, size, size),
                column(study.cqof_sizes, size, size),
            )
        )
    rows.append(
        (
            "11+",
            column(study.cq_sizes, 11, None),
            column(study.cqf_sizes, 11, None),
            column(study.cqof_sizes, 11, None),
        )
    )
    one_triple = []
    for sizes in (study.cq_sizes, study.cqf_sizes, study.cqof_sizes):
        total = sum(sizes.values()) or 1
        one_triple.append(f"{100.0 * sizes.get(1, 0) / total:.2f}%")
    rows.append(("(1 triple)", *one_triple))
    return rows


def render_figure5(study: CorpusStudy, title: str = "Figure 5") -> str:
    """Figure 5: size distribution of CQ-like queries."""
    return render_table(
        f"{title}: Size of CQ-like queries with at least two triples",
        ("size", "CQ", "CQF", "CQOF"),
        figure5_rows(study),
    )


def render_table4(study: CorpusStudy, title: str = "Table 4") -> str:
    """Table 4: cumulative shape analysis per fragment, plus girth."""
    blocks = []
    for fragment in ("CQ", "CQF", "CQOF"):
        rows = [
            (shape, f"{count:,}", _pct(pct))
            for shape, count, pct in study.shape_table(fragment)
        ]
        blocks.append(
            render_table(
                f"{title} ({fragment}): cumulative shape analysis",
                ("Shape", "#Queries", "Relative %"),
                rows,
            )
        )
    girth_rows = [
        (f"shortest cycle = {length}", f"{count:,}", "")
        for length, count in sorted(study.girth_hist.items())
    ]
    if girth_rows:
        blocks.append(
            render_table(
                f"{title} (cycles): shortest cycle lengths",
                ("Girth", "#Queries", ""),
                girth_rows,
            )
        )
    constants = study.single_edge_cq_with_constants
    total_single = study.single_edge_cq or 1
    blocks.append(
        f"Single-edge CQs using constants: {constants:,} "
        f"({100.0 * constants / total_single:.2f}% of single-edge CQs)"
    )
    return "\n\n".join(blocks)


def render_table5(study: CorpusStudy, title: str = "Table 5") -> str:
    """Table 5: the navigational property-path taxonomy."""
    rows = [
        (name, f"{count:,}", _pct(pct), k_range)
        for name, count, pct, k_range in study.path_table()
    ]
    preamble = [
        f"Property paths total: {study.property_path_total:,}",
        f"  simple !a: {study.simple_path_forms.get('!a', 0):,}",
        f"  simple ^a: {study.simple_path_forms.get('^a', 0):,}",
        f"  navigational: {sum(study.path_types.values()):,}",
        f"  not in Ctract: {len(study.non_ctract)} "
        f"{study.non_ctract[:3]!r}",
    ]
    return "\n".join(preamble) + "\n\n" + render_table(
        f"{title}: Structure of navigational property paths",
        ("Expression Type", "Absolute", "Relative", "k"),
        rows,
    )


def render_table6(histograms: Mapping[str, Mapping[str, int]]) -> str:
    """Table 6: streak-length histograms, one column per log."""
    names = list(histograms)
    buckets = list(next(iter(histograms.values())).keys()) if histograms else []
    rows = []
    for bucket in buckets:
        rows.append(
            (bucket, *(f"{histograms[name][bucket]:,}" for name in names))
        )
    return render_table(
        "Table 6: Length of streaks in single-day log files",
        ("Streak length", *names),
        rows,
    )


def render_table6_from_study(study: CorpusStudy) -> Optional[str]:
    """The Table 6 block of a study, or ``None`` when no dataset ran
    the ``streaks`` sequence metric.

    Rendered from the per-dataset accumulators carried on
    ``study.datasets`` — so a snapshot reloaded from JSON produces the
    same bytes as the run that detected the streaks, and ``repro
    streaks`` prints exactly this block.
    """
    histograms = study.streak_histograms()
    if not histograms:
        return None
    block = render_table6(histograms)
    longest = study.streak_longest()
    if longest:
        block += f"\n\nlongest streak: {longest} queries"
    return block


def render_hypertree(study: CorpusStudy) -> str:
    """Sec 6.2: hypertree widths of predicate-variable queries."""
    rows = [
        (f"hypertree width {width}", f"{count:,}", "")
        for width, count in sorted(study.hypertree_widths.items())
    ]
    node_rows = [
        (f"decomposition nodes = {nodes}", f"{count:,}", "")
        for nodes, count in sorted(study.decomposition_nodes.items())
    ]
    return render_table(
        "Sec 6.2: Hypertree width of predicate-variable CQOF queries",
        ("Measure", "#Queries", ""),
        rows + node_rows,
    )


def render_dataset_highlights(study: CorpusStudy) -> str:
    """Per-dataset keyword shares: the paper's §4.1 prose observations
    (BritM14's near-universal DISTINCT, BioPortal's GRAPH usage,
    SWDF13/LGD14's LIMIT-heavy traffic, Wikidata's ORDER BY, …)."""
    keywords = ("Distinct", "Limit", "Offset", "Order By", "Filter", "Graph", "Count")
    headers = ("Dataset", *keywords)
    rows = []
    for name, stats in study.datasets.items():
        total = stats.queries or 1
        rows.append(
            (
                name,
                *(
                    f"{100.0 * stats.keyword_counts.get(k, 0) / total:.1f}%"
                    for k in keywords
                ),
            )
        )
    return render_table(
        "Per-dataset keyword usage (paper sec 4.1 observations)",
        headers,
        rows,
    )


def render_coverage_caveats(study: CorpusStudy) -> Optional[str]:
    """Data dropped by analysis limits, or ``None`` when nothing was.

    Rendered (by :func:`render_study`) only when a limit actually bit,
    so reports over well-behaved corpora — including the pinned golden
    reports — are unchanged, while runs that silently used to lose data
    now say so.
    """
    if not (study.shape_limit_skipped or study.non_ctract_truncated):
        return None
    rows = [
        (
            "queries over the shape-node limit (structure pass skipped)",
            f"{study.shape_limit_skipped:,}",
        ),
        (
            "non-Ctract path expressions beyond the sample cap",
            f"{study.non_ctract_truncated:,}",
        ),
    ]
    return render_table(
        "Coverage caveats: data dropped by analysis limits",
        ("Limit", "Dropped"),
        rows,
    )


def render_pass_profile(profile: PassProfile) -> str:
    """Per-pass wall time and structural-cache statistics
    (``repro analyze --profile-passes``)."""
    total = profile.total_seconds or 1.0
    rows = [
        (name, f"{elapsed:.3f}s", f"{100.0 * elapsed / total:.1f}%")
        for name, elapsed in sorted(
            profile.seconds.items(), key=lambda item: item[1], reverse=True
        )
    ]
    rows.append(("total", f"{profile.total_seconds:.3f}s", "100.0%"))
    lookups = profile.cache_hits + profile.cache_misses
    summary = [
        f"queries measured: {profile.queries:,}",
        f"structural-cache lookups: {lookups:,} "
        f"(hits {profile.cache_hits:,}, misses {profile.cache_misses:,}, "
        f"hit rate {100.0 * profile.cache_hit_rate:.1f}%)",
    ]
    if profile.store_hits:
        summary.append(
            f"persistent store: served {profile.store_hits:,} of the misses"
        )
    if profile.chunks_shipped:
        summary.append(
            f"shard transport: {profile.chunks_shipped:,} chunks, "
            f"{profile.shipped_bytes:,} bytes shipped, "
            f"merge {profile.merge_seconds:.3f}s"
        )
    return (
        render_table(
            "Analyzer passes: wall time per pass",
            ("Pass", "Wall time", "Share"),
            rows,
        )
        + "\n"
        + "\n".join(summary)
    )


def render_figure3(results: Iterable) -> str:
    """Figure 3 rows from WorkloadRunResult records."""
    rows = []
    for result in results:
        rows.append(
            (
                f"{result.workload} {result.engine}",
                f"{result.average_elapsed_ns:,.0f} ns",
                f"{result.timeout_count}/{len(result.runs)} t/o",
            )
        )
    return render_table(
        "Figure 3: chain/cycle workload runtimes",
        ("Workload", "Avg runtime", "Timeouts"),
        rows,
    )
