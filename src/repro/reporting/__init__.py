"""Paper-style table/figure renderers."""

from .tables import (
    render_dataset_highlights,
    render_figure1,
    render_figure3,
    render_figure5,
    render_fragments,
    render_hypertree,
    render_projection,
    render_study,
    render_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
)

__all__ = [
    "render_dataset_highlights",
    "render_study",
    "render_figure1",
    "render_figure3",
    "render_figure5",
    "render_fragments",
    "render_hypertree",
    "render_projection",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_table6",
]
