"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at pipeline boundaries (notably the log
cleaning pipeline, which must count — not crash on — invalid queries).

Paper mapping: cross-cutting infrastructure (no single section).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SparqlSyntaxError",
    "EvaluationError",
    "EvaluationTimeout",
    "WorkloadError",
    "LogFormatError",
    "StudySnapshotError",
    "ReporterRegistrationError",
    "WarehouseError",
    "WatchStateError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class SparqlSyntaxError(ReproError):
    """A query string is not valid SPARQL 1.1.

    Carries the 1-based line/column of the offending token so the log
    pipeline can report where parsing failed.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class EvaluationError(ReproError):
    """A query could not be evaluated (type errors are handled per the
    SPARQL spec and do not raise; this is for engine-level failures)."""


class EvaluationTimeout(EvaluationError):
    """A query exceeded the engine's per-query timeout (the Figure 3
    experiment relies on distinguishing timeouts from completions)."""

    def __init__(self, elapsed: float, limit: float) -> None:
        super().__init__(f"query timed out after {elapsed:.3f}s (limit {limit:.3f}s)")
        self.elapsed = elapsed
        self.limit = limit


class WorkloadError(ReproError):
    """A workload/corpus generator was configured inconsistently."""


class LogFormatError(ReproError):
    """A raw log line could not be decoded into a log entry."""


class StudySnapshotError(ReproError):
    """A serialized study snapshot is unreadable.

    Raised by :mod:`repro.analysis.snapshot` when a snapshot file is
    not JSON, carries an unexpected schema version, or is missing
    fields the loader needs — always with a message naming what was
    wrong, so ``repro merge``/``repro report`` can surface it."""


class ReporterRegistrationError(ReproError, ValueError):
    """A reporter was registered under a name that is already taken.

    Subclasses :class:`ValueError` too, so pre-typed callers that
    caught ``ValueError`` around :func:`repro.reporting.register_reporter`
    keep working."""


class WatchStateError(ReproError):
    """Watch-mode state cannot be trusted or continued.

    Raised by :mod:`repro.analysis.incremental` when a checkpoint file
    is corrupt or was written under different options than the session
    asks for, or when a tailed source changed behind the cursor
    (truncated, rotated, or rewritten bytes the study already folded
    in) — always with a message naming the file, so ``repro watch``
    can exit 2 instead of silently double-counting history."""


class WarehouseError(ReproError):
    """A study warehouse operation failed.

    Raised by :mod:`repro.warehouse` when a warehouse file is corrupt,
    carries a foreign or future schema, or an ingest would combine
    incompatible studies (corpus flavours, streak parameters) — always
    with a message naming the problem, so ``repro warehouse`` and
    ``repro serve`` can exit 2 instead of printing a traceback.  A
    failed ingest rolls back: the warehouse keeps its previous state."""
