"""Schema-driven graph instance generation (the gMark substitute).

Generates an RDF graph from a :class:`~repro.workload.schema.GraphSchema`:
nodes are allocated to types by proportion, and each predicate adds
edges from every source-typed node to targets sampled (with a mild
preferential skew) from the target type, with out-degrees drawn from
the predicate's distribution.  Deterministic given the seed.

Paper mapping: instance graphs for the Figure 3 chain/cycle experiment
(sec 3).
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..exceptions import WorkloadError
from ..rdf.graph import Graph
from ..rdf.terms import IRI, Triple
from .schema import GraphSchema

__all__ = ["generate_graph", "node_iri"]


def node_iri(schema: GraphSchema, node_type: str, index: int) -> IRI:
    """The IRI of the *index*-th node of *node_type*."""
    return IRI(f"{schema.namespace}{node_type.lower()}/{index}")


def generate_graph(
    schema: GraphSchema, n_nodes: int, seed: int = 0
) -> Graph:
    """Generate a graph instance with ~*n_nodes* nodes.

    Every node gets an ``rdf:type``-like marker triple (predicate
    ``<ns>type``) so generated instances are self-describing, plus the
    schema's edges.
    """
    if n_nodes <= 0:
        raise WorkloadError("n_nodes must be positive")
    rng = random.Random(seed)
    type_predicate = IRI(schema.namespace + "type")

    populations: Dict[str, List[IRI]] = {}
    for node_type, proportion in schema.node_types.items():
        count = max(1, int(round(n_nodes * proportion)))
        populations[node_type] = [
            node_iri(schema, node_type, index) for index in range(count)
        ]

    graph = Graph()
    for node_type, nodes in populations.items():
        type_iri = IRI(schema.namespace + node_type)
        for node in nodes:
            graph.add(Triple(node, type_predicate, type_iri))

    for predicate in schema.predicates:
        predicate_iri = IRI(predicate.iri(schema.namespace))
        targets = populations[predicate.target]
        # Preferential skew: early-index targets are more popular, a
        # cheap approximation of gMark's zipfian in-degree option.
        weights = [1.0 / (rank + 1) for rank in range(len(targets))]
        for source in populations[predicate.source]:
            degree = predicate.out_degree.sample(rng)
            if degree <= 0:
                continue
            degree = min(degree, len(targets))
            chosen = rng.choices(targets, weights=weights, k=degree)
            for target in chosen:
                graph.add(Triple(source, predicate_iri, target))
    return graph
