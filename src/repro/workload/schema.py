"""gMark-style graph schemas (paper §5.1).

A schema describes node types with relative proportions and typed
predicates with degree distributions — enough to generate graph
instances and shape-controlled conjunctive query workloads the way
gMark's Bib use case does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..exceptions import WorkloadError

__all__ = [
    "DegreeDistribution",
    "Predicate",
    "GraphSchema",
    "bib_schema",
]


@dataclass(frozen=True)
class DegreeDistribution:
    """An out-degree distribution: uniform, zipfian, or constant.

    * ``uniform``: integers in [low, high];
    * ``zipfian``: degree low + Zipf-ish tail, clamped to high;
    * ``constant``: always ``low``.
    """

    kind: str
    low: int
    high: int
    alpha: float = 2.5

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "zipfian", "constant"):
            raise WorkloadError(f"unknown distribution kind {self.kind!r}")
        if self.low < 0 or self.high < self.low:
            raise WorkloadError("invalid degree bounds")

    def sample(self, rng: random.Random) -> int:
        """Draw a degree from this distribution."""
        if self.kind == "constant":
            return self.low
        if self.kind == "uniform":
            return rng.randint(self.low, self.high)
        # Zipfian: inverse-transform sample of a truncated power law.
        span = self.high - self.low
        if span == 0:
            return self.low
        u = rng.random()
        value = int((u ** (-1.0 / (self.alpha - 1.0)) - 1.0))
        return self.low + min(value, span)


@dataclass(frozen=True)
class Predicate:
    """A typed edge label: subjects of *source* type point to objects
    of *target* type with the given out-degree distribution."""

    name: str
    source: str
    target: str
    out_degree: DegreeDistribution

    def iri(self, namespace: str) -> str:
        """The node's IRI inside *namespace*."""
        return namespace + self.name


@dataclass
class GraphSchema:
    """Node types (with proportions summing to 1) plus predicates."""

    namespace: str
    node_types: Dict[str, float]
    predicates: List[Predicate] = field(default_factory=list)

    def __post_init__(self) -> None:
        total = sum(self.node_types.values())
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(
                f"node type proportions sum to {total}, expected 1.0"
            )
        for predicate in self.predicates:
            if predicate.source not in self.node_types:
                raise WorkloadError(f"unknown source type {predicate.source!r}")
            if predicate.target not in self.node_types:
                raise WorkloadError(f"unknown target type {predicate.target!r}")

    def predicate(self, name: str) -> Predicate:
        """Look up a predicate by name."""
        for predicate in self.predicates:
            if predicate.name == name:
                return predicate
        raise WorkloadError(f"unknown predicate {name!r}")

    def predicates_from(self, node_type: str) -> List[Predicate]:
        """Predicates whose domain is *node_type*."""
        return [p for p in self.predicates if p.source == node_type]

    def predicates_into(self, node_type: str) -> List[Predicate]:
        """Predicates whose range is *node_type*."""
        return [p for p in self.predicates if p.target == node_type]

    def steps_from(self, node_type: str) -> List[Tuple[Predicate, bool, str]]:
        """All schema-graph steps leaving *node_type*, traversing
        predicates forward (False) or backward (True); the third field
        is the type reached."""
        steps: List[Tuple[Predicate, bool, str]] = []
        for predicate in self.predicates:
            if predicate.source == node_type:
                steps.append((predicate, False, predicate.target))
            if predicate.target == node_type:
                steps.append((predicate, True, predicate.source))
        return steps


def bib_schema() -> GraphSchema:
    """The Bib use case of gMark: researchers, papers, journals and
    conferences, with citation/authorship/venue edges.

    The proportions and degree ranges follow gMark's bundled ``bib``
    configuration in spirit; exact constants differ but preserve the
    skew (papers cite few papers, authors write several papers, venues
    publish many papers).
    """
    uniform = DegreeDistribution
    return GraphSchema(
        namespace="http://example.org/bib/",
        node_types={
            "Researcher": 0.50,
            "Paper": 0.35,
            "Journal": 0.07,
            "Conference": 0.08,
        },
        predicates=[
            Predicate(
                "authoredBy", "Paper", "Researcher",
                uniform("uniform", 1, 4),
            ),
            Predicate(
                "cites", "Paper", "Paper",
                uniform("zipfian", 0, 20),
            ),
            Predicate(
                "publishedIn", "Paper", "Journal",
                uniform("uniform", 0, 1),
            ),
            Predicate(
                "presentedAt", "Paper", "Conference",
                uniform("uniform", 0, 1),
            ),
            Predicate(
                "editorOf", "Researcher", "Journal",
                uniform("uniform", 0, 1),
            ),
            Predicate(
                "friendOf", "Researcher", "Researcher",
                uniform("zipfian", 0, 10),
            ),
            Predicate(
                "chairOf", "Researcher", "Conference",
                uniform("uniform", 0, 1),
            ),
        ],
    )
