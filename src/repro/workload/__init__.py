"""Workload and corpus generation: gMark-style graphs/queries and the
calibrated synthetic log corpus.

Paper mapping: Figure 3 workloads plus the calibrated synthetic corpus
standing in for Table 1's logs.
"""

from .corpus import (
    DATASET_ORDER,
    DATASET_PROFILES,
    DatasetProfile,
    generate_corpus,
    generate_dataset,
    generate_day_log,
)
from .gmark import generate_graph, node_iri
from .queries import (
    GeneratedQuery,
    QueryShape,
    chain_query,
    cycle_query,
    flower_query,
    generate_workload,
    star_chain_query,
    star_query,
)
from .schema import DegreeDistribution, GraphSchema, Predicate, bib_schema

__all__ = [
    "DATASET_ORDER",
    "DATASET_PROFILES",
    "DatasetProfile",
    "generate_corpus",
    "generate_dataset",
    "generate_day_log",
    "generate_graph",
    "node_iri",
    "GeneratedQuery",
    "QueryShape",
    "chain_query",
    "cycle_query",
    "flower_query",
    "generate_workload",
    "star_chain_query",
    "star_query",
    "DegreeDistribution",
    "GraphSchema",
    "Predicate",
    "bib_schema",
]
