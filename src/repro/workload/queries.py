"""Shape-controlled conjunctive query workload generation (§5.1).

Generates chain, cycle, star, chain-star ("star-chain") and flower
query workloads over a :class:`~repro.workload.schema.GraphSchema`,
mirroring the four shapes gMark produces plus the paper's flower shape.
Chains and cycles are the representatives of hypertreewidth 1 and 2
used in the Figure 3 experiment.

Queries are produced as ASK or SELECT text (the paper ran Ask
workloads; gMark emitted Select, which the authors rewrote).  Each
query's canonical graph is *guaranteed* to have the requested shape:
type-compatible predicates are found by random walk over the schema
graph, traversing predicates forward or backward — direction does not
affect the canonical (undirected) graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..exceptions import WorkloadError
from .schema import GraphSchema, Predicate

__all__ = [
    "QueryShape",
    "GeneratedQuery",
    "generate_workload",
    "chain_query",
    "cycle_query",
    "star_query",
    "star_chain_query",
    "flower_query",
]


@dataclass(frozen=True)
class GeneratedQuery:
    """A generated query with its provenance."""

    text: str
    shape: str
    length: int
    query_form: str  # "ASK" or "SELECT"


class QueryShape:
    """Supported generated-workload shapes (chain or cycle)."""
    CHAIN = "chain"
    CYCLE = "cycle"
    STAR = "star"
    STAR_CHAIN = "star-chain"
    FLOWER = "flower"


# ---------------------------------------------------------------------------
# Schema walks
# ---------------------------------------------------------------------------


def _random_walk(
    schema: GraphSchema,
    length: int,
    rng: random.Random,
    start_type: Optional[str] = None,
) -> Tuple[str, List[Tuple[Predicate, bool]]]:
    """A type-compatible walk of *length* steps; returns the start type
    and the step list (predicate, reversed?)."""
    types = list(schema.node_types)
    for _ in range(200):
        current = start_type or rng.choice(types)
        first = current
        steps: List[Tuple[Predicate, bool]] = []
        ok = True
        for _ in range(length):
            options = schema.steps_from(current)
            if not options:
                ok = False
                break
            predicate, reverse, next_type = rng.choice(options)
            steps.append((predicate, reverse))
            current = next_type
        if ok:
            return first, steps
    raise WorkloadError("schema has no walks of the requested length")


def _closed_walk(
    schema: GraphSchema, length: int, rng: random.Random
) -> Tuple[str, List[Tuple[Predicate, bool]]]:
    """A walk that returns to its start type (for cycle queries)."""
    types = list(schema.node_types)
    for _ in range(2000):
        start = rng.choice(types)
        current = start
        steps: List[Tuple[Predicate, bool]] = []
        ok = True
        for position in range(length):
            options = schema.steps_from(current)
            if position == length - 1:
                options = [
                    option for option in options if option[2] == start
                ]
            if not options:
                ok = False
                break
            predicate, reverse, next_type = rng.choice(options)
            steps.append((predicate, reverse))
            current = next_type
        if ok:
            return start, steps
    raise WorkloadError("schema has no closed walks of the requested length")


def _triple_text(
    schema: GraphSchema, subject: str, predicate: Predicate, reverse: bool, obj: str
) -> str:
    iri = f"<{predicate.iri(schema.namespace)}>"
    if reverse:
        return f"{obj} {iri} {subject} ."
    return f"{subject} {iri} {obj} ."


def _render(query_form: str, triples: Sequence[str], variables: Sequence[str]) -> str:
    body = "\n  ".join(triples)
    if query_form == "ASK":
        return f"ASK WHERE {{\n  {body}\n}}"
    head = " ".join(variables) if variables else "*"
    return f"SELECT {head} WHERE {{\n  {body}\n}}"


# ---------------------------------------------------------------------------
# Individual shapes
# ---------------------------------------------------------------------------


def chain_query(
    schema: GraphSchema,
    length: int,
    seed: int = 0,
    query_form: str = "ASK",
) -> GeneratedQuery:
    """A chain query of *length* triples: x0 –p1– x1 – … –pk– xk."""
    if length < 1:
        raise WorkloadError("chain length must be ≥ 1")
    rng = random.Random(seed)
    _, steps = _random_walk(schema, length, rng)
    triples = [
        _triple_text(schema, f"?x{i}", predicate, reverse, f"?x{i + 1}")
        for i, (predicate, reverse) in enumerate(steps)
    ]
    variables = [f"?x{i}" for i in range(length + 1)]
    return GeneratedQuery(
        _render(query_form, triples, variables),
        QueryShape.CHAIN,
        length,
        query_form,
    )


def cycle_query(
    schema: GraphSchema,
    length: int,
    seed: int = 0,
    query_form: str = "ASK",
) -> GeneratedQuery:
    """A cycle query of *length* triples: x0 – x1 – … – x_{k-1} – x0."""
    if length < 3:
        raise WorkloadError("cycle length must be ≥ 3")
    rng = random.Random(seed)
    _, steps = _closed_walk(schema, length, rng)
    triples = []
    for i, (predicate, reverse) in enumerate(steps):
        subject = f"?x{i}"
        obj = f"?x{(i + 1) % length}"
        triples.append(_triple_text(schema, subject, predicate, reverse, obj))
    variables = [f"?x{i}" for i in range(length)]
    return GeneratedQuery(
        _render(query_form, triples, variables),
        QueryShape.CYCLE,
        length,
        query_form,
    )


def star_query(
    schema: GraphSchema,
    branches: int,
    seed: int = 0,
    query_form: str = "ASK",
) -> GeneratedQuery:
    """A star: a center x0 with *branches* incident triples."""
    if branches < 3:
        raise WorkloadError("a star needs ≥ 3 branches")
    rng = random.Random(seed)
    types = list(schema.node_types)
    for _ in range(200):
        center_type = rng.choice(types)
        options = schema.steps_from(center_type)
        if options:
            break
    else:
        raise WorkloadError("schema has no star centers")
    triples = []
    for branch in range(branches):
        predicate, reverse, _ = rng.choice(options)
        triples.append(
            _triple_text(schema, "?x0", predicate, reverse, f"?y{branch}")
        )
    variables = ["?x0"] + [f"?y{branch}" for branch in range(branches)]
    return GeneratedQuery(
        _render(query_form, triples, variables),
        QueryShape.STAR,
        branches,
        query_form,
    )


def star_chain_query(
    schema: GraphSchema,
    chain_length: int,
    branches: int = 3,
    seed: int = 0,
    query_form: str = "ASK",
) -> GeneratedQuery:
    """gMark's chain-star shape: a chain with a star at its end."""
    rng = random.Random(seed)
    start_type, steps = _random_walk(schema, chain_length, rng)
    triples = [
        _triple_text(schema, f"?x{i}", predicate, reverse, f"?x{i + 1}")
        for i, (predicate, reverse) in enumerate(steps)
    ]
    # Attach the star at the chain's end (?x0's type is start_type; the
    # end type is whatever the walk reached — recompute it).
    end_type = start_type
    for predicate, reverse in steps:
        end_type = predicate.source if reverse else predicate.target
    options = schema.steps_from(end_type)
    if not options:
        raise WorkloadError("chain end type has no outgoing steps")
    for branch in range(branches):
        predicate, reverse, _ = rng.choice(options)
        triples.append(
            _triple_text(
                schema, f"?x{chain_length}", predicate, reverse, f"?z{branch}"
            )
        )
    variables = [f"?x{i}" for i in range(chain_length + 1)]
    variables += [f"?z{branch}" for branch in range(branches)]
    return GeneratedQuery(
        _render(query_form, triples, variables),
        QueryShape.STAR_CHAIN,
        chain_length + branches,
        query_form,
    )


def flower_query(
    schema: GraphSchema,
    petals: int = 2,
    stamens: int = 2,
    petal_length: int = 3,
    seed: int = 0,
    query_form: str = "ASK",
) -> GeneratedQuery:
    """A flower (Definition 6.1): a core with petals and stamens.

    Petals are built as two parallel walks from the core to a shared
    far node, guaranteeing ≥ 2 node-disjoint paths.
    """
    if petals < 1:
        raise WorkloadError("a flower needs ≥ 1 petal")
    rng = random.Random(seed)
    types = list(schema.node_types)
    # Find a core type with a closed walk of 2·petal_length (a petal is
    # two internally-disjoint core→far walks of petal_length each).
    core_type = None
    for _ in range(200):
        candidate = rng.choice(types)
        try:
            _closed_walk_from(schema, candidate, 2 * petal_length, rng)
        except WorkloadError:
            continue
        core_type = candidate
        break
    if core_type is None:
        raise WorkloadError("schema admits no petals")
    triples: List[str] = []
    variable_counter = [0]

    def fresh() -> str:
        """The next fresh variable name."""
        variable_counter[0] += 1
        return f"?v{variable_counter[0]}"

    core = "?core"
    for _ in range(petals):
        walk = _closed_walk_from(schema, core_type, 2 * petal_length, rng)
        previous = core
        nodes = [fresh() for _ in range(2 * petal_length - 1)] + [core]
        for (predicate, reverse), node in zip(walk, nodes):
            triples.append(_triple_text(schema, previous, predicate, reverse, node))
            previous = node
    for _ in range(stamens):
        options = schema.steps_from(core_type)
        predicate, reverse, _ = rng.choice(options)
        triples.append(_triple_text(schema, core, predicate, reverse, fresh()))
    variables = [core]
    return GeneratedQuery(
        _render(query_form, triples, variables),
        QueryShape.FLOWER,
        len(triples),
        query_form,
    )


def _closed_walk_from(
    schema: GraphSchema, start: str, length: int, rng: random.Random
) -> List[Tuple[Predicate, bool]]:
    for _ in range(2000):
        current = start
        steps: List[Tuple[Predicate, bool]] = []
        ok = True
        for position in range(length):
            options = schema.steps_from(current)
            if position == length - 1:
                options = [option for option in options if option[2] == start]
            if not options:
                ok = False
                break
            predicate, reverse, next_type = rng.choice(options)
            steps.append((predicate, reverse))
            current = next_type
        if ok:
            return steps
    raise WorkloadError(f"no closed walk of length {length} from {start!r}")


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

_GENERATORS = {
    QueryShape.CHAIN: chain_query,
    QueryShape.CYCLE: cycle_query,
    QueryShape.STAR: star_query,
}


def generate_workload(
    schema: GraphSchema,
    shape: str,
    length: int,
    count: int,
    seed: int = 0,
    query_form: str = "ASK",
) -> List[GeneratedQuery]:
    """A workload of *count* queries of one shape and length.

    For chains and cycles this matches the paper's W-3 … W-8 workloads
    (the paper used 100 queries per workload; benches scale that down).
    """
    generator = _GENERATORS.get(shape)
    if generator is None:
        raise WorkloadError(f"unknown workload shape {shape!r}")
    return [
        generator(schema, length, seed=seed * 10_000 + index, query_form=query_form)
        for index in range(count)
    ]
