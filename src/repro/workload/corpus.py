"""Calibrated synthetic query-log corpus (the paper's data substitute).

The paper's raw logs (180M queries from USEWOD, Openlink, LSQ and the
Wikidata example page) are not redistributable.  This module generates,
per dataset, a stream of raw query texts whose *distributions* follow
the paper's published per-dataset numbers:

* Table 1 — total / valid / unique proportions (duplicates and invalid
  entries are injected accordingly);
* Figure 1 — query-type mix and number-of-triples histograms;
* Tables 2–3 — keyword and operator-set usage;
* Table 4 — shape mix of the conjunctive cores;
* Table 5 — property-path expression types;
* §4.4 — subquery and projection rates.

Every generated query is real SPARQL produced by composing an actual
pattern (not string templates with placeholders), so the downstream
pipeline — cleaning, parsing, deduplication, classification — runs the
same code paths it would on the real logs.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import WorkloadError

__all__ = [
    "DatasetProfile",
    "DATASET_PROFILES",
    "DATASET_ORDER",
    "generate_dataset",
    "generate_corpus",
    "generate_day_log",
]

# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------

#: Triple-count histogram: weights for 0,1,2,…,10 triples plus an 11+
#: tail (sampled uniformly from 11–25, occasionally much larger).
TripleHist = Tuple[float, ...]

_DEFAULT_HIST: TripleHist = (0.02, 0.56, 0.16, 0.08, 0.05, 0.04, 0.03, 0.02, 0.01, 0.01, 0.01, 0.01)


@dataclass(frozen=True)
class DatasetProfile:
    """Everything needed to synthesize one dataset's log stream."""

    name: str
    total: int  # Table 1 "Total #Q"
    valid: int  # Table 1 "Valid #Q"
    unique: int  # Table 1 "Unique #Q"
    namespace: str
    #: probabilities for SELECT / ASK / DESCRIBE / CONSTRUCT
    query_type_mix: Tuple[float, float, float, float] = (0.88, 0.05, 0.045, 0.025)
    triple_hist: TripleHist = _DEFAULT_HIST
    distinct_rate: float = 0.22
    limit_rate: float = 0.17
    offset_rate: float = 0.06
    order_by_rate: float = 0.02
    filter_rate: float = 0.40
    union_rate: float = 0.19
    optional_rate: float = 0.16
    graph_rate: float = 0.027
    minus_rate: float = 0.014
    not_exists_rate: float = 0.016
    count_rate: float = 0.006
    group_by_rate: float = 0.003
    subquery_rate: float = 0.005
    property_path_rate: float = 0.004
    predicate_variable_rate: float = 0.10
    projection_rate: float = 0.15
    describe_bodyless_rate: float = 0.97
    constant_rate: float = 0.787  # single-edge CQs using constants
    #: shape mix of conjunctive cores with ≥ 3 triples.  The paper's
    #: cycle share is ~0.03% of CQs; we keep cyclic queries a few times
    #: more frequent so that scaled-down corpora still contain them
    #: (documented in EXPERIMENTS.md — §6.1 needs a populated girth
    #: histogram to reproduce its finding).
    cycle_rate: float = 0.020
    flower_rate: float = 0.012
    star_rate: float = 0.05


def _profile(
    name: str,
    total: int,
    valid: int,
    unique: int,
    namespace: str,
    **overrides,
) -> DatasetProfile:
    return replace(
        DatasetProfile(name, total, valid, unique, namespace),
        **overrides,
    )


#: The 13 logs of Table 1, with the per-dataset deviations the paper
#: calls out in §4 (BioMed is Describe-heavy, LGD13 Construct-heavy,
#: BritM is template-generated with near-universal DISTINCT, BioPortal
#: uses GRAPH massively, Wikidata is aggregate/path-heavy, …).
DATASET_PROFILES: Dict[str, DatasetProfile] = {
    "DBpedia9/12": _profile(
        "DBpedia9/12", 28_534_301, 27_097_467, 13_437_966,
        "http://dbpedia.org/",
        query_type_mix=(0.925, 0.05, 0.015, 0.01),
        distinct_rate=0.18,
        triple_hist=(0.02, 0.60, 0.15, 0.07, 0.05, 0.03, 0.02, 0.02, 0.01, 0.01, 0.01, 0.01),
    ),
    "DBpedia13": _profile(
        "DBpedia13", 5_243_853, 4_819_837, 2_628_005,
        "http://dbpedia.org/",
        query_type_mix=(0.88, 0.04, 0.05, 0.03),
        distinct_rate=0.08,
        offset_rate=0.12,
        triple_hist=(0.02, 0.42, 0.14, 0.09, 0.07, 0.05, 0.04, 0.03, 0.02, 0.02, 0.02, 0.08),
    ),
    "DBpedia14": _profile(
        "DBpedia14", 37_219_788, 33_996_480, 17_217_448,
        "http://dbpedia.org/",
        query_type_mix=(0.90, 0.055, 0.035, 0.01),
        distinct_rate=0.11,
        triple_hist=(0.03, 0.62, 0.14, 0.07, 0.04, 0.03, 0.02, 0.01, 0.01, 0.01, 0.01, 0.01),
    ),
    "DBpedia15": _profile(
        "DBpedia15", 43_478_986, 42_709_778, 13_253_845,
        "http://dbpedia.org/",
        query_type_mix=(0.815, 0.115, 0.05, 0.02),
        distinct_rate=0.38,
        triple_hist=(0.02, 0.52, 0.16, 0.08, 0.06, 0.04, 0.03, 0.02, 0.02, 0.01, 0.01, 0.03),
    ),
    "DBpedia16": _profile(
        "DBpedia16", 15_098_176, 14_687_869, 4_369_781,
        "http://dbpedia.org/",
        query_type_mix=(0.62, 0.02, 0.34, 0.02),
        distinct_rate=0.08,
        triple_hist=(0.03, 0.46, 0.15, 0.09, 0.07, 0.05, 0.04, 0.03, 0.02, 0.02, 0.01, 0.03),
    ),
    "LGD13": _profile(
        "LGD13", 1_841_880, 1_513_868, 357_842,
        "http://linkedgeodata.org/",
        query_type_mix=(0.28, 0.005, 0.005, 0.71),
        offset_rate=0.13,
        triple_hist=(0.01, 0.40, 0.20, 0.12, 0.08, 0.06, 0.04, 0.03, 0.02, 0.01, 0.01, 0.02),
    ),
    "LGD14": _profile(
        "LGD14", 1_999_961, 1_929_130, 628_640,
        "http://linkedgeodata.org/",
        query_type_mix=(0.96, 0.015, 0.01, 0.015),
        limit_rate=0.41,
        offset_rate=0.38,
        filter_rate=0.61,
        count_rate=0.31,
        triple_hist=(0.01, 0.45, 0.20, 0.11, 0.08, 0.05, 0.04, 0.02, 0.01, 0.01, 0.01, 0.01),
    ),
    "BioP13": _profile(
        "BioP13", 4_627_271, 4_624_430, 687_773,
        "http://bioportal.bioontology.org/",
        query_type_mix=(0.90, 0.10, 0.0, 0.0),
        distinct_rate=0.82,
        graph_rate=0.80,
        filter_rate=0.03,
        union_rate=0.02,
        optional_rate=0.02,
        triple_hist=(0.02, 0.84, 0.11, 0.02, 0.005, 0.003, 0.001, 0.0005, 0.0002, 0.0002, 0.0001, 0.0),
    ),
    "BioP14": _profile(
        "BioP14", 26_438_933, 26_404_710, 2_191_152,
        "http://bioportal.bioontology.org/",
        query_type_mix=(0.95, 0.047, 0.002, 0.001),
        distinct_rate=0.69,
        graph_rate=0.40,
        filter_rate=0.05,
        union_rate=0.03,
        optional_rate=0.03,
        triple_hist=(0.01, 0.68, 0.22, 0.06, 0.02, 0.005, 0.003, 0.001, 0.0005, 0.0003, 0.0002, 0.0),
    ),
    "BioMed13": _profile(
        "BioMed13", 883_374, 882_809, 27_030,
        "http://openbiomed.org/",
        query_type_mix=(0.128, 0.0007, 0.847, 0.0242),
        triple_hist=(0.01, 0.42, 0.18, 0.10, 0.07, 0.05, 0.04, 0.03, 0.02, 0.02, 0.02, 0.04),
    ),
    "SWDF13": _profile(
        "SWDF13", 13_762_797, 13_618_017, 1_229_759,
        "http://data.semanticweb.org/",
        query_type_mix=(0.94, 0.02, 0.025, 0.015),
        limit_rate=0.47,
        triple_hist=(0.02, 0.70, 0.15, 0.05, 0.03, 0.02, 0.01, 0.01, 0.005, 0.003, 0.002, 0.01),
    ),
    "BritM14": _profile(
        "BritM14", 1_523_827, 1_513_534, 135_112,
        "http://collection.britishmuseum.org/",
        query_type_mix=(0.97, 0.016, 0.01, 0.004),
        distinct_rate=0.97,
        triple_hist=(0.0, 0.06, 0.10, 0.14, 0.16, 0.15, 0.12, 0.10, 0.07, 0.05, 0.03, 0.02),
    ),
    "WikiData17": _profile(
        "WikiData17", 309, 308, 308,
        "http://www.wikidata.org/",
        query_type_mix=(0.97, 0.01, 0.01, 0.01),
        order_by_rate=0.42,
        group_by_rate=0.30,
        count_rate=0.25,
        subquery_rate=0.0974,
        property_path_rate=0.2987,
        limit_rate=0.30,
        filter_rate=0.35,
        optional_rate=0.40,
        triple_hist=(0.0, 0.12, 0.18, 0.18, 0.14, 0.10, 0.08, 0.06, 0.05, 0.03, 0.03, 0.03),
    ),
}

DATASET_ORDER: Tuple[str, ...] = tuple(DATASET_PROFILES)

#: Table 5 expression-type sampling weights (paper's relative counts).
_PATH_TYPE_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("!a", 0.255),
    ("^a", 0.002),
    ("(a1|...|ak)*", 0.291),
    ("a*", 0.197),
    ("a1/.../ak", 0.087),
    ("a*/b", 0.077),
    ("a1|...|ak", 0.065),
    ("a+", 0.015),
    ("a1?/.../ak?", 0.011),
)


# ---------------------------------------------------------------------------
# Vocabulary per dataset
# ---------------------------------------------------------------------------


class _Vocabulary:
    """Pools of IRIs and literals for a dataset's namespace."""

    def __init__(self, namespace: str, rng: random.Random) -> None:
        base = namespace.rstrip("/")
        self.predicates = [
            f"{base}/property/p{i}" for i in range(40)
        ] + [
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
            "http://www.w3.org/2000/01/rdf-schema#label",
            "http://xmlns.com/foaf/0.1/name",
        ]
        self.entities = [f"{base}/resource/e{i}" for i in range(400)]
        self.classes = [f"{base}/ontology/C{i}" for i in range(25)]
        self.graphs = [f"{base}/graph/g{i}" for i in range(8)]
        self._rng = rng

    def predicate(self) -> str:
        """A profile-weighted predicate IRI."""
        return f"<{self._rng.choice(self.predicates)}>"

    def entity(self) -> str:
        """A profile-weighted entity IRI."""
        return f"<{self._rng.choice(self.entities)}>"

    def class_iri(self) -> str:
        """A profile-weighted class IRI."""
        return f"<{self._rng.choice(self.classes)}>"

    def graph_iri(self) -> str:
        """A named-graph IRI."""
        return f"<{self._rng.choice(self.graphs)}>"

    def literal(self) -> str:
        """A literal matching the profile's value shapes."""
        kind = self._rng.random()
        if kind < 0.4:
            return f'"value{self._rng.randrange(1000)}"'
        if kind < 0.7:
            return f'"label {self._rng.randrange(100)}"@en'
        return str(self._rng.randrange(5000))


# ---------------------------------------------------------------------------
# Query synthesis
# ---------------------------------------------------------------------------


class _QueryBuilder:
    """Synthesizes one query's text from a profile draw."""

    def __init__(
        self, profile: DatasetProfile, vocabulary: _Vocabulary, rng: random.Random
    ) -> None:
        self.profile = profile
        self.vocab = vocabulary
        self.rng = rng
        self._variable_counter = 0
        # Decorations gated on "≥ 2 triples" must compensate for the
        # gate, or the corpus-wide rates undershoot the profile targets
        # (most queries have ≤ 1 triple).
        weights = profile.triple_hist
        total = sum(weights) or 1.0
        self._p_multi = max(
            0.05, sum(weights[2:]) / total
        )

    def _gated_chance(self, rate: float) -> bool:
        return self.rng.random() < min(0.9, rate / self._p_multi)

    # -- helpers -------------------------------------------------------
    def _fresh_variable(self) -> str:
        self._variable_counter += 1
        return f"?v{self._variable_counter}"

    def _chance(self, rate: float) -> bool:
        return self.rng.random() < rate

    def _sample_triple_count(self) -> int:
        weights = self.profile.triple_hist
        bucket = self.rng.choices(range(len(weights)), weights=weights)[0]
        if bucket < 11:
            return bucket
        if self.rng.random() < 0.02:
            return self.rng.randint(26, 230)  # the paper saw up to 229
        return self.rng.randint(11, 25)

    # -- core pattern construction --------------------------------------
    def _term(self, position: str, constant_bias: float) -> str:
        if self.rng.random() < constant_bias:
            if position == "o" and self.rng.random() < 0.4:
                return self.vocab.literal()
            return self.vocab.entity()
        return self._fresh_variable()

    def _single_triple(self) -> Tuple[str, List[str]]:
        use_constants = self._chance(self.profile.constant_rate)
        subject = self._term("s", 0.35 if use_constants else 0.0)
        obj = self._term("o", 0.75 if use_constants else 0.0)
        if subject.startswith("<") and obj.startswith(("<", '"')) and not self._chance(0.2):
            obj = self._fresh_variable()
        # Avoid accidental self-loops from entity-pool collisions: real
        # logs rarely assert <e> p <e>, and girth-1 "cycles" would
        # otherwise swamp the §6.1 statistics.
        while obj == subject:
            obj = self.vocab.entity()
        if self._chance(self.profile.predicate_variable_rate):
            predicate = self._fresh_variable()
        else:
            predicate = self.vocab.predicate()
        triple = f"{subject} {predicate} {obj} ."
        variables = [t for t in (subject, predicate, obj) if t.startswith("?")]
        return triple, variables

    def _cq_core(self, triple_count: int) -> Tuple[List[str], List[str]]:
        """Build a conjunctive core of *triple_count* triples with a
        shape drawn from the profile's shape mix."""
        if triple_count <= 0:
            return [], []
        if triple_count == 1:
            triple, variables = self._single_triple()
            return [triple], variables
        draw = self.rng.random()
        if triple_count >= 3 and draw < self.profile.cycle_rate:
            return self._cycle_core(triple_count)
        if triple_count >= 4 and draw < self.profile.cycle_rate + self.profile.flower_rate:
            return self._flower_core(triple_count)
        if triple_count >= 3 and self._chance(self.profile.star_rate):
            return self._star_core(triple_count)
        if self._chance(0.5):
            return self._chain_core(triple_count)
        return self._tree_core(triple_count)

    def _chain_core(self, length: int) -> Tuple[List[str], List[str]]:
        nodes = [self._fresh_variable() for _ in range(length + 1)]
        if self._chance(0.3):
            nodes[-1] = self.vocab.entity() if self._chance(0.6) else self.vocab.literal()
        triples = [
            f"{nodes[i]} {self.vocab.predicate()} {nodes[i + 1]} ."
            for i in range(length)
        ]
        return triples, [n for n in nodes if n.startswith("?")]

    def _star_core(self, branches: int) -> Tuple[List[str], List[str]]:
        center = self._fresh_variable()
        leaves = [self._fresh_variable() for _ in range(branches)]
        triples = [
            f"{center} {self.vocab.predicate()} {leaf} ." for leaf in leaves
        ]
        return triples, [center] + leaves

    def _tree_core(self, size: int) -> Tuple[List[str], List[str]]:
        nodes = [self._fresh_variable()]
        triples: List[str] = []
        for _ in range(size):
            parent = self.rng.choice(nodes)
            child = self._fresh_variable()
            triples.append(f"{parent} {self.vocab.predicate()} {child} .")
            nodes.append(child)
        return triples, nodes

    def _cycle_core(self, length: int) -> Tuple[List[str], List[str]]:
        # Girth 3 dominates real cyclic queries (§6.1): build a short
        # cycle and spend the rest of the budget on stamens at a node.
        cycle_length = min(length, self.rng.choices(
            (3, 4, 5, length), weights=(70, 12, 10, 8)
        )[0])
        nodes = [self._fresh_variable() for _ in range(cycle_length)]
        triples = [
            f"{nodes[i]} {self.vocab.predicate()} {nodes[(i + 1) % cycle_length]} ."
            for i in range(cycle_length)
        ]
        variables = list(nodes)
        for _ in range(length - cycle_length):
            leaf = self._fresh_variable()
            variables.append(leaf)
            triples.append(f"{nodes[0]} {self.vocab.predicate()} {leaf} .")
        return triples, variables

    def _flower_core(self, size: int) -> Tuple[List[str], List[str]]:
        core = self._fresh_variable()
        variables = [core]
        triples: List[str] = []
        remaining = size
        # One petal (a small cycle through the core) plus stamens.
        petal = min(max(3, size // 2), remaining)
        nodes = [core] + [self._fresh_variable() for _ in range(petal - 1)]
        variables += nodes[1:]
        for i in range(petal):
            triples.append(
                f"{nodes[i]} {self.vocab.predicate()} {nodes[(i + 1) % petal]} ."
            )
        remaining -= petal
        for _ in range(remaining):
            leaf = self._fresh_variable()
            variables.append(leaf)
            triples.append(f"{core} {self.vocab.predicate()} {leaf} .")
        return triples, variables

    # -- decorations -----------------------------------------------------
    def _filter_text(self, variables: List[str]) -> str:
        if not variables:
            return 'FILTER (1 = 1)'
        variable = self.rng.choice(variables)
        kind = self.rng.random()
        if kind < 0.35:
            return f'FILTER (lang({variable}) = "en")'
        if kind < 0.55:
            return f'FILTER regex({variable}, "item", "i")'
        if kind < 0.75:
            return f"FILTER ({variable} != {self.vocab.entity()})"
        if kind < 0.9:
            # Value constraints on one variable (kept simple on purpose:
            # ?x = ?y filters would collapse canonical-graph nodes and
            # inject artificial cycles the real logs do not exhibit).
            return f"FILTER ({variable} != {self.vocab.literal()})"
        return f"FILTER (isIRI({variable}))"

    def _path_triple(self) -> str:
        subject = self._fresh_variable()
        obj = self._fresh_variable()
        names = [t for t, _ in _PATH_TYPE_WEIGHTS]
        weights = [w for _, w in _PATH_TYPE_WEIGHTS]
        expression_type = self.rng.choices(names, weights=weights)[0]
        p = self.vocab.predicate
        if expression_type == "!a":
            path = f"!{p()}"
        elif expression_type == "^a":
            path = f"^{p()}"
        elif expression_type == "(a1|...|ak)*":
            k = self.rng.randint(2, 4)
            path = "(" + "|".join(p() for _ in range(k)) + ")*"
        elif expression_type == "a*":
            path = f"{p()}*"
        elif expression_type == "a1/.../ak":
            k = self.rng.randint(2, 6)
            path = "/".join(p() for _ in range(k))
        elif expression_type == "a*/b":
            path = f"{p()}*/{p()}" if self._chance(0.5) else f"{p()}/{p()}*"
        elif expression_type == "a1|...|ak":
            k = self.rng.randint(2, 6)
            path = "|".join(p() for _ in range(k))
        elif expression_type == "a+":
            path = f"{p()}+"
        else:  # a1?/.../ak?
            k = self.rng.randint(2, 5)
            path = "/".join(f"{p()}?" for _ in range(k))
        return f"{subject} {path} {obj} ."

    # -- query forms -----------------------------------------------------
    def build(self) -> str:
        """One synthetic query honouring the dataset profile."""
        draw = self.rng.random()
        select_p, ask_p, describe_p, _ = self.profile.query_type_mix
        if draw < select_p:
            return self._select_or_ask("SELECT")
        if draw < select_p + ask_p:
            return self._select_or_ask("ASK")
        if draw < select_p + ask_p + describe_p:
            return self._describe()
        return self._construct()

    def _select_or_ask(self, form: str) -> str:
        profile = self.profile
        triple_count = self._sample_triple_count()
        if form == "ASK" and triple_count == 0:
            triple_count = 1

        # Decide the decorations first so their triples come out of the
        # sampled budget — the triple-count histogram (Figure 1) counts
        # every triple pattern, wherever it sits in the body.
        use_path = self._chance(profile.property_path_rate)
        use_union = triple_count >= 2 and self._gated_chance(profile.union_rate)
        use_graph = triple_count >= 1 and self._chance(profile.graph_rate)
        use_minus = triple_count >= 2 and self._gated_chance(profile.minus_rate)
        use_not_exists = triple_count >= 2 and self._gated_chance(
            profile.not_exists_rate
        )
        use_subquery = triple_count >= 2 and self._gated_chance(
            profile.subquery_rate
        )
        extra = (
            (1 if use_path else 0)
            + (2 if use_union else 0)
            + (1 if use_graph else 0)
            + (1 if use_minus else 0)
            + (1 if use_not_exists else 0)
            + (1 if use_subquery else 0)
        )
        # Decorations may carry the whole body (a bare UNION of two
        # branches is the paper's "U" row; a bare GRAPH block its "G"
        # row) — only force a core triple when nothing else supplies one.
        decorations_supply = use_union or use_graph or use_path or use_subquery
        floor = 0 if (decorations_supply or triple_count == 0) else 1
        core_count = max(floor, triple_count - extra)
        body_parts, variables = self._cq_core(core_count)

        if use_path:
            body_parts.append(self._path_triple())
        if body_parts and self._chance(profile.optional_rate):
            moved = body_parts.pop()
            body_parts.append(f"OPTIONAL {{ {moved} }}")
        if use_union:
            triple, triple_vars = self._single_triple()
            other, other_vars = self._single_triple()
            variables.extend(triple_vars + other_vars)
            body_parts.append(f"{{ {triple} }} UNION {{ {other} }}")
        if use_graph:
            triple, triple_vars = self._single_triple()
            variables.extend(triple_vars)
            body_parts.append(f"GRAPH {self.vocab.graph_iri()} {{ {triple} }}")
        if use_minus:
            triple, _ = self._single_triple()
            body_parts.append(f"MINUS {{ {triple} }}")
        # Real logs attach filters to large queries disproportionately;
        # scaling by size keeps the overall rate on target while pushing
        # the 1-triple share of the pure-CQ fragment up (Figure 5).
        filter_chance = profile.filter_rate * (0.85 if triple_count <= 1 else 1.35)
        if self._chance(min(0.95, filter_chance)):
            body_parts.append(self._filter_text(variables))
        if use_not_exists:
            triple, _ = self._single_triple()
            body_parts.append(f"FILTER NOT EXISTS {{ {triple} }}")
        if use_subquery:
            inner_var = self._fresh_variable()
            body_parts.append(
                f"{{ SELECT {inner_var} WHERE {{ {inner_var} "
                f"{self.vocab.predicate()} {self._fresh_variable()} }} LIMIT 10 }}"
            )
            variables.append(inner_var)
        if not body_parts:
            body_parts, variables = self._cq_core(1)

        body = "\n  ".join(body_parts)
        unique_vars = list(dict.fromkeys(variables))

        if form == "ASK":
            return f"ASK WHERE {{\n  {body}\n}}"

        distinct = "DISTINCT " if self._chance(profile.distinct_rate) else ""
        use_group_by = self._chance(profile.group_by_rate) and unique_vars
        use_count = self._chance(profile.count_rate) and unique_vars
        if use_group_by or use_count:
            group_var = unique_vars[0]
            head = f"{group_var} (COUNT({unique_vars[-1]}) AS ?cnt)"
            tail = f"\nGROUP BY {group_var}"
        elif unique_vars and self._chance(profile.projection_rate):
            keep = max(1, len(unique_vars) - self.rng.randint(1, len(unique_vars)))
            head = " ".join(unique_vars[:keep])
            tail = ""
        else:
            head = "*"
            tail = ""
        text = f"SELECT {distinct}{head} WHERE {{\n  {body}\n}}{tail}"
        if self._chance(profile.order_by_rate) and unique_vars:
            text += f"\nORDER BY {unique_vars[0]}"
        if self._chance(profile.limit_rate):
            text += f"\nLIMIT {self.rng.choice((10, 50, 100, 1000))}"
            if self._chance(profile.offset_rate / max(profile.limit_rate, 1e-9)):
                text += f"\nOFFSET {self.rng.choice((10, 100, 1000))}"
        return text

    def _describe(self) -> str:
        if self._chance(self.profile.describe_bodyless_rate):
            return f"DESCRIBE {self.vocab.entity()}"
        variable = self._fresh_variable()
        return (
            f"DESCRIBE {variable} WHERE {{ {variable} "
            f"{self.vocab.predicate()} {self.vocab.literal()} }}"
        )

    def _construct(self) -> str:
        subject = self._fresh_variable()
        obj = self._fresh_variable()
        predicate = self.vocab.predicate()
        extra, _ = self._cq_core(max(0, self._sample_triple_count() - 1))
        body = "\n  ".join([f"{subject} {predicate} {obj} ."] + extra)
        return (
            f"CONSTRUCT {{ {subject} {predicate} {obj} . }}\n"
            f"WHERE {{\n  {body}\n}}"
        )


# ---------------------------------------------------------------------------
# Dataset and corpus generation
# ---------------------------------------------------------------------------


def _stable_seed(seed: int, label: str) -> int:
    """Derive a per-dataset RNG seed that is stable across processes.

    ``hash()`` of a string is randomized per interpreter (PYTHONHASHSEED),
    so seeding from a tuple hash would generate a *different corpus on
    every run* — a flaky foundation for the calibrated benchmarks.
    CRC32 is deterministic everywhere.
    """
    return seed * 0x1000193 ^ zlib.crc32(label.encode("utf-8"))


def _invalid_entry(rng: random.Random, vocabulary: _Vocabulary) -> str:
    """A log entry that is not a parseable query (the Total−Valid gap)."""
    kind = rng.random()
    if kind < 0.3:
        return "GET /sparql?format=json HTTP/1.1"  # not a query at all
    if kind < 0.55:
        return f"SELECT ?x WHERE {{ ?x {vocabulary.predicate()} "  # truncated
    if kind < 0.8:
        return "SELECT COUNT(?x) WHERE { ?x ?p ?o }"  # bad aggregate syntax
    return "PREFIX broken SELECT * WHERE { ?s ?p ?o }"


def generate_dataset(
    profile: DatasetProfile, scale: float = 1e-4, seed: int = 0
) -> List[str]:
    """Generate one dataset's raw log entries in log order.

    *scale* multiplies Table 1's counts; the default 1e-4 yields ~18k
    queries across the full corpus.  Unique queries are generated first,
    then duplicated with a skewed repetition profile to hit the
    valid/unique ratio, then invalid entries are mixed in to hit the
    total/valid ratio.
    """
    rng = random.Random(_stable_seed(seed, profile.name))
    vocabulary = _Vocabulary(profile.namespace, rng)
    builder = _QueryBuilder(profile, vocabulary, rng)

    n_unique = max(1, int(round(profile.unique * scale)))
    n_valid = max(n_unique, int(round(profile.valid * scale)))
    n_total = max(n_valid, int(round(profile.total * scale)))

    unique_queries: List[str] = []
    seen = set()
    attempts = 0
    while len(unique_queries) < n_unique and attempts < n_unique * 20:
        attempts += 1
        text = builder.build()
        if text not in seen:
            seen.add(text)
            unique_queries.append(text)

    # Duplicate with a zipf-like profile: few hot queries, long tail.
    entries: List[str] = list(unique_queries)
    extra = n_valid - len(unique_queries)
    if extra > 0 and unique_queries:
        weights = [1.0 / (rank + 1) for rank in range(len(unique_queries))]
        entries.extend(rng.choices(unique_queries, weights=weights, k=extra))
    for _ in range(n_total - len(entries)):
        entries.append(_invalid_entry(rng, vocabulary))
    rng.shuffle(entries)
    return entries


def generate_corpus(
    scale: float = 1e-4,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
) -> Dict[str, List[str]]:
    """Generate the full 13-dataset corpus (or a subset)."""
    names = list(datasets) if datasets is not None else list(DATASET_ORDER)
    corpus: Dict[str, List[str]] = {}
    for name in names:
        profile = DATASET_PROFILES.get(name)
        if profile is None:
            raise WorkloadError(f"unknown dataset {name!r}")
        corpus[name] = generate_dataset(profile, scale=scale, seed=seed)
    return corpus


# ---------------------------------------------------------------------------
# Day logs with refinement sessions (Table 6)
# ---------------------------------------------------------------------------


def generate_day_log(
    n_queries: int = 5000,
    session_rate: float = 0.25,
    seed: int = 0,
    profile: Optional[DatasetProfile] = None,
) -> List[str]:
    """An ordered single-day log containing *refinement sessions*.

    A fraction of the stream belongs to sessions in which a user
    gradually edits a seed query (changing constants, adding triples or
    modifiers) — precisely the behaviour §8's streak analysis measures.
    Session lengths are heavy-tailed so the Table 6 histogram has mass
    in every bucket.
    """
    if profile is None:
        profile = DATASET_PROFILES["DBpedia15"]
    rng = random.Random(_stable_seed(seed, "daylog"))
    vocabulary = _Vocabulary(profile.namespace, rng)
    builder = _QueryBuilder(profile, vocabulary, rng)

    log: List[str] = []
    budget = n_queries
    while budget > 0:
        if rng.random() < session_rate:
            length = _session_length(rng)
            length = min(length, budget)
            log.extend(_refinement_session(builder, vocabulary, rng, length))
            budget -= length
        else:
            log.append(builder.build())
            budget -= 1
    return log


def _session_length(rng: random.Random) -> int:
    """Heavy-tailed session length: mostly short, occasionally 100+."""
    u = rng.random()
    if u < 0.70:
        return rng.randint(2, 10)
    if u < 0.90:
        return rng.randint(11, 30)
    if u < 0.975:
        return rng.randint(31, 70)
    return rng.randint(71, 180)


def _refinement_session(
    builder: _QueryBuilder,
    vocabulary: _Vocabulary,
    rng: random.Random,
    length: int,
) -> List[str]:
    subject = "?item"
    current = (
        f"SELECT {subject} WHERE {{\n  {subject} "
        f"{vocabulary.predicate()} {vocabulary.literal()} .\n}}"
    )
    session = [current]
    for _ in range(length - 1):
        current = _refine(current, vocabulary, rng)
        session.append(current)
    return session


def _refine(text: str, vocabulary: _Vocabulary, rng: random.Random) -> str:
    """One small user edit: swap a constant, append a modifier, or add
    a triple — the kinds of steps that keep Levenshtein distance low.

    Query growth is capped: once the text gets long, users in real logs
    mostly keep tweaking constants rather than appending triples (and
    unbounded growth would make the similarity scans quadratic).
    """
    choice = rng.random()
    if len(text) > 400 and choice >= 0.7:
        choice = rng.random() * 0.4  # fall back to constant swaps
    if choice < 0.4:
        # Swap the literal/entity.
        replacement = vocabulary.literal()
        index = text.rfind('"')
        if index != -1:
            start = text.rfind('"', 0, index)
            if start != -1:
                return text[:start] + replacement + text[index + 1:]
        return text + " "
    if choice < 0.6 and "LIMIT" not in text:
        return text + f"\nLIMIT {rng.choice((10, 20, 50, 100))}"
    if choice < 0.7 and "LIMIT" in text:
        return text.replace("LIMIT", "LIMIT ", 1).replace("LIMIT  ", "LIMIT ")
    if choice < 0.9:
        closing = text.rfind("}")
        lim = text.find("LIMIT")
        cut = closing if lim == -1 or closing < lim else text.rfind("}", 0, lim)
        addition = f"  ?item {vocabulary.predicate()} {vocabulary.literal()} .\n"
        return text[:cut] + addition + text[cut:]
    return text.replace("SELECT ?item", "SELECT DISTINCT ?item", 1)
