"""Generic AST traversal utilities.

Every analysis in the library walks the pattern tree in some way; this
module centralizes the traversal logic so each analysis is a small
function over the streams yielded here.

Paper mapping: traversal primitives under the keyword/operator/path
analyses (Tables 2/3/5).
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from ..rdf.terms import Variable
from . import ast

__all__ = [
    "iter_patterns",
    "iter_triple_patterns",
    "iter_path_patterns",
    "iter_expressions",
    "iter_subqueries",
    "pattern_variables",
    "expression_variables",
    "query_variables",
    "strip_services",
]


def iter_patterns(
    pattern: Optional[ast.Pattern], enter_subqueries: bool = True
) -> Iterator[ast.Pattern]:
    """Depth-first pre-order iteration over all pattern nodes.

    When *enter_subqueries* is set, recurses into the WHERE patterns of
    ``SubSelectPattern`` nodes; EXISTS patterns inside filters are
    always entered (they are patterns of the same query).
    """
    if pattern is None:
        return
    stack = [pattern]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.GroupPattern):
            stack.extend(reversed(node.elements))
        elif isinstance(node, ast.UnionPattern):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, (ast.OptionalPattern, ast.MinusPattern)):
            stack.append(node.pattern)
        elif isinstance(node, (ast.GraphGraphPattern, ast.ServicePattern)):
            stack.append(node.pattern)
        elif isinstance(node, ast.FilterPattern):
            for exists in _iter_exists(node.expression):
                stack.append(exists.pattern)
        elif isinstance(node, ast.SubSelectPattern):
            if enter_subqueries and node.query.pattern is not None:
                stack.append(node.query.pattern)


def _iter_exists(expression: ast.Expression) -> Iterator[ast.ExistsExpression]:
    for sub in iter_expressions(expression):
        if isinstance(sub, ast.ExistsExpression):
            yield sub


def iter_triple_patterns(
    pattern: Optional[ast.Pattern], enter_subqueries: bool = True
) -> Iterator[ast.TriplePattern]:
    """Every triple pattern in the tree, in syntactic order."""
    for node in iter_patterns(pattern, enter_subqueries):
        if isinstance(node, ast.TriplePattern):
            yield node


def iter_path_patterns(
    pattern: Optional[ast.Pattern], enter_subqueries: bool = True
) -> Iterator[ast.PathPattern]:
    """Every property-path pattern in the tree, in syntactic order."""
    for node in iter_patterns(pattern, enter_subqueries):
        if isinstance(node, ast.PathPattern):
            yield node


def iter_expressions(expression: ast.Expression) -> Iterator[ast.Expression]:
    """Depth-first pre-order iteration over expression nodes (does not
    descend into EXISTS patterns — use :func:`iter_patterns` for that)."""
    stack = [expression]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.OrExpression, ast.AndExpression)):
            stack.extend(reversed(node.operands))
        elif isinstance(node, ast.NotExpression):
            stack.append(node.operand)
        elif isinstance(node, (ast.Comparison, ast.Arithmetic)):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, ast.InExpression):
            stack.extend(reversed(node.choices))
            stack.append(node.operand)
        elif isinstance(node, ast.UnaryMinus):
            stack.append(node.operand)
        elif isinstance(node, (ast.FunctionCall, ast.BuiltinCall)):
            stack.extend(reversed(node.args))
        elif isinstance(node, ast.Aggregate):
            if node.expression is not None:
                stack.append(node.expression)


def iter_subqueries(query: ast.Query) -> Iterator[ast.Query]:
    """All subqueries (SubSelect patterns) nested anywhere in *query*."""
    for node in iter_patterns(query.pattern, enter_subqueries=True):
        if isinstance(node, ast.SubSelectPattern):
            yield node.query


def expression_variables(expression: ast.Expression) -> Set[Variable]:
    """Variables mentioned in *expression*, including inside EXISTS."""
    variables: Set[Variable] = set()
    for node in iter_expressions(expression):
        if isinstance(node, ast.TermExpression) and isinstance(node.term, Variable):
            variables.add(node.term)
        elif isinstance(node, ast.ExistsExpression):
            variables |= pattern_variables(node.pattern)
    return variables


def pattern_variables(pattern: Optional[ast.Pattern]) -> Set[Variable]:
    """``vars(P)``: every variable occurring anywhere in the pattern.

    Subqueries export only their projected variables (SPARQL variable
    scoping), so traversal does not descend into them.
    """
    variables: Set[Variable] = set()
    for node in iter_patterns(pattern, enter_subqueries=False):
        if isinstance(node, ast.TriplePattern):
            for term in node.terms():
                if isinstance(term, Variable):
                    variables.add(term)
        elif isinstance(node, ast.PathPattern):
            for term in (node.subject, node.object):
                if isinstance(term, Variable):
                    variables.add(term)
        elif isinstance(node, ast.FilterPattern):
            variables |= expression_variables(node.expression)
        elif isinstance(node, ast.BindPattern):
            variables.add(node.variable)
            variables |= expression_variables(node.expression)
        elif isinstance(node, ast.ValuesPattern):
            variables.update(node.variables)
        elif isinstance(node, ast.GraphGraphPattern):
            if isinstance(node.graph, Variable):
                variables.add(node.graph)
        elif isinstance(node, ast.ServicePattern):
            if isinstance(node.endpoint, Variable):
                variables.add(node.endpoint)
        elif isinstance(node, ast.SubSelectPattern):
            projection = node.query.projection
            if projection is not None and not projection.select_all:
                variables.update(projection.variables())
    return variables


def query_variables(query: ast.Query) -> Set[Variable]:
    """All variables of the query body plus projection/modifier heads."""
    variables = pattern_variables(query.pattern)
    if query.projection is not None and not query.projection.select_all:
        for item in query.projection.items:
            if isinstance(item, Variable):
                variables.add(item)
            else:
                variables.add(item.variable)
                variables |= expression_variables(item.expression)
    if query.values is not None:
        variables.update(query.values.variables)
    return variables


def strip_services(query: ast.Query) -> ast.Query:
    """Return *query* with SERVICE subpatterns removed.

    The paper removes Wikidata's SERVICE subqueries (used only to set
    the output language) before the operator analysis (§4.3, fn. 13).
    """

    def rewrite(pattern: ast.Pattern) -> Optional[ast.Pattern]:
        """Rebuild *pattern* without SERVICE blocks (None = dropped)."""
        if isinstance(pattern, ast.ServicePattern):
            return None
        if isinstance(pattern, ast.GroupPattern):
            elements = []
            changed = False
            for element in pattern.elements:
                out = rewrite(element)
                if out is None:
                    changed = True
                else:
                    if out is not element:
                        changed = True
                    elements.append(out)
            if not elements:
                return None
            if not changed:
                return pattern
            return ast.GroupPattern(tuple(elements))
        if isinstance(pattern, ast.UnionPattern):
            left = rewrite(pattern.left)
            right = rewrite(pattern.right)
            if left is None:
                return right
            if right is None:
                return left
            if left is pattern.left and right is pattern.right:
                return pattern
            return ast.UnionPattern(left, right)
        if isinstance(pattern, ast.OptionalPattern):
            inner = rewrite(pattern.pattern)
            if inner is None:
                return None
            if inner is pattern.pattern:
                return pattern
            return ast.OptionalPattern(inner)
        if isinstance(pattern, ast.MinusPattern):
            inner = rewrite(pattern.pattern)
            if inner is None:
                return None
            if inner is pattern.pattern:
                return pattern
            return ast.MinusPattern(inner)
        if isinstance(pattern, ast.GraphGraphPattern):
            inner = rewrite(pattern.pattern)
            if inner is None:
                return None
            if inner is pattern.pattern:
                return pattern
            return ast.GraphGraphPattern(pattern.graph, inner)
        return pattern

    if query.pattern is None:
        return query
    new_pattern = rewrite(query.pattern)
    if new_pattern is query.pattern:
        return query
    return ast.Query(
        query_type=query.query_type,
        pattern=new_pattern,
        prologue=query.prologue,
        projection=query.projection,
        template=query.template,
        describe_targets=query.describe_targets,
        describe_all=query.describe_all,
        modifier=query.modifier,
        values=query.values,
        datasets=query.datasets,
    )
