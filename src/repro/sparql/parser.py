"""Recursive-descent parser for SPARQL 1.1 queries.

The parser consumes the token stream of :mod:`repro.sparql.tokenizer`
and produces the AST of :mod:`repro.sparql.ast`.  It covers the query
language (not SPARQL Update): the four query forms, group graph
patterns with FILTER / OPTIONAL / UNION / GRAPH / MINUS / BIND /
VALUES / SERVICE, subqueries, property paths, blank-node property
lists, RDF collections, expressions with full operator precedence,
builtins, aggregates, and solution modifiers.

Entry point: :func:`parse_query`.

Paper mapping: the validity oracle of sec 2 (parse failures separate
Total from Valid in Table 1; the paper used Jena 3.0.1).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple, Union

from ..exceptions import SparqlSyntaxError
from ..rdf.namespaces import NamespaceManager
from ..rdf.terms import (
    IRI,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    BlankNode,
    Literal,
    Term,
    Variable,
)
from . import ast
from .tokenizer import Token, TokenType, tokenize

__all__ = ["parse_query", "Parser"]

RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
RDF_TYPE = IRI(RDF_NS + "type")
RDF_FIRST = IRI(RDF_NS + "first")
RDF_REST = IRI(RDF_NS + "rest")
RDF_NIL = IRI(RDF_NS + "nil")

#: Builtin call names accepted with a plain argument list.
BUILTIN_NAMES = frozenset(
    {
        "STR", "LANG", "LANGMATCHES", "DATATYPE", "BOUND", "IRI", "URI",
        "BNODE", "RAND", "ABS", "CEIL", "FLOOR", "ROUND", "CONCAT",
        "STRLEN", "UCASE", "LCASE", "ENCODE_FOR_URI", "CONTAINS",
        "STRSTARTS", "STRENDS", "STRBEFORE", "STRAFTER", "YEAR", "MONTH",
        "DAY", "HOURS", "MINUTES", "SECONDS", "TIMEZONE", "TZ", "NOW",
        "UUID", "STRUUID", "MD5", "SHA1", "SHA256", "SHA384", "SHA512",
        "COALESCE", "IF", "STRLANG", "STRDT", "SAMETERM", "ISIRI",
        "ISURI", "ISBLANK", "ISLITERAL", "ISNUMERIC", "REGEX", "SUBSTR",
        "REPLACE",
    }
)

AGGREGATE_NAMES = frozenset(
    {"COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT"}
)


def parse_query(
    text: str, extra_prefixes: Optional[dict] = None
) -> ast.Query:
    """Parse *text* into a :class:`repro.sparql.ast.Query`.

    *extra_prefixes* supplies prefix bindings available without a
    PREFIX declaration (endpoints such as DBpedia and Wikidata
    pre-declare their vocabulary prefixes; the logs rely on this).

    Raises :class:`~repro.exceptions.SparqlSyntaxError` on any input
    that is not a single valid SPARQL 1.1 query.
    """
    return Parser(text, extra_prefixes=extra_prefixes).parse()


class Parser:
    """Single-use recursive-descent parser over a token list."""

    def __init__(self, text: str, extra_prefixes: Optional[dict] = None) -> None:
        self._tokens = tokenize(text)
        self._pos = 0
        self._namespaces = NamespaceManager(extra_prefixes or {})
        self._base: Optional[str] = None
        self._prefix_decls: List[Tuple[str, str]] = []
        self._bnode_counter = itertools.count()

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> SparqlSyntaxError:
        token = token or self._peek()
        return SparqlSyntaxError(message, token.line, token.column)

    def _expect_punct(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_punct(symbol):
            raise self._error(f"expected {symbol!r}, found {token.value!r}")
        return self._next()

    def _expect_keyword(self, *words: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*words):
            raise self._error(
                f"expected {' or '.join(words)}, found {token.value!r}"
            )
        return self._next()

    def _accept_punct(self, symbol: str) -> bool:
        if self._peek().is_punct(symbol):
            self._next()
            return True
        return False

    def _accept_keyword(self, *words: str) -> bool:
        if self._peek().is_keyword(*words):
            self._next()
            return True
        return False

    def _fresh_bnode(self) -> BlankNode:
        return BlankNode(f"__b{next(self._bnode_counter)}")

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> ast.Query:
        """Parse one complete query, consuming all input."""
        self._parse_prologue()
        token = self._peek()
        if token.is_keyword("SELECT"):
            query = self._parse_select_query()
        elif token.is_keyword("ASK"):
            query = self._parse_ask_query()
        elif token.is_keyword("CONSTRUCT"):
            query = self._parse_construct_query()
        elif token.is_keyword("DESCRIBE"):
            query = self._parse_describe_query()
        else:
            raise self._error(
                f"expected SELECT, ASK, CONSTRUCT or DESCRIBE, found {token.value!r}"
            )
        if self._peek().type != TokenType.EOF:
            raise self._error(f"trailing input: {self._peek().value!r}")
        return query

    # ------------------------------------------------------------------
    # Prologue
    # ------------------------------------------------------------------
    def _parse_prologue(self) -> None:
        while True:
            token = self._peek()
            if token.is_keyword("PREFIX"):
                self._next()
                name_token = self._peek()
                if name_token.type != TokenType.PNAME or not name_token.value.endswith(":"):
                    raise self._error("expected prefix name ending in ':'")
                self._next()
                prefix = name_token.value[:-1]
                iri_token = self._peek()
                if iri_token.type != TokenType.IRIREF:
                    raise self._error("expected IRI after PREFIX")
                self._next()
                namespace = self._resolve_iri(iri_token.value)
                self._namespaces.bind(prefix, namespace)
                self._prefix_decls.append((prefix, namespace))
            elif token.is_keyword("BASE"):
                self._next()
                iri_token = self._peek()
                if iri_token.type != TokenType.IRIREF:
                    raise self._error("expected IRI after BASE")
                self._next()
                self._base = iri_token.value
            else:
                break

    def _prologue(self) -> ast.Prologue:
        return ast.Prologue(base=self._base, prefixes=tuple(self._prefix_decls))

    def _resolve_iri(self, value: str) -> str:
        """Resolve *value* against the BASE declaration if relative."""
        if self._base is None or "://" in value or value.startswith("urn:"):
            return value
        if value.startswith("#") or not value:
            return self._base + value
        base = self._base.rsplit("/", 1)[0] + "/" if "/" in self._base else self._base
        if value.startswith("/"):
            scheme_end = self._base.find("://")
            if scheme_end != -1:
                authority_end = self._base.find("/", scheme_end + 3)
                if authority_end != -1:
                    return self._base[:authority_end] + value
            return self._base + value
        return base + value

    # ------------------------------------------------------------------
    # Query forms
    # ------------------------------------------------------------------
    def _parse_select_query(self) -> ast.Query:
        projection = self._parse_select_clause()
        datasets = self._parse_dataset_clauses()
        pattern = self._parse_where_clause()
        modifier = self._parse_solution_modifier()
        values = self._parse_values_clause_opt()
        return ast.Query(
            query_type=ast.QueryType.SELECT,
            pattern=pattern,
            prologue=self._prologue(),
            projection=projection,
            modifier=modifier,
            values=values,
            datasets=datasets,
        )

    def _parse_select_clause(self) -> ast.Projection:
        self._expect_keyword("SELECT")
        distinct = reduced = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        elif self._accept_keyword("REDUCED"):
            reduced = True
        if self._accept_punct("*"):
            return ast.Projection(select_all=True, distinct=distinct, reduced=reduced)
        items: List[Union[Variable, ast.ProjectionExpression]] = []
        while True:
            token = self._peek()
            if token.type == TokenType.VAR:
                self._next()
                items.append(Variable(token.value))
            elif token.is_punct("("):
                self._next()
                expression = self._parse_expression()
                self._expect_keyword("AS")
                var_token = self._peek()
                if var_token.type != TokenType.VAR:
                    raise self._error("expected variable after AS")
                self._next()
                self._expect_punct(")")
                items.append(
                    ast.ProjectionExpression(expression, Variable(var_token.value))
                )
            else:
                break
        if not items:
            raise self._error("SELECT clause requires '*' or at least one variable")
        return ast.Projection(items=tuple(items), distinct=distinct, reduced=reduced)

    def _parse_ask_query(self) -> ast.Query:
        self._expect_keyword("ASK")
        datasets = self._parse_dataset_clauses()
        pattern = self._parse_where_clause()
        modifier = self._parse_solution_modifier()
        values = self._parse_values_clause_opt()
        return ast.Query(
            query_type=ast.QueryType.ASK,
            pattern=pattern,
            prologue=self._prologue(),
            modifier=modifier,
            values=values,
            datasets=datasets,
        )

    def _parse_construct_query(self) -> ast.Query:
        self._expect_keyword("CONSTRUCT")
        if self._peek().is_punct("{"):
            template = self._parse_construct_template()
            datasets = self._parse_dataset_clauses()
            pattern = self._parse_where_clause()
        else:
            # Short form: CONSTRUCT WHERE { triples } — template = pattern.
            datasets = self._parse_dataset_clauses()
            self._expect_keyword("WHERE")
            self._expect_punct("{")
            triples = self._parse_triples_block(allow_paths=False)
            self._expect_punct("}")
            template = tuple(
                element
                for element in triples
                if isinstance(element, ast.TriplePattern)
            )
            pattern = ast.GroupPattern(tuple(triples))
        modifier = self._parse_solution_modifier()
        values = self._parse_values_clause_opt()
        return ast.Query(
            query_type=ast.QueryType.CONSTRUCT,
            pattern=pattern,
            prologue=self._prologue(),
            template=template,
            modifier=modifier,
            values=values,
            datasets=datasets,
        )

    def _parse_construct_template(self) -> Tuple[ast.TriplePattern, ...]:
        self._expect_punct("{")
        elements = self._parse_triples_block(allow_paths=False)
        self._expect_punct("}")
        template = []
        for element in elements:
            if not isinstance(element, ast.TriplePattern):
                raise self._error("construct template must contain only triples")
            template.append(element)
        return tuple(template)

    def _parse_describe_query(self) -> ast.Query:
        self._expect_keyword("DESCRIBE")
        targets: List[Term] = []
        describe_all = False
        if self._accept_punct("*"):
            describe_all = True
        else:
            while True:
                token = self._peek()
                if token.type == TokenType.VAR:
                    self._next()
                    targets.append(Variable(token.value))
                elif token.type in (TokenType.IRIREF, TokenType.PNAME) or token.is_keyword("A"):
                    targets.append(self._parse_iri())
                else:
                    break
            if not targets:
                raise self._error("DESCRIBE requires '*' or at least one resource")
        datasets = self._parse_dataset_clauses()
        pattern: Optional[ast.Pattern] = None
        if self._peek().is_keyword("WHERE") or self._peek().is_punct("{"):
            pattern = self._parse_where_clause()
        modifier = self._parse_solution_modifier()
        return ast.Query(
            query_type=ast.QueryType.DESCRIBE,
            pattern=pattern,
            prologue=self._prologue(),
            describe_targets=tuple(targets),
            describe_all=describe_all,
            modifier=modifier,
            datasets=datasets,
        )

    def _parse_dataset_clauses(self) -> Tuple[Tuple[IRI, bool], ...]:
        clauses: List[Tuple[IRI, bool]] = []
        while self._accept_keyword("FROM"):
            named = self._accept_keyword("NAMED")
            clauses.append((self._parse_iri(), named))
        return tuple(clauses)

    def _parse_where_clause(self) -> ast.GroupPattern:
        self._accept_keyword("WHERE")
        return self._parse_group_graph_pattern()

    def _parse_values_clause_opt(self) -> Optional[ast.ValuesPattern]:
        if self._peek().is_keyword("VALUES"):
            return self._parse_values()
        return None

    # ------------------------------------------------------------------
    # Group graph patterns
    # ------------------------------------------------------------------
    def _parse_group_graph_pattern(self) -> ast.GroupPattern:
        self._expect_punct("{")
        if self._peek().is_keyword("SELECT"):
            subquery = self._parse_select_query()
            self._expect_punct("}")
            return ast.GroupPattern((ast.SubSelectPattern(subquery),))
        elements: List[ast.Pattern] = []
        while True:
            token = self._peek()
            if token.is_punct("}"):
                self._next()
                return ast.GroupPattern(tuple(elements))
            if token.type == TokenType.EOF:
                raise self._error("unterminated group graph pattern")
            if token.is_keyword("FILTER"):
                self._next()
                elements.append(ast.FilterPattern(self._parse_constraint()))
                self._accept_punct(".")
            elif token.is_keyword("OPTIONAL"):
                self._next()
                elements.append(
                    ast.OptionalPattern(self._parse_group_graph_pattern())
                )
                self._accept_punct(".")
            elif token.is_keyword("MINUS"):
                self._next()
                elements.append(ast.MinusPattern(self._parse_group_graph_pattern()))
                self._accept_punct(".")
            elif token.is_keyword("GRAPH"):
                self._next()
                graph_term = self._parse_var_or_iri()
                elements.append(
                    ast.GraphGraphPattern(graph_term, self._parse_group_graph_pattern())
                )
                self._accept_punct(".")
            elif token.is_keyword("SERVICE"):
                self._next()
                silent = self._accept_keyword("SILENT")
                endpoint = self._parse_var_or_iri()
                elements.append(
                    ast.ServicePattern(
                        endpoint, self._parse_group_graph_pattern(), silent=silent
                    )
                )
                self._accept_punct(".")
            elif token.is_keyword("BIND"):
                self._next()
                self._expect_punct("(")
                expression = self._parse_expression()
                self._expect_keyword("AS")
                var_token = self._peek()
                if var_token.type != TokenType.VAR:
                    raise self._error("expected variable after AS in BIND")
                self._next()
                self._expect_punct(")")
                elements.append(
                    ast.BindPattern(expression, Variable(var_token.value))
                )
                self._accept_punct(".")
            elif token.is_keyword("VALUES"):
                elements.append(self._parse_values())
                self._accept_punct(".")
            elif token.is_punct("{"):
                nested = self._parse_group_graph_pattern()
                pattern = self._parse_union_tail(nested)
                # Unwrap a bare subquery: "{ SELECT ... }" should appear
                # as a SubSelectPattern element, not a nested group.
                if (
                    isinstance(pattern, ast.GroupPattern)
                    and len(pattern.elements) == 1
                    and isinstance(pattern.elements[0], ast.SubSelectPattern)
                ):
                    pattern = pattern.elements[0]
                elements.append(pattern)
                self._accept_punct(".")
            else:
                triples = self._parse_triples_block(allow_paths=True)
                if not triples:
                    raise self._error(f"unexpected token {token.value!r} in pattern")
                elements.extend(triples)

    def _parse_union_tail(self, first: ast.Pattern) -> ast.Pattern:
        pattern = first
        while self._peek().is_keyword("UNION"):
            self._next()
            if not self._peek().is_punct("{"):
                raise self._error("expected '{' after UNION")
            right = self._parse_group_graph_pattern()
            pattern = ast.UnionPattern(pattern, right)
        return pattern

    def _parse_values(self) -> ast.ValuesPattern:
        self._expect_keyword("VALUES")
        variables: List[Variable] = []
        token = self._peek()
        if token.type == TokenType.VAR:
            self._next()
            variables.append(Variable(token.value))
            single = True
        elif token.is_punct("(") or token.type == TokenType.NIL:
            single = False
            if token.type == TokenType.NIL:
                self._next()
            else:
                self._next()
                while self._peek().type == TokenType.VAR:
                    variables.append(Variable(self._next().value))
                self._expect_punct(")")
        else:
            raise self._error("expected variable list after VALUES")
        self._expect_punct("{")
        rows: List[Tuple[Optional[Term], ...]] = []
        while not self._peek().is_punct("}"):
            if self._peek().type == TokenType.EOF:
                raise self._error("unterminated VALUES block")
            if single:
                rows.append((self._parse_data_value(),))
            else:
                if self._peek().type == TokenType.NIL:
                    self._next()
                    rows.append(())
                    continue
                self._expect_punct("(")
                row: List[Optional[Term]] = []
                while not self._peek().is_punct(")"):
                    row.append(self._parse_data_value())
                self._next()
                if len(row) != len(variables):
                    raise self._error(
                        f"VALUES row has {len(row)} terms for {len(variables)} variables"
                    )
                rows.append(tuple(row))
        self._next()
        return ast.ValuesPattern(tuple(variables), tuple(rows))

    def _parse_data_value(self) -> Optional[Term]:
        token = self._peek()
        if token.is_keyword("UNDEF"):
            self._next()
            return None
        term = self._parse_graph_term(allow_var=False, allow_bnode=False)
        return term

    # ------------------------------------------------------------------
    # Triples blocks
    # ------------------------------------------------------------------
    def _parse_triples_block(self, allow_paths: bool) -> List[ast.Pattern]:
        """Parse TriplesSameSubject(Path) ('.' TriplesSameSubject(Path))*."""
        patterns: List[ast.Pattern] = []
        while True:
            token = self._peek()
            if not self._starts_term(token):
                break
            self._parse_triples_same_subject(patterns, allow_paths)
            if not self._accept_punct("."):
                break
        return patterns

    @staticmethod
    def _starts_term(token: Token) -> bool:
        return (
            token.type
            in (
                TokenType.VAR,
                TokenType.IRIREF,
                TokenType.PNAME,
                TokenType.BLANK_NODE,
                TokenType.STRING,
                TokenType.INTEGER,
                TokenType.DECIMAL,
                TokenType.DOUBLE,
                TokenType.ANON,
                TokenType.NIL,
            )
            or token.is_punct("[", "(")
            or token.is_keyword("TRUE", "FALSE")
            or (token.is_punct("+") or token.is_punct("-"))
        )

    def _parse_triples_same_subject(
        self, patterns: List[ast.Pattern], allow_paths: bool
    ) -> None:
        token = self._peek()
        if token.is_punct("[") or token.type == TokenType.ANON:
            subject = self._parse_blank_node_property_list(patterns, allow_paths)
            # Property list may be the whole statement ([...] .) or have
            # a following predicate-object list.
            if self._starts_verb(self._peek()):
                self._parse_property_list(subject, patterns, allow_paths)
            return
        if token.is_punct("(") or token.type == TokenType.NIL:
            subject = self._parse_collection(patterns, allow_paths)
            self._parse_property_list(subject, patterns, allow_paths)
            return
        subject = self._parse_graph_term(allow_var=True, allow_bnode=True)
        self._parse_property_list(subject, patterns, allow_paths)

    def _starts_verb(self, token: Token) -> bool:
        if token.type in (TokenType.VAR, TokenType.IRIREF, TokenType.PNAME):
            return True
        if token.type == TokenType.KEYWORD and token.value == "a":
            return True
        return token.is_punct("^", "!", "(")

    def _parse_property_list(
        self,
        subject: Term,
        patterns: List[ast.Pattern],
        allow_paths: bool,
        optional: bool = False,
    ) -> None:
        first = True
        while True:
            token = self._peek()
            if not self._starts_verb(token):
                if first and not optional:
                    raise self._error(f"expected predicate, found {token.value!r}")
                return
            first = False
            verb = self._parse_verb(allow_paths)
            self._parse_object_list(subject, verb, patterns, allow_paths)
            if not self._accept_punct(";"):
                return
            # A ';' may be trailing (e.g. "?s :p ?o ; .").
            while self._accept_punct(";"):
                pass

    def _parse_verb(self, allow_paths: bool) -> Union[Term, ast.Path]:
        token = self._peek()
        if token.type == TokenType.VAR:
            self._next()
            return Variable(token.value)
        if allow_paths:
            # 'a' (rdf:type) is handled inside the path grammar so that
            # modifiers like "a*" lex/parse correctly.
            path = self._parse_path()
            if isinstance(path, ast.PathIRI):
                return path.iri
            return path
        if token.type == TokenType.KEYWORD and token.value == "a":
            self._next()
            return RDF_TYPE
        return self._parse_iri()

    def _parse_object_list(
        self,
        subject: Term,
        verb: Union[Term, ast.Path],
        patterns: List[ast.Pattern],
        allow_paths: bool,
    ) -> None:
        while True:
            obj = self._parse_object(patterns, allow_paths)
            if isinstance(verb, ast.Path):
                patterns.append(ast.PathPattern(subject, verb, obj))
            else:
                patterns.append(ast.TriplePattern(subject, verb, obj))
            if not self._accept_punct(","):
                return

    def _parse_object(
        self, patterns: List[ast.Pattern], allow_paths: bool
    ) -> Term:
        token = self._peek()
        if token.is_punct("[") or token.type == TokenType.ANON:
            return self._parse_blank_node_property_list(patterns, allow_paths)
        if token.is_punct("(") or token.type == TokenType.NIL:
            return self._parse_collection(patterns, allow_paths)
        return self._parse_graph_term(allow_var=True, allow_bnode=True)

    def _parse_blank_node_property_list(
        self, patterns: List[ast.Pattern], allow_paths: bool
    ) -> BlankNode:
        token = self._peek()
        if token.type == TokenType.ANON:
            self._next()
            return self._fresh_bnode()
        self._expect_punct("[")
        node = self._fresh_bnode()
        self._parse_property_list(node, patterns, allow_paths)
        self._expect_punct("]")
        return node

    def _parse_collection(
        self, patterns: List[ast.Pattern], allow_paths: bool
    ) -> Term:
        token = self._peek()
        if token.type == TokenType.NIL:
            self._next()
            return RDF_NIL
        self._expect_punct("(")
        items: List[Term] = []
        while not self._peek().is_punct(")"):
            if self._peek().type == TokenType.EOF:
                raise self._error("unterminated collection")
            items.append(self._parse_object(patterns, allow_paths))
        self._next()
        if not items:
            return RDF_NIL
        head = self._fresh_bnode()
        node: Term = head
        for index, item in enumerate(items):
            patterns.append(ast.TriplePattern(node, RDF_FIRST, item))
            if index + 1 < len(items):
                nxt = self._fresh_bnode()
                patterns.append(ast.TriplePattern(node, RDF_REST, nxt))
                node = nxt
            else:
                patterns.append(ast.TriplePattern(node, RDF_REST, RDF_NIL))
        return head

    # ------------------------------------------------------------------
    # Terms
    # ------------------------------------------------------------------
    def _parse_iri(self) -> IRI:
        token = self._peek()
        if token.type == TokenType.IRIREF:
            self._next()
            return IRI(self._resolve_iri(token.value))
        if token.type == TokenType.PNAME:
            self._next()
            prefix, _, local = token.value.partition(":")
            namespace = self._namespaces.namespace_for(prefix)
            if namespace is None:
                raise self._error(f"undeclared prefix {prefix!r}", token)
            local = local.replace("\\", "")
            return IRI(namespace + local)
        raise self._error(f"expected IRI, found {token.value!r}")

    def _parse_var_or_iri(self) -> Term:
        token = self._peek()
        if token.type == TokenType.VAR:
            self._next()
            return Variable(token.value)
        return self._parse_iri()

    def _parse_graph_term(self, allow_var: bool, allow_bnode: bool) -> Term:
        token = self._peek()
        if token.type == TokenType.VAR:
            if not allow_var:
                raise self._error("variable not allowed here")
            self._next()
            return Variable(token.value)
        if token.type in (TokenType.IRIREF, TokenType.PNAME):
            return self._parse_iri()
        if token.type == TokenType.BLANK_NODE:
            if not allow_bnode:
                raise self._error("blank node not allowed here")
            self._next()
            return BlankNode(token.value)
        if token.type == TokenType.ANON:
            if not allow_bnode:
                raise self._error("blank node not allowed here")
            self._next()
            return self._fresh_bnode()
        if token.type == TokenType.STRING:
            return self._parse_literal()
        if token.type in (TokenType.INTEGER, TokenType.DECIMAL, TokenType.DOUBLE):
            return self._parse_numeric_literal()
        if token.is_punct("+", "-"):
            sign = self._next().value
            number = self._parse_numeric_literal()
            lexical = number.lexical if sign == "+" else sign + number.lexical
            return Literal(lexical, datatype=number.datatype)
        if token.is_keyword("TRUE", "FALSE"):
            self._next()
            return Literal(token.value.lower(), datatype=XSD_BOOLEAN)
        raise self._error(f"expected RDF term, found {token.value!r}")

    def _parse_literal(self) -> Literal:
        token = self._next()
        assert token.type == TokenType.STRING
        nxt = self._peek()
        if nxt.type == TokenType.LANGTAG:
            self._next()
            return Literal(token.value, language=nxt.value)
        if nxt.is_punct("^^"):
            self._next()
            datatype = self._parse_iri()
            return Literal(token.value, datatype=datatype.value)
        return Literal(token.value)

    def _parse_numeric_literal(self) -> Literal:
        token = self._peek()
        if token.type == TokenType.INTEGER:
            self._next()
            return Literal(token.value, datatype=XSD_INTEGER)
        if token.type == TokenType.DECIMAL:
            self._next()
            return Literal(token.value, datatype=XSD_DECIMAL)
        if token.type == TokenType.DOUBLE:
            self._next()
            return Literal(token.value, datatype=XSD_DOUBLE)
        raise self._error(f"expected number, found {token.value!r}")

    # ------------------------------------------------------------------
    # Property paths (SPARQL 1.1 §9)
    # ------------------------------------------------------------------
    def _parse_path(self) -> ast.Path:
        return self._parse_path_alternative()

    def _parse_path_alternative(self) -> ast.Path:
        options = [self._parse_path_sequence()]
        while self._accept_punct("|"):
            options.append(self._parse_path_sequence())
        if len(options) == 1:
            return options[0]
        return ast.PathAlternative(tuple(options))

    def _parse_path_sequence(self) -> ast.Path:
        steps = [self._parse_path_elt_or_inverse()]
        while self._accept_punct("/"):
            steps.append(self._parse_path_elt_or_inverse())
        if len(steps) == 1:
            return steps[0]
        return ast.PathSequence(tuple(steps))

    def _parse_path_elt_or_inverse(self) -> ast.Path:
        if self._accept_punct("^"):
            return ast.PathInverse(self._parse_path_elt())
        return self._parse_path_elt()

    def _parse_path_elt(self) -> ast.Path:
        primary = self._parse_path_primary()
        token = self._peek()
        if token.is_punct("*", "+", "?"):
            self._next()
            return ast.PathMod(primary, token.value)
        return primary

    def _parse_path_primary(self) -> ast.Path:
        token = self._peek()
        if token.is_punct("!"):
            self._next()
            return self._parse_negated_property_set()
        if token.is_punct("("):
            self._next()
            path = self._parse_path()
            self._expect_punct(")")
            return path
        if token.type == TokenType.KEYWORD and token.value == "a":
            self._next()
            return ast.PathIRI(RDF_TYPE)
        return ast.PathIRI(self._parse_iri())

    def _parse_negated_property_set(self) -> ast.PathNegated:
        forward: List[IRI] = []
        inverse: List[IRI] = []

        def one() -> None:
            """Parse one path-length bound digit sequence."""
            if self._accept_punct("^"):
                inverse.append(self._parse_path_atom_iri())
            else:
                forward.append(self._parse_path_atom_iri())

        if self._accept_punct("("):
            if not self._peek().is_punct(")"):
                one()
                while self._accept_punct("|"):
                    one()
            self._expect_punct(")")
        else:
            one()
        return ast.PathNegated(tuple(forward), tuple(inverse))

    def _parse_path_atom_iri(self) -> IRI:
        token = self._peek()
        if token.type == TokenType.KEYWORD and token.value == "a":
            self._next()
            return RDF_TYPE
        return self._parse_iri()

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_constraint(self) -> ast.Expression:
        token = self._peek()
        if token.is_punct("("):
            return self._parse_bracketted_expression()
        if token.is_keyword("EXISTS", "NOT"):
            return self._parse_exists()
        if token.type == TokenType.KEYWORD and token.value.upper() in BUILTIN_NAMES:
            return self._parse_builtin_call()
        if token.type in (TokenType.IRIREF, TokenType.PNAME):
            return self._parse_iri_function_or_term()
        raise self._error(f"expected filter constraint, found {token.value!r}")

    def _parse_bracketted_expression(self) -> ast.Expression:
        self._expect_punct("(")
        expression = self._parse_expression()
        self._expect_punct(")")
        return expression

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or_expression()

    def _parse_or_expression(self) -> ast.Expression:
        operands = [self._parse_and_expression()]
        while self._accept_punct("||"):
            operands.append(self._parse_and_expression())
        if len(operands) == 1:
            return operands[0]
        return ast.OrExpression(tuple(operands))

    def _parse_and_expression(self) -> ast.Expression:
        operands = [self._parse_relational_expression()]
        while self._accept_punct("&&"):
            operands.append(self._parse_relational_expression())
        if len(operands) == 1:
            return operands[0]
        return ast.AndExpression(tuple(operands))

    def _parse_relational_expression(self) -> ast.Expression:
        left = self._parse_additive_expression()
        token = self._peek()
        if token.is_punct("=", "!=", "<", ">", "<=", ">="):
            self._next()
            right = self._parse_additive_expression()
            return ast.Comparison(token.value, left, right)
        if token.is_keyword("IN"):
            self._next()
            return ast.InExpression(left, self._parse_expression_list(), negated=False)
        if token.is_keyword("NOT"):
            self._next()
            self._expect_keyword("IN")
            return ast.InExpression(left, self._parse_expression_list(), negated=True)
        return left

    def _parse_expression_list(self) -> Tuple[ast.Expression, ...]:
        if self._peek().type == TokenType.NIL:
            self._next()
            return ()
        self._expect_punct("(")
        expressions = [self._parse_expression()]
        while self._accept_punct(","):
            expressions.append(self._parse_expression())
        self._expect_punct(")")
        return tuple(expressions)

    def _parse_additive_expression(self) -> ast.Expression:
        left = self._parse_multiplicative_expression()
        while True:
            token = self._peek()
            if token.is_punct("+", "-"):
                self._next()
                right = self._parse_multiplicative_expression()
                left = ast.Arithmetic(token.value, left, right)
            else:
                return left

    def _parse_multiplicative_expression(self) -> ast.Expression:
        left = self._parse_unary_expression()
        while True:
            token = self._peek()
            if token.is_punct("*", "/"):
                self._next()
                right = self._parse_unary_expression()
                left = ast.Arithmetic(token.value, left, right)
            else:
                return left

    def _parse_unary_expression(self) -> ast.Expression:
        token = self._peek()
        if token.is_punct("!"):
            self._next()
            return ast.NotExpression(self._parse_unary_expression())
        if token.is_punct("-"):
            self._next()
            return ast.UnaryMinus(self._parse_unary_expression())
        if token.is_punct("+"):
            self._next()
            return self._parse_unary_expression()
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> ast.Expression:
        token = self._peek()
        if token.is_punct("("):
            return self._parse_bracketted_expression()
        if token.type == TokenType.VAR:
            self._next()
            return ast.TermExpression(Variable(token.value))
        if token.type == TokenType.STRING:
            return ast.TermExpression(self._parse_literal())
        if token.type in (TokenType.INTEGER, TokenType.DECIMAL, TokenType.DOUBLE):
            return ast.TermExpression(self._parse_numeric_literal())
        if token.is_keyword("TRUE", "FALSE"):
            self._next()
            return ast.TermExpression(
                Literal(token.value.lower(), datatype=XSD_BOOLEAN)
            )
        if token.is_keyword("EXISTS", "NOT"):
            return self._parse_exists()
        if token.type == TokenType.KEYWORD:
            upper = token.value.upper()
            if upper in AGGREGATE_NAMES:
                return self._parse_aggregate()
            if upper in BUILTIN_NAMES:
                return self._parse_builtin_call()
            raise self._error(f"unexpected identifier {token.value!r} in expression")
        if token.type in (TokenType.IRIREF, TokenType.PNAME):
            return self._parse_iri_function_or_term()
        raise self._error(f"unexpected token {token.value!r} in expression")

    def _parse_exists(self) -> ast.ExistsExpression:
        negated = False
        if self._accept_keyword("NOT"):
            negated = True
        self._expect_keyword("EXISTS")
        pattern = self._parse_group_graph_pattern()
        return ast.ExistsExpression(pattern, negated=negated)

    def _parse_builtin_call(self) -> ast.BuiltinCall:
        name_token = self._next()
        name = name_token.value.upper()
        token = self._peek()
        if token.type == TokenType.NIL:
            self._next()
            return ast.BuiltinCall(name, ())
        self._expect_punct("(")
        args: List[ast.Expression] = []
        if not self._peek().is_punct(")"):
            args.append(self._parse_expression())
            while self._accept_punct(","):
                args.append(self._parse_expression())
        self._expect_punct(")")
        return ast.BuiltinCall(name, tuple(args))

    def _parse_aggregate(self) -> ast.Aggregate:
        name_token = self._next()
        name = name_token.value.upper()
        self._expect_punct("(")
        distinct = self._accept_keyword("DISTINCT")
        if name == "COUNT" and self._accept_punct("*"):
            self._expect_punct(")")
            return ast.Aggregate(name, None, distinct=distinct)
        expression = self._parse_expression()
        separator: Optional[str] = None
        if name == "GROUP_CONCAT" and self._accept_punct(";"):
            self._expect_keyword("SEPARATOR")
            self._expect_punct("=")
            separator_token = self._peek()
            if separator_token.type != TokenType.STRING:
                raise self._error("SEPARATOR requires a string literal")
            self._next()
            separator = separator_token.value
        self._expect_punct(")")
        return ast.Aggregate(name, expression, distinct=distinct, separator=separator)

    def _parse_iri_function_or_term(self) -> ast.Expression:
        iri = self._parse_iri()
        token = self._peek()
        if token.is_punct("(") or token.type == TokenType.NIL:
            if token.type == TokenType.NIL:
                self._next()
                return ast.FunctionCall(iri, ())
            self._next()
            distinct = self._accept_keyword("DISTINCT")
            args: List[ast.Expression] = []
            if not self._peek().is_punct(")"):
                args.append(self._parse_expression())
                while self._accept_punct(","):
                    args.append(self._parse_expression())
            self._expect_punct(")")
            return ast.FunctionCall(iri, tuple(args), distinct=distinct)
        return ast.TermExpression(iri)

    # ------------------------------------------------------------------
    # Solution modifiers
    # ------------------------------------------------------------------
    def _parse_solution_modifier(self) -> ast.SolutionModifier:
        group_by: List[Union[ast.Expression, ast.ProjectionExpression]] = []
        having: List[ast.Expression] = []
        order_by: List[ast.OrderCondition] = []
        limit: Optional[int] = None
        offset: Optional[int] = None

        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            while True:
                token = self._peek()
                if token.type == TokenType.VAR:
                    self._next()
                    group_by.append(ast.TermExpression(Variable(token.value)))
                elif token.is_punct("("):
                    self._next()
                    expression = self._parse_expression()
                    if self._accept_keyword("AS"):
                        var_token = self._peek()
                        if var_token.type != TokenType.VAR:
                            raise self._error("expected variable after AS")
                        self._next()
                        self._expect_punct(")")
                        group_by.append(
                            ast.ProjectionExpression(
                                expression, Variable(var_token.value)
                            )
                        )
                    else:
                        self._expect_punct(")")
                        group_by.append(expression)
                elif token.type == TokenType.KEYWORD and token.value.upper() in BUILTIN_NAMES:
                    group_by.append(self._parse_builtin_call())
                elif token.type in (TokenType.IRIREF, TokenType.PNAME):
                    group_by.append(self._parse_iri_function_or_term())
                else:
                    break
            if not group_by:
                raise self._error("GROUP BY requires at least one condition")

        if self._accept_keyword("HAVING"):
            having.append(self._parse_constraint())
            while self._peek().is_punct("(") or (
                self._peek().type == TokenType.KEYWORD
                and self._peek().value.upper() in BUILTIN_NAMES
            ):
                having.append(self._parse_constraint())

        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                token = self._peek()
                if token.is_keyword("ASC", "DESC"):
                    self._next()
                    descending = token.value.upper() == "DESC"
                    order_by.append(
                        ast.OrderCondition(
                            self._parse_bracketted_expression(), descending
                        )
                    )
                elif token.type == TokenType.VAR:
                    self._next()
                    order_by.append(
                        ast.OrderCondition(ast.TermExpression(Variable(token.value)))
                    )
                elif token.is_punct("("):
                    order_by.append(
                        ast.OrderCondition(self._parse_bracketted_expression())
                    )
                elif (
                    token.type == TokenType.KEYWORD
                    and token.value.upper() in BUILTIN_NAMES
                ):
                    order_by.append(ast.OrderCondition(self._parse_builtin_call()))
                else:
                    break
            if not order_by:
                raise self._error("ORDER BY requires at least one condition")

        # LIMIT and OFFSET may appear in either order.
        for _ in range(2):
            if self._accept_keyword("LIMIT"):
                limit = self._parse_non_negative_integer("LIMIT")
            elif self._accept_keyword("OFFSET"):
                offset = self._parse_non_negative_integer("OFFSET")

        return ast.SolutionModifier(
            group_by=tuple(group_by),
            having=tuple(having),
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
        )

    def _parse_non_negative_integer(self, context: str) -> int:
        token = self._peek()
        if token.type != TokenType.INTEGER:
            raise self._error(f"{context} requires an integer")
        self._next()
        return int(token.value)
