"""AST → SPARQL text serialization.

Produces canonical, re-parseable SPARQL 1.1 text.  The round trip
``parse(serialize(parse(q)))`` yields an AST equal to ``parse(q)`` up to
blank-node labels, which the property-based tests verify.

Paper mapping: canonical query text for dedup diagnostics and the Table
5 non-Ctract samples.
"""

from __future__ import annotations

from typing import List

from ..rdf.terms import Variable
from . import ast

__all__ = ["serialize_query", "serialize_pattern", "serialize_expression", "serialize_path"]

_INDENT = "  "


def serialize_query(query: ast.Query) -> str:
    """Render *query* as SPARQL text (no PREFIX declarations; all IRIs
    are written in full ``<...>`` form, which is always valid)."""
    lines: List[str] = []
    if query.query_type is ast.QueryType.SELECT:
        assert query.projection is not None
        lines.append(_select_clause(query.projection))
    elif query.query_type is ast.QueryType.ASK:
        lines.append("ASK")
    elif query.query_type is ast.QueryType.CONSTRUCT:
        lines.append("CONSTRUCT {")
        for triple in query.template:
            lines.append(_INDENT + _triple_text(triple))
        lines.append("}")
    else:
        targets = "*" if query.describe_all else " ".join(
            term.sparql_text() for term in query.describe_targets
        )
        lines.append(f"DESCRIBE {targets}".rstrip())
    for dataset_iri, named in query.datasets:
        keyword = "FROM NAMED" if named else "FROM"
        lines.append(f"{keyword} {dataset_iri.sparql_text()}")
    if query.pattern is not None:
        lines.append("WHERE " + serialize_pattern(query.pattern, indent=0))
    lines.extend(_modifier_lines(query.modifier))
    if query.values is not None:
        lines.append(_values_text(query.values, indent=0))
    return "\n".join(lines)


def _select_clause(projection: ast.Projection) -> str:
    parts = ["SELECT"]
    if projection.distinct:
        parts.append("DISTINCT")
    if projection.reduced:
        parts.append("REDUCED")
    if projection.select_all:
        parts.append("*")
    else:
        for item in projection.items:
            if isinstance(item, Variable):
                parts.append(item.sparql_text())
            else:
                parts.append(
                    f"({serialize_expression(item.expression)} AS "
                    f"{item.variable.sparql_text()})"
                )
    return " ".join(parts)


def _modifier_lines(modifier: ast.SolutionModifier) -> List[str]:
    lines: List[str] = []
    if modifier.group_by:
        conditions = []
        for condition in modifier.group_by:
            if isinstance(condition, ast.ProjectionExpression):
                conditions.append(
                    f"({serialize_expression(condition.expression)} AS "
                    f"{condition.variable.sparql_text()})"
                )
            elif isinstance(condition, ast.TermExpression):
                conditions.append(condition.term.sparql_text())
            else:
                conditions.append(f"({serialize_expression(condition)})")
        lines.append("GROUP BY " + " ".join(conditions))
    for having in modifier.having:
        lines.append(f"HAVING ({serialize_expression(having)})")
    if modifier.order_by:
        conditions = []
        for order in modifier.order_by:
            body = serialize_expression(order.expression)
            if order.descending:
                conditions.append(f"DESC({body})")
            elif isinstance(order.expression, ast.TermExpression) and isinstance(
                order.expression.term, Variable
            ):
                conditions.append(body)
            else:
                conditions.append(f"ASC({body})")
        lines.append("ORDER BY " + " ".join(conditions))
    if modifier.limit is not None:
        lines.append(f"LIMIT {modifier.limit}")
    if modifier.offset is not None:
        lines.append(f"OFFSET {modifier.offset}")
    return lines


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


def serialize_pattern(pattern: ast.Pattern, indent: int = 0) -> str:
    """Render a pattern; group patterns include their braces."""
    pad = _INDENT * indent
    inner_pad = _INDENT * (indent + 1)
    if isinstance(pattern, ast.GroupPattern):
        if not pattern.elements:
            return "{ }"
        lines = ["{"]
        for element in pattern.elements:
            lines.append(inner_pad + _element_text(element, indent + 1))
        lines.append(pad + "}")
        return "\n".join(lines)
    return _element_text(pattern, indent)


def _element_text(element: ast.Pattern, indent: int) -> str:
    if isinstance(element, ast.GroupPattern):
        return serialize_pattern(element, indent)
    if isinstance(element, ast.TriplePattern):
        return _triple_text(element)
    if isinstance(element, ast.PathPattern):
        return (
            f"{element.subject.sparql_text()} {serialize_path(element.path)} "
            f"{element.object.sparql_text()} ."
        )
    if isinstance(element, ast.FilterPattern):
        return f"FILTER ({serialize_expression(element.expression)})"
    if isinstance(element, ast.BindPattern):
        return (
            f"BIND ({serialize_expression(element.expression)} AS "
            f"{element.variable.sparql_text()})"
        )
    if isinstance(element, ast.OptionalPattern):
        return "OPTIONAL " + serialize_pattern(element.pattern, indent)
    if isinstance(element, ast.MinusPattern):
        return "MINUS " + serialize_pattern(element.pattern, indent)
    if isinstance(element, ast.GraphGraphPattern):
        return (
            f"GRAPH {element.graph.sparql_text()} "
            + serialize_pattern(element.pattern, indent)
        )
    if isinstance(element, ast.ServicePattern):
        silent = "SILENT " if element.silent else ""
        return (
            f"SERVICE {silent}{element.endpoint.sparql_text()} "
            + serialize_pattern(element.pattern, indent)
        )
    if isinstance(element, ast.UnionPattern):
        left = serialize_pattern(_ensure_group(element.left), indent)
        right = serialize_pattern(_ensure_group(element.right), indent)
        return f"{left} UNION {right}"
    if isinstance(element, ast.ValuesPattern):
        return _values_text(element, indent)
    if isinstance(element, ast.SubSelectPattern):
        body = serialize_query(element.query)
        inner_pad = _INDENT * (indent + 1)
        indented = "\n".join(inner_pad + line for line in body.splitlines())
        return "{\n" + indented + "\n" + _INDENT * indent + "}"
    raise TypeError(f"cannot serialize pattern {element!r}")


def _ensure_group(pattern: ast.Pattern) -> ast.Pattern:
    if isinstance(pattern, (ast.GroupPattern, ast.UnionPattern)):
        return pattern
    return ast.GroupPattern((pattern,))


def _triple_text(triple: ast.TriplePattern) -> str:
    return (
        f"{triple.subject.sparql_text()} {triple.predicate.sparql_text()} "
        f"{triple.object.sparql_text()} ."
    )


def _values_text(values: ast.ValuesPattern, indent: int) -> str:
    header = "(" + " ".join(v.sparql_text() for v in values.variables) + ")"
    rows: List[str] = []
    for row in values.rows:
        cells = " ".join("UNDEF" if t is None else t.sparql_text() for t in row)
        rows.append(f"({cells})")
    return f"VALUES {header} {{ {' '.join(rows)} }}"


# ---------------------------------------------------------------------------
# Property paths
# ---------------------------------------------------------------------------


def serialize_path(path: ast.Path) -> str:
    """Render a property path with minimal but safe parenthesization."""
    if isinstance(path, ast.PathIRI):
        return path.iri.sparql_text()
    if isinstance(path, ast.PathInverse):
        return "^" + _path_atom(path.path)
    if isinstance(path, ast.PathSequence):
        return "/".join(_path_seq_item(step) for step in path.steps)
    if isinstance(path, ast.PathAlternative):
        return "|".join(_path_seq_item(option) for option in path.options)
    if isinstance(path, ast.PathMod):
        return _path_atom(path.path) + path.modifier
    if isinstance(path, ast.PathNegated):
        items = [iri.sparql_text() for iri in path.forward]
        items += ["^" + iri.sparql_text() for iri in path.inverse]
        if len(items) == 1 and not items[0].startswith("^"):
            return "!" + items[0]
        return "!(" + "|".join(items) + ")"
    raise TypeError(f"cannot serialize path {path!r}")


def _path_atom(path: ast.Path) -> str:
    text = serialize_path(path)
    if isinstance(path, (ast.PathIRI, ast.PathNegated)):
        return text
    return f"({text})"


def _path_seq_item(path: ast.Path) -> str:
    if isinstance(path, (ast.PathSequence, ast.PathAlternative)):
        return f"({serialize_path(path)})"
    return serialize_path(path)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def serialize_expression(expression: ast.Expression) -> str:
    """Serialize an expression back to SPARQL surface syntax."""
    if isinstance(expression, ast.TermExpression):
        return expression.term.sparql_text()
    if isinstance(expression, ast.OrExpression):
        return " || ".join(_expr_operand(e) for e in expression.operands)
    if isinstance(expression, ast.AndExpression):
        return " && ".join(_expr_operand(e) for e in expression.operands)
    if isinstance(expression, ast.NotExpression):
        return "!" + _expr_operand(expression.operand)
    if isinstance(expression, ast.Comparison):
        return (
            f"{_expr_operand(expression.left)} {expression.op} "
            f"{_expr_operand(expression.right)}"
        )
    if isinstance(expression, ast.InExpression):
        keyword = "NOT IN" if expression.negated else "IN"
        choices = ", ".join(serialize_expression(e) for e in expression.choices)
        return f"{_expr_operand(expression.operand)} {keyword} ({choices})"
    if isinstance(expression, ast.Arithmetic):
        return (
            f"{_expr_operand(expression.left)} {expression.op} "
            f"{_expr_operand(expression.right)}"
        )
    if isinstance(expression, ast.UnaryMinus):
        return "-" + _expr_operand(expression.operand)
    if isinstance(expression, ast.FunctionCall):
        args = ", ".join(serialize_expression(e) for e in expression.args)
        distinct = "DISTINCT " if expression.distinct else ""
        return f"{expression.function.sparql_text()}({distinct}{args})"
    if isinstance(expression, ast.BuiltinCall):
        args = ", ".join(serialize_expression(e) for e in expression.args)
        return f"{expression.name}({args})"
    if isinstance(expression, ast.ExistsExpression):
        keyword = "NOT EXISTS" if expression.negated else "EXISTS"
        return f"{keyword} {serialize_pattern(expression.pattern)}"
    if isinstance(expression, ast.Aggregate):
        distinct = "DISTINCT " if expression.distinct else ""
        if expression.expression is None:
            body = "*"
        else:
            body = serialize_expression(expression.expression)
        if expression.separator is not None:
            escaped = expression.separator.replace("\\", "\\\\").replace('"', '\\"')
            return f'{expression.name}({distinct}{body}; SEPARATOR="{escaped}")'
        return f"{expression.name}({distinct}{body})"
    raise TypeError(f"cannot serialize expression {expression!r}")


def _expr_operand(expression: ast.Expression) -> str:
    """Parenthesize compound operands so precedence survives reparsing."""
    text = serialize_expression(expression)
    if isinstance(
        expression,
        (
            ast.OrExpression,
            ast.AndExpression,
            ast.Comparison,
            ast.Arithmetic,
            ast.InExpression,
        ),
    ):
        return f"({text})"
    return text
