"""SPARQL 1.1 parsing, AST, serialization, and traversal.

Paper mapping: the SPARQL machinery of sec 3; parseability defines Table
1's Valid corpus.
"""

from . import ast, walk
from .parser import Parser, parse_query
from .serializer import serialize_expression, serialize_path, serialize_pattern, serialize_query
from .tokenizer import Token, TokenType, tokenize

__all__ = [
    "ast",
    "walk",
    "Parser",
    "parse_query",
    "serialize_query",
    "serialize_pattern",
    "serialize_expression",
    "serialize_path",
    "Token",
    "TokenType",
    "tokenize",
]
