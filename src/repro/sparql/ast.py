"""SPARQL 1.1 abstract syntax tree.

The AST mirrors the conceptual model of the paper's §3: a query is a
tuple (query-type, pattern, solution-modifier).  Patterns form a tree
over the operators And (grouping), Union, Opt, Graph, Minus, Filter,
Bind, Values, Service, and subqueries; leaves are triple patterns and
property-path patterns.

All nodes are dataclasses.  Pattern and expression nodes are immutable
by convention (analyses never mutate a parsed query).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple, Union

from ..rdf.terms import IRI, Term, Variable

__all__ = [
    "QueryType",
    "Query",
    "Prologue",
    "SolutionModifier",
    "OrderCondition",
    "Projection",
    "ProjectionExpression",
    # patterns
    "Pattern",
    "TriplePattern",
    "PathPattern",
    "GroupPattern",
    "UnionPattern",
    "OptionalPattern",
    "GraphGraphPattern",
    "MinusPattern",
    "FilterPattern",
    "BindPattern",
    "ValuesPattern",
    "ServicePattern",
    "SubSelectPattern",
    # property paths
    "Path",
    "PathIRI",
    "PathInverse",
    "PathSequence",
    "PathAlternative",
    "PathMod",
    "PathNegated",
    # expressions
    "Expression",
    "TermExpression",
    "OrExpression",
    "AndExpression",
    "NotExpression",
    "Comparison",
    "Arithmetic",
    "UnaryMinus",
    "FunctionCall",
    "BuiltinCall",
    "ExistsExpression",
    "Aggregate",
    "InExpression",
]


class QueryType(str, Enum):
    """The four SPARQL query forms."""

    SELECT = "SELECT"
    ASK = "ASK"
    CONSTRUCT = "CONSTRUCT"
    DESCRIBE = "DESCRIBE"


# ---------------------------------------------------------------------------
# Property paths
# ---------------------------------------------------------------------------


class Path:
    """Base class for property-path expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class PathIRI(Path):
    """An atomic path: follow one edge labeled *iri*."""

    iri: IRI


@dataclass(frozen=True)
class PathInverse(Path):
    """``^path`` — follow *path* in reverse."""

    path: Path


@dataclass(frozen=True)
class PathSequence(Path):
    """``p1 / p2 / ... / pk`` — concatenation."""

    steps: Tuple[Path, ...]


@dataclass(frozen=True)
class PathAlternative(Path):
    """``p1 | p2 | ... | pk`` — union of paths."""

    options: Tuple[Path, ...]


@dataclass(frozen=True)
class PathMod(Path):
    """``path*``, ``path+``, or ``path?``."""

    path: Path
    modifier: str  # one of "*", "+", "?"

    def __post_init__(self) -> None:
        if self.modifier not in ("*", "+", "?"):
            raise ValueError(f"bad path modifier: {self.modifier!r}")


@dataclass(frozen=True)
class PathNegated(Path):
    """``!iri`` or ``!(iri1 | ^iri2 | ...)`` — negated property set.

    *forward* holds plain IRIs, *inverse* holds the ``^``-ed ones.
    """

    forward: Tuple[IRI, ...] = ()
    inverse: Tuple[IRI, ...] = ()


# ---------------------------------------------------------------------------
# Expressions (FILTER / BIND / HAVING / projection expressions)
# ---------------------------------------------------------------------------


class Expression:
    """Base class for SPARQL expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class TermExpression(Expression):
    """A term (variable, IRI, or literal) used as an expression."""

    term: Term


@dataclass(frozen=True)
class OrExpression(Expression):
    """Boolean disjunction (``||``)."""
    operands: Tuple[Expression, ...]


@dataclass(frozen=True)
class AndExpression(Expression):
    """Boolean conjunction (``&&``)."""
    operands: Tuple[Expression, ...]


@dataclass(frozen=True)
class NotExpression(Expression):
    """Boolean negation (``!``)."""
    operand: Expression


@dataclass(frozen=True)
class Comparison(Expression):
    """``left op right`` with op ∈ {=, !=, <, >, <=, >=}."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class InExpression(Expression):
    """``expr [NOT] IN (e1, ..., ek)``."""

    operand: Expression
    choices: Tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class Arithmetic(Expression):
    """``left op right`` with op ∈ {+, -, *, /}."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryMinus(Expression):
    """Arithmetic negation (unary ``-``)."""
    operand: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A call of an IRI-named function (e.g. custom or xsd: casts)."""

    function: IRI
    args: Tuple[Expression, ...]
    distinct: bool = False


@dataclass(frozen=True)
class BuiltinCall(Expression):
    """A SPARQL builtin call such as ``LANG``, ``BOUND``, ``REGEX``."""

    name: str  # uppercased builtin name
    args: Tuple[Expression, ...]


@dataclass(frozen=True)
class ExistsExpression(Expression):
    """``EXISTS { pattern }`` / ``NOT EXISTS { pattern }``."""

    pattern: "GroupPattern"
    negated: bool = False


@dataclass(frozen=True)
class Aggregate(Expression):
    """``COUNT/SUM/MIN/MAX/AVG/SAMPLE/GROUP_CONCAT`` applications."""

    name: str  # uppercased aggregate name
    expression: Optional[Expression]  # None only for COUNT(*)
    distinct: bool = False
    separator: Optional[str] = None  # GROUP_CONCAT only


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


class Pattern:
    """Base class for graph patterns."""

    __slots__ = ()


@dataclass(frozen=True)
class TriplePattern(Pattern):
    """A triple pattern ``s p o`` (no property path)."""

    subject: Term
    predicate: Term
    object: Term

    def terms(self) -> Tuple[Term, Term, Term]:
        """The pattern as a (subject, predicate, object) tuple."""
        return (self.subject, self.predicate, self.object)


@dataclass(frozen=True)
class PathPattern(Pattern):
    """A property-path pattern ``s path o``."""

    subject: Term
    path: Path
    object: Term


@dataclass(frozen=True)
class FilterPattern(Pattern):
    """A FILTER constraint, kept in place inside its group."""

    expression: Expression


@dataclass(frozen=True)
class BindPattern(Pattern):
    """``BIND(expr AS ?var)``."""

    expression: Expression
    variable: Variable


@dataclass(frozen=True)
class ValuesPattern(Pattern):
    """Inline data: ``VALUES (?x ?y) { (v1 v2) ... }``.

    ``None`` in a row encodes UNDEF.
    """

    variables: Tuple[Variable, ...]
    rows: Tuple[Tuple[Optional[Term], ...], ...]


@dataclass(frozen=True)
class GroupPattern(Pattern):
    """A group graph pattern ``{ ... }``: conjunction of elements."""

    elements: Tuple[Pattern, ...]


@dataclass(frozen=True)
class UnionPattern(Pattern):
    """``left UNION right`` (n-ary unions are right-nested by the parser
    and flattened on demand by analyses)."""

    left: Pattern
    right: Pattern


@dataclass(frozen=True)
class OptionalPattern(Pattern):
    """``OPTIONAL { ... }`` — the left operand is implicit (the
    preceding elements of the enclosing group)."""

    pattern: Pattern


@dataclass(frozen=True)
class GraphGraphPattern(Pattern):
    """``GRAPH term { ... }``."""

    graph: Term  # IRI or Variable
    pattern: Pattern


@dataclass(frozen=True)
class MinusPattern(Pattern):
    """``MINUS { ... }``."""

    pattern: Pattern


@dataclass(frozen=True)
class ServicePattern(Pattern):
    """``SERVICE [SILENT] term { ... }`` (federation; parsed, and
    stripped by the corpus study exactly as the paper's fn. 13 does)."""

    endpoint: Term  # IRI or Variable
    pattern: Pattern
    silent: bool = False


@dataclass(frozen=True)
class SubSelectPattern(Pattern):
    """A subquery ``{ SELECT ... }`` used as a graph pattern."""

    query: "Query"


# ---------------------------------------------------------------------------
# Query-level structures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Prologue:
    """BASE and PREFIX declarations, in source order."""

    base: Optional[str] = None
    prefixes: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ProjectionExpression:
    """``(expr AS ?var)`` in a SELECT clause."""

    expression: Expression
    variable: Variable


@dataclass(frozen=True)
class Projection:
    """The SELECT clause contents.

    ``select_all`` encodes ``SELECT *``; otherwise *items* holds
    variables and ``(expr AS ?var)`` expressions in order.
    """

    select_all: bool = False
    items: Tuple[Union[Variable, ProjectionExpression], ...] = ()
    distinct: bool = False
    reduced: bool = False

    def variables(self) -> Tuple[Variable, ...]:
        """The values-block variables, in declaration order."""
        out: List[Variable] = []
        for item in self.items:
            if isinstance(item, Variable):
                out.append(item)
            else:
                out.append(item.variable)
        return tuple(out)


@dataclass(frozen=True)
class OrderCondition:
    """One ORDER BY condition."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SolutionModifier:
    """GROUP BY / HAVING / ORDER BY / LIMIT / OFFSET."""

    group_by: Tuple[Union[Expression, ProjectionExpression], ...] = ()
    having: Tuple[Expression, ...] = ()
    order_by: Tuple[OrderCondition, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None

    def is_trivial(self) -> bool:
        """Whether the pattern adds no constraint (empty group)."""
        return not (
            self.group_by or self.having or self.order_by
            or self.limit is not None or self.offset is not None
        )


@dataclass(frozen=True)
class Query:
    """A full SPARQL query: (query-type, pattern, solution-modifier).

    *pattern* is ``None`` for body-less queries — the paper notes that
    4.47% of its unique corpus are DESCRIBE queries without a body.
    For CONSTRUCT, *template* holds the construct template; for
    DESCRIBE, *describe_targets* holds the described terms (empty
    tuple means ``DESCRIBE *``).
    """

    query_type: QueryType
    pattern: Optional[Pattern]
    prologue: Prologue = Prologue()
    projection: Optional[Projection] = None  # SELECT only
    template: Tuple[TriplePattern, ...] = ()  # CONSTRUCT only
    describe_targets: Tuple[Term, ...] = ()  # DESCRIBE only
    describe_all: bool = False  # DESCRIBE *
    modifier: SolutionModifier = SolutionModifier()
    values: Optional[ValuesPattern] = None  # trailing VALUES clause
    #: FROM / FROM NAMED dataset clauses as (iri, is_named) pairs.
    datasets: Tuple[Tuple[IRI, bool], ...] = ()

    def has_body(self) -> bool:
        """Whether the query has a WHERE body (DESCRIBE may not)."""
        return self.pattern is not None
