"""SPARQL 1.1 lexer.

Turns a query string into a stream of :class:`Token` objects.  The lexer
covers the full terminal vocabulary the parser needs: IRI references,
prefixed names, blank-node labels, variables (``?x``/``$x``), string
literals in all four quote forms, numeric literals, language tags,
keywords/identifiers, property-path and expression punctuation, and
comments.  Positions (1-based line/column) are tracked for error
messages, which the log pipeline surfaces when counting invalid queries.

Paper mapping: first stage of the sec 2 validity check (Table 1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from ..exceptions import SparqlSyntaxError

__all__ = ["Token", "TokenType", "tokenize"]


class TokenType:
    """Token categories (plain string constants; cheap to compare)."""

    IRIREF = "IRIREF"  # <http://...>
    PNAME = "PNAME"  # prefix:local or prefix: or :local
    BLANK_NODE = "BLANK_NODE"  # _:label
    VAR = "VAR"  # ?x or $x
    STRING = "STRING"  # "..." '...' """...""" '''...'''
    LANGTAG = "LANGTAG"  # @en, @en-US
    INTEGER = "INTEGER"
    DECIMAL = "DECIMAL"
    DOUBLE = "DOUBLE"
    KEYWORD = "KEYWORD"  # SELECT, WHERE, FILTER, a, true, false, ...
    PUNCT = "PUNCT"  # { } ( ) [ ] , ; . ^^ || && etc.
    ANON = "ANON"  # []
    NIL = "NIL"  # ()
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: str
    value: str
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        """Whether this token is one of the given keywords."""
        return self.type == TokenType.KEYWORD and self.value.upper() in words

    def is_punct(self, *symbols: str) -> bool:
        """Whether this token is one of the given punctuation symbols."""
        return self.type == TokenType.PUNCT and self.value in symbols

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"


# PN_CHARS_BASE from the SPARQL grammar, approximated with broad unicode
# ranges (the logs' queries use ASCII plus occasional accented names).
_PN_BASE = "A-Za-zÀ-ÖØ-öø-˿Ͱ-ͽͿ-῿" \
    "‌-‍⁰-↏Ⰰ-⿯、-퟿豈-﷏ﷰ-�"
_PN_U = _PN_BASE + "_"
_PN_CHARS = _PN_U + r"0-9·̀-ͯ‿-⁀-"

_IRIREF_RE = re.compile(r"<([^<>\"{}|^`\\\x00-\x20]*)>")
_VAR_RE = re.compile(rf"[?$]([{_PN_U}0-9][{_PN_U}0-9·̀-ͯ‿-⁀]*)")
# Local part allows dots internally, percent-escapes and backslash escapes (PN_LOCAL).
_PLX = r"(?:%[0-9A-Fa-f]{2}|\\[_~.\-!$&'()*+,;=/?#@%])"
_PNAME_RE = re.compile(
    rf"(?:[{_PN_BASE}][{_PN_CHARS}.]*[{_PN_CHARS}]|[{_PN_BASE}])?:"
    rf"(?:(?:[{_PN_U}0-9:]|{_PLX})(?:(?:[{_PN_CHARS}.:]|{_PLX})*(?:[{_PN_CHARS}:]|{_PLX}))?)?"
)
_BLANK_RE = re.compile(rf"_:[{_PN_U}0-9](?:[{_PN_CHARS}.]*[{_PN_CHARS}])?")
_LANGTAG_RE = re.compile(r"@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*")
_NUMBER_RE = re.compile(
    r"(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?"
)
_KEYWORD_RE = re.compile(rf"[{_PN_BASE}_][{_PN_U}0-9]*")

# Multi-character punctuation, longest first.
_MULTI_PUNCT = ("^^", "||", "&&", "!=", "<=", ">=")

_STRING_OPENERS = ('"""', "'''", '"', "'")

_ECHAR = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


class _Cursor:
    """Tracks position in the source text with line/column accounting."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def eof(self) -> bool:
        """Whether the cursor is at end of input."""
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        """The token *offset* ahead of the cursor (EOF-safe)."""
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def startswith(self, prefix: str) -> bool:
        """Whether the upcoming characters start with *prefix*."""
        return self.text.startswith(prefix, self.pos)

    def advance(self, count: int) -> str:
        """Consume and return the next *count* characters."""
        chunk = self.text[self.pos : self.pos + count]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return chunk


def _scan_string(cursor: _Cursor) -> str:
    """Scan a string literal at the cursor; return its *decoded* value."""
    opener = next(o for o in _STRING_OPENERS if cursor.startswith(o))
    start_line, start_col = cursor.line, cursor.column
    cursor.advance(len(opener))
    long_form = len(opener) == 3
    out: List[str] = []
    while True:
        if cursor.eof():
            raise SparqlSyntaxError("unterminated string literal", start_line, start_col)
        if cursor.startswith(opener):
            cursor.advance(len(opener))
            return "".join(out)
        ch = cursor.peek()
        if ch == "\\":
            escape = cursor.peek(1)
            if escape in _ECHAR:
                out.append(_ECHAR[escape])
                cursor.advance(2)
            elif escape == "u":
                code = cursor.text[cursor.pos + 2 : cursor.pos + 6]
                try:
                    out.append(chr(int(code, 16)))
                except ValueError:
                    raise SparqlSyntaxError(
                        f"bad \\u escape: {code!r}", cursor.line, cursor.column
                    ) from None
                cursor.advance(6)
            elif escape == "U":
                code = cursor.text[cursor.pos + 2 : cursor.pos + 10]
                try:
                    out.append(chr(int(code, 16)))
                except ValueError:
                    raise SparqlSyntaxError(
                        f"bad \\U escape: {code!r}", cursor.line, cursor.column
                    ) from None
                cursor.advance(10)
            else:
                raise SparqlSyntaxError(
                    f"unknown string escape: \\{escape}", cursor.line, cursor.column
                )
        elif not long_form and ch in "\n\r":
            raise SparqlSyntaxError(
                "newline in short string literal", cursor.line, cursor.column
            )
        else:
            out.append(ch)
            cursor.advance(1)


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*; always ends with an EOF token.

    Raises :class:`SparqlSyntaxError` on characters that cannot start
    any SPARQL token.
    """
    cursor = _Cursor(text)
    tokens: List[Token] = []
    while not cursor.eof():
        ch = cursor.peek()
        if ch in " \t\r\n":
            cursor.advance(1)
            continue
        if ch == "#":
            while not cursor.eof() and cursor.peek() != "\n":
                cursor.advance(1)
            continue
        line, column = cursor.line, cursor.column

        # Strings must be checked before punctuation (quote chars).
        if any(cursor.startswith(o) for o in _STRING_OPENERS):
            value = _scan_string(cursor)
            tokens.append(Token(TokenType.STRING, value, line, column))
            continue

        if ch == "<":
            match = _IRIREF_RE.match(cursor.text, cursor.pos)
            if match:
                cursor.advance(match.end() - cursor.pos)
                tokens.append(Token(TokenType.IRIREF, match.group(1), line, column))
                continue
            # Not an IRI: fall through to '<' / '<=' operator.

        if ch in "?$":
            match = _VAR_RE.match(cursor.text, cursor.pos)
            if match:
                cursor.advance(match.end() - cursor.pos)
                tokens.append(Token(TokenType.VAR, match.group(1), line, column))
                continue
            # A bare '?' is the property-path "zero or one" operator.

        if ch == "_" and cursor.peek(1) == ":":
            match = _BLANK_RE.match(cursor.text, cursor.pos)
            if match:
                value = match.group(0)[2:]
                cursor.advance(match.end() - cursor.pos)
                tokens.append(Token(TokenType.BLANK_NODE, value, line, column))
                continue

        if ch == "@":
            match = _LANGTAG_RE.match(cursor.text, cursor.pos)
            if match:
                cursor.advance(match.end() - cursor.pos)
                tokens.append(Token(TokenType.LANGTAG, match.group(0)[1:], line, column))
                continue
            raise SparqlSyntaxError("bad language tag", line, column)

        if ch.isdigit() or (ch == "." and cursor.peek(1).isdigit()):
            match = _NUMBER_RE.match(cursor.text, cursor.pos)
            assert match is not None
            value = match.group(0)
            cursor.advance(len(value))
            if "e" in value.lower():
                token_type = TokenType.DOUBLE
            elif "." in value:
                token_type = TokenType.DECIMAL
            else:
                token_type = TokenType.INTEGER
            tokens.append(Token(token_type, value, line, column))
            continue

        # ANON [] and NIL () — significant whitespace inside is allowed.
        if ch == "[":
            match = re.compile(r"\[[ \t\r\n]*\]").match(cursor.text, cursor.pos)
            if match:
                cursor.advance(match.end() - cursor.pos)
                tokens.append(Token(TokenType.ANON, "[]", line, column))
                continue
        if ch == "(":
            match = re.compile(r"\([ \t\r\n]*\)").match(cursor.text, cursor.pos)
            if match:
                cursor.advance(match.end() - cursor.pos)
                tokens.append(Token(TokenType.NIL, "()", line, column))
                continue

        # Prefixed names (must come before keyword so "rdf:type" lexes
        # as one PNAME, and before ':' punctuation).
        match = _PNAME_RE.match(cursor.text, cursor.pos)
        if match and match.group(0):
            value = match.group(0)
            # Strip trailing dot ambiguity: "ns:local." ends a triple.
            while value.endswith("."):
                value = value[:-1]
            if ":" in value:
                cursor.advance(len(value))
                tokens.append(Token(TokenType.PNAME, value, line, column))
                continue

        keyword_match = _KEYWORD_RE.match(cursor.text, cursor.pos)
        if keyword_match:
            value = keyword_match.group(0)
            cursor.advance(len(value))
            tokens.append(Token(TokenType.KEYWORD, value, line, column))
            continue

        for punct in _MULTI_PUNCT:
            if cursor.startswith(punct):
                cursor.advance(len(punct))
                tokens.append(Token(TokenType.PUNCT, punct, line, column))
                break
        else:
            if ch in "{}()[];,.*/|^?+!<>=-&":
                cursor.advance(1)
                tokens.append(Token(TokenType.PUNCT, ch, line, column))
            else:
                raise SparqlSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(TokenType.EOF, "", cursor.line, cursor.column))
    return tokens


def iter_significant(tokens: List[Token]) -> Iterator[Token]:
    """All tokens except EOF (convenience for feature counting)."""
    for token in tokens:
        if token.type != TokenType.EOF:
            yield token
