"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.rdf import IRI, Graph, Literal, Triple
from repro.workload import bib_schema, generate_graph


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden report files under tests/goldens/ "
        "instead of comparing against them",
    )


@pytest.fixture()
def update_goldens(request: pytest.FixtureRequest) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture(scope="session")
def schema():
    return bib_schema()


@pytest.fixture(scope="session")
def small_graph(schema):
    """A small deterministic gMark graph shared across engine tests."""
    return generate_graph(schema, 200, seed=7)


@pytest.fixture()
def social_graph():
    """A tiny hand-built graph with known answers."""
    g = Graph()
    knows = IRI("urn:knows")
    name = IRI("urn:name")
    age = IRI("urn:age")
    alice, bob, carol, dave = (IRI(f"urn:{n}") for n in ("alice", "bob", "carol", "dave"))
    g.add(Triple(alice, knows, bob))
    g.add(Triple(bob, knows, carol))
    g.add(Triple(carol, knows, alice))
    g.add(Triple(carol, knows, dave))
    g.add(Triple(alice, name, Literal("Alice")))
    g.add(Triple(bob, name, Literal("Bob")))
    g.add(Triple(carol, name, Literal("Carol")))
    g.add(Triple(alice, age, Literal("30", datatype="http://www.w3.org/2001/XMLSchema#integer")))
    g.add(Triple(bob, age, Literal("25", datatype="http://www.w3.org/2001/XMLSchema#integer")))
    return g
