"""Unit tests for log formats and the clean/parse/dedup pipeline."""

import pytest

from repro.exceptions import LogFormatError
from repro.logs import (
    build_query_log,
    encode_access_log_line,
    iter_queries,
    parse_access_log_line,
)


QUERY = 'SELECT ?x WHERE { ?x <urn:p> "a b&c" }'


class TestAccessLogFormat:
    def test_round_trip(self):
        line = encode_access_log_line(QUERY)
        entry = parse_access_log_line(line)
        assert entry.query == QUERY
        assert entry.method == "GET"
        assert entry.status == 200

    def test_special_characters_survive(self):
        tricky = 'SELECT * WHERE { ?x <urn:p> "100% +fun?" }'
        entry = parse_access_log_line(encode_access_log_line(tricky))
        assert entry.query == tricky

    def test_non_query_line(self):
        line = '1.2.3.4 - - [01/Jan/2015:00:00:00 +0000] "GET /robots.txt HTTP/1.1" 404 0'
        entry = parse_access_log_line(line)
        assert entry.query is None

    def test_garbage_rejected(self):
        with pytest.raises(LogFormatError):
            parse_access_log_line("not a log line at all")

    def test_iter_queries_skips_junk(self):
        lines = [
            encode_access_log_line("ASK { ?s ?p ?o }"),
            "junk junk junk",
            '9.9.9.9 - - [x] "GET /sparql?format=json HTTP/1.1" 200 10',
            encode_access_log_line("SELECT * WHERE { ?s ?p ?o }"),
        ]
        assert len(list(iter_queries(lines))) == 2


class TestPipeline:
    def test_counts(self):
        raw = [
            "SELECT * WHERE { ?s ?p ?o }",
            "SELECT * WHERE { ?s ?p ?o }",  # duplicate
            "ASK { ?s <urn:p> ?o }",
            "BROKEN {",
        ]
        log = build_query_log("test", raw)
        assert log.total == 4
        assert log.valid == 3
        assert log.unique == 2

    def test_multiplicities(self):
        raw = ["ASK { ?s ?p ?o }"] * 5 + ["SELECT * WHERE { ?a ?b ?c }"]
        log = build_query_log("test", raw)
        counts = {p.text: p.count for p in log.unique_queries()}
        assert counts["ASK { ?s ?p ?o }"] == 5
        assert counts["SELECT * WHERE { ?a ?b ?c }"] == 1

    def test_valid_stream_repeats(self):
        raw = ["ASK { ?s ?p ?o }"] * 3
        log = build_query_log("test", raw)
        assert len(list(log.valid_queries())) == 3
        assert len(list(log.unique_queries())) == 1

    def test_well_known_prefixes_available(self):
        # Endpoint logs rely on pre-declared prefixes.
        log = build_query_log("test", ["SELECT * WHERE { ?x rdf:type ?c }"])
        assert log.valid == 1

    def test_extra_prefixes(self):
        log = build_query_log(
            "test",
            ["SELECT * WHERE { ?x myns:p ?c }"],
            extra_prefixes={"myns": "urn:mine:"},
        )
        assert log.valid == 1

    def test_unknown_prefix_invalid(self):
        log = build_query_log("test", ["SELECT * WHERE { ?x nope:p ?c }"])
        assert log.valid == 0

    def test_order_preserved(self):
        raw = ["ASK { ?b ?p ?o }", "ASK { ?a ?p ?o }"]
        log = build_query_log("test", raw)
        assert [p.text for p in log.unique_queries()] == raw

    def test_summary_row(self):
        log = build_query_log("DBpedia-test", ["ASK { ?s ?p ?o }"])
        assert log.summary_row() == ("DBpedia-test", 1, 1, 1)

    def test_parse_cache_consistency(self):
        # The same text seen valid then again: count increments.
        raw = ["ASK { ?s ?p ?o }", "garbage", "ASK { ?s ?p ?o }"]
        log = build_query_log("test", raw)
        assert log.total == 3 and log.valid == 2 and log.unique == 1
