"""Parser rejection tests: the Valid/Total split of Table 1 depends on
malformed inputs being *rejected*, not silently accepted."""

import pytest

from repro.exceptions import SparqlSyntaxError
from repro.sparql import parse_query


INVALID_QUERIES = [
    # The paper's one unparseable Wikidata query had missing closing
    # braces and a bad aggregate — both must fail.
    "SELECT ?x WHERE { ?x <urn:p> ?y",
    "SELECT COUNT(?x) WHERE { ?x ?p ?o }",  # aggregate without AS binding
    "",  # empty input
    "FOO BAR",  # not a query form
    "SELECT WHERE { ?s ?p ?o }",  # missing projection
    "SELECT ?x { ?x <urn:p> }",  # missing object
    "ASK { ?s ?p ?o ",  # unterminated group
    "SELECT * WHERE { ?s ?p ?o } LIMIT ?x",  # non-integer limit
    "SELECT * WHERE { ?s ?p ?o } LIMIT",  # missing integer
    "PREFIX ex <urn:p:> SELECT * WHERE { ?s ?p ?o }",  # missing colon
    "SELECT * WHERE { ?s ex:p ?o }",  # undeclared prefix
    "SELECT * WHERE { ?s ?p ?o } trailing",  # trailing junk
    "SELECT * WHERE { FILTER }",  # filter without constraint
    "SELECT * WHERE { ?s ?p ?o } GROUP BY",  # empty group by
    "SELECT * WHERE { ?s ?p ?o } ORDER BY",  # empty order by
    "SELECT (?x) WHERE { ?x ?p ?o }",  # projection expr without AS
    "SELECT * WHERE { BIND(1) }",  # bind without AS
    "SELECT * WHERE { VALUES (?x) { (1 2) } }",  # arity mismatch
    "DESCRIBE",  # describe without target
    'ASK { ?s <urn:p> "unclosed }',  # unterminated string
    "CONSTRUCT { ?s ?p ?o OPTIONAL { ?a ?b ?c } } WHERE { ?s ?p ?o }",
]


@pytest.mark.parametrize("text", INVALID_QUERIES)
def test_invalid_query_rejected(text):
    with pytest.raises(SparqlSyntaxError):
        parse_query(text)


def test_error_reports_location():
    with pytest.raises(SparqlSyntaxError) as info:
        parse_query("SELECT *\nWHERE { ?s ?p }")
    assert info.value.line == 2


def test_error_message_mentions_expectation():
    with pytest.raises(SparqlSyntaxError, match="SELECT"):
        parse_query("UPDATE something")


def test_public_art_in_paris_style_query_rejected():
    # Mirrors the malformed Wikidata example the paper footnotes:
    # missing closing braces and a bad aggregate.
    text = """
    SELECT ?item (COUNT ?x AS ?c) WHERE {
      ?item <urn:locatedIn> <urn:Paris> .
      { SELECT ?x WHERE { ?x <urn:type> <urn:PublicArt>
    """
    with pytest.raises(SparqlSyntaxError):
        parse_query(text)
