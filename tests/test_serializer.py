"""Serializer round-trip tests: serialize(parse(q)) reparses to an
equal AST."""

import pytest

from repro.sparql import ast, parse_query, serialize_path, serialize_query

ROUND_TRIP_QUERIES = [
    "SELECT ?x WHERE { ?x <urn:p> ?y }",
    "SELECT DISTINCT * WHERE { ?x <urn:p> ?y }",
    "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }",
    "ASK WHERE { <urn:s> <urn:p> \"lit\"@en }",
    "ASK WHERE { ?s <urn:p> \"5\"^^<urn:dt> }",
    "CONSTRUCT { ?s <urn:p> ?o } WHERE { ?s <urn:q> ?o }",
    "DESCRIBE <urn:x> <urn:y>",
    "DESCRIBE ?x WHERE { ?x <urn:p> 1 }",
    "SELECT * WHERE { ?s <urn:p> ?o OPTIONAL { ?o <urn:q> ?z } }",
    "SELECT * WHERE { { ?s <urn:a> ?o } UNION { ?s <urn:b> ?o } }",
    "SELECT * WHERE { ?s ?p ?o MINUS { ?s <urn:x> ?o } }",
    "SELECT * WHERE { GRAPH ?g { ?s ?p ?o } }",
    "SELECT * WHERE { SERVICE SILENT <urn:e> { ?s ?p ?o } }",
    "SELECT * WHERE { ?s ?p ?o BIND(STRLEN(?o) AS ?l) }",
    "SELECT * WHERE { VALUES (?a ?b) { (1 2) (UNDEF <urn:x>) } }",
    "SELECT * WHERE { ?s ?p ?o FILTER(?o > 5 && ?o < 10 || !BOUND(?p)) }",
    "SELECT * WHERE { ?s ?p ?o FILTER(?o IN (1, 2)) }",
    "SELECT * WHERE { ?s ?p ?o FILTER NOT EXISTS { ?s <urn:q> ?z } }",
    "SELECT * WHERE { ?s <urn:a>/<urn:b>* ?o }",
    "SELECT * WHERE { ?s ^<urn:a>|!(<urn:b>|^<urn:c>) ?o }",
    "SELECT * WHERE { ?s (<urn:a>|<urn:b>)+ ?o }",
    "SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) LIMIT 5 OFFSET 2",
    "SELECT ?s (SUM(?v) AS ?t) WHERE { ?s <urn:v> ?v } GROUP BY ?s "
    "HAVING (SUM(?v) > 10)",
    "SELECT (GROUP_CONCAT(?n; SEPARATOR=\"; \") AS ?g) WHERE { ?x <urn:n> ?n }",
    "SELECT ?m WHERE { { SELECT (MAX(?v) AS ?m) WHERE { ?s <urn:v> ?v } } }",
    "SELECT * FROM <urn:g> FROM NAMED <urn:h> WHERE { ?s ?p ?o }",
    "SELECT * WHERE { ?s ?p ?o } VALUES ?s { <urn:a> <urn:b> }",
    "SELECT * WHERE { ?s ?p ?o FILTER(-?o = 3 - 4 / 2) }",
]


@pytest.mark.parametrize("text", ROUND_TRIP_QUERIES)
def test_round_trip(text):
    original = parse_query(text)
    serialized = serialize_query(original)
    reparsed = parse_query(serialized)
    assert reparsed.query_type == original.query_type
    assert reparsed.pattern == original.pattern
    assert reparsed.projection == original.projection
    assert reparsed.modifier == original.modifier
    assert reparsed.values == original.values
    assert reparsed.template == original.template
    assert reparsed.describe_targets == original.describe_targets
    assert reparsed.datasets == original.datasets


def test_round_trip_is_stable():
    """Serialization is a fixed point after one round."""
    text = "SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y FILTER(?y > 1) } LIMIT 3"
    once = serialize_query(parse_query(text))
    twice = serialize_query(parse_query(once))
    assert once == twice


def test_serialize_path_parenthesization():
    # (a|b)/c must not serialize as a|b/c.
    query = parse_query("ASK { ?s (<urn:a>|<urn:b>)/<urn:c> ?o }")
    path = query.pattern.elements[0].path
    text = serialize_path(path)
    reparsed = parse_query(f"ASK {{ ?s {text} ?o }}")
    assert reparsed.pattern.elements[0].path == path


def test_expression_precedence_survives():
    query = parse_query("ASK { ?s ?p ?o FILTER((?a || ?b) && ?c) }")
    reparsed = parse_query(serialize_query(query))
    expression = reparsed.pattern.elements[1].expression
    assert isinstance(expression, ast.AndExpression)


def test_bodyless_describe_serializes():
    query = parse_query("DESCRIBE <urn:thing>")
    assert "WHERE" not in serialize_query(query)
