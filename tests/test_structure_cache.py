"""Structural-signature cache: transparency, LRU bounds, signatures.

The cache must be invisible in the results — every test here asserts
that enabling it (any capacity, any eviction pressure, any weighting)
produces a :class:`CorpusStudy` equal to the cache-disabled run — while
the hit counters prove it actually engaged.
"""

from repro.analysis.context import (
    AnalysisOptions,
    StructureCache,
    graph_signature,
    hypergraph_signature,
)
from repro.analysis.parallel import measure_chunk, study_corpus_parallel
from repro.analysis.study import study_corpus
from repro.logs import build_query_log
from repro.reporting import render_study
from repro.sparql import parse_query

#: Templated two-triple CQs differing only in their constant: one
#: structural shape, many distinct queries — the redundancy the cache
#: exists to exploit.
TEMPLATED = [
    f"SELECT * WHERE {{ ?a <urn:p> <urn:c{i}> . ?a <urn:q> ?b }}"
    for i in range(12)
]

#: Predicate-variable CQOF queries sharing one hypergraph template
#: (the constant predicate differs; constants are not hypergraph nodes).
TEMPLATED_HYPER = [
    f"ASK {{ ?a ?p ?b . ?b <urn:k{i}> ?c }}" for i in range(8)
]

#: Structurally distinct queries (different shapes/treewidths) to churn
#: a tiny LRU.
DISTINCT_SHAPES = [
    "ASK { ?a <urn:p> ?b }",
    "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }",
    "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a }",
    "ASK { ?a <urn:p> ?b . ?a <urn:q> ?c . ?a <urn:r> ?d }",
    "ASK { ?a <urn:p> ?a }",
]


def study_with(queries, cache_size, dedup=True, name="d"):
    log = build_query_log(name, queries)
    options = AnalysisOptions(cache_size=cache_size)
    return study_corpus({name: log}, dedup=dedup, options=options)


def graph_of(text):
    from repro.analysis.canonical import canonical_graph

    return canonical_graph(parse_query(text).pattern)


def hypergraph_of(text):
    from repro.analysis.canonical import canonical_hypergraph

    return canonical_hypergraph(parse_query(text).pattern)


class TestCacheTransparency:
    def test_unique_corpus_cached_equals_uncached(self):
        queries = TEMPLATED + DISTINCT_SHAPES + TEMPLATED_HYPER
        cached = study_with(queries, cache_size=4096)
        uncached = study_with(queries, cache_size=0)
        assert cached == uncached
        log = build_query_log("d", queries)
        assert render_study(cached, {"d": log}) == render_study(uncached, {"d": log})

    def test_valid_corpus_weights_cached_equals_uncached(self):
        # weight != 1: duplicates keep their multiplicity (appendix
        # corpus) — cached structure results must multiply correctly.
        queries = (
            TEMPLATED * 3 + DISTINCT_SHAPES * 2 + TEMPLATED_HYPER + TEMPLATED[:4]
        )
        cached = study_with(queries, cache_size=4096, dedup=False)
        uncached = study_with(queries, cache_size=0, dedup=False)
        assert cached.query_count == len(queries)
        assert cached == uncached

    def test_tiny_lru_capacity_eviction(self):
        # Capacity 2 with 5+ live shapes: constant eviction churn must
        # not change a single counter.
        queries = (DISTINCT_SHAPES + TEMPLATED[:6] + TEMPLATED_HYPER[:4]) * 3
        cached = study_with(queries, cache_size=2)
        uncached = study_with(queries, cache_size=0)
        assert cached == uncached

    def test_collapsed_single_chunk_run_still_caches(self):
        # workers > 1 but the stream fits one chunk: imap_bounded's
        # serial fallback must still run the pool initializer, so the
        # structural cache exists (and profiling sees its lookups).
        log = build_query_log("d", TEMPLATED)
        options = AnalysisOptions(profile=True)
        study = study_corpus_parallel(
            {"d": log}, workers=4, chunk_size=10_000, options=options
        )
        profile = study.pass_profile
        assert profile is not None
        assert profile.cache_hits + profile.cache_misses > 0
        assert profile.cache_hits == len(TEMPLATED) - 1
        assert study == study_with(TEMPLATED, cache_size=0)

    def test_parallel_workers_with_cache_match_serial(self):
        queries = TEMPLATED + DISTINCT_SHAPES + TEMPLATED_HYPER
        log = build_query_log("d", queries)
        options = AnalysisOptions(cache_size=3)
        serial = study_corpus({"d": log}, options=AnalysisOptions(cache_size=0))
        sharded = study_corpus_parallel(
            {"d": log}, workers=2, chunk_size=4, options=options
        )
        assert sharded == serial


class TestCacheEngagement:
    def test_templated_graphs_hit(self):
        log = build_query_log("d", TEMPLATED)
        cache = StructureCache()
        measure_chunk("d", log.unique_queries(), cache=cache)
        # First shape computes, the rest of the template family hits.
        assert cache.misses == 1
        assert cache.hits == len(TEMPLATED) - 1

    def test_templated_hypergraphs_hit(self):
        log = build_query_log("d", TEMPLATED_HYPER)
        cache = StructureCache()
        measure_chunk("d", log.unique_queries(), cache=cache)
        assert cache.misses == 1
        assert cache.hits == len(TEMPLATED_HYPER) - 1

    def test_disabled_cache_never_engages(self):
        log = build_query_log("d", TEMPLATED)
        cache = StructureCache(capacity=0)
        measure_chunk(
            "d", log.unique_queries(), options=AnalysisOptions(cache_size=0),
            cache=cache,
        )
        assert cache.hits == 0
        assert cache.misses == 0
        assert len(cache) == 0

    def test_lru_evicts_least_recently_used(self):
        cache = StructureCache(capacity=2)
        cache.put(("g", 1), "a")
        cache.put(("g", 2), "b")
        assert cache.get(("g", 1)) == "a"  # 1 becomes most recent
        cache.put(("g", 3), "c")  # evicts 2
        assert cache.get(("g", 2)) is None
        assert cache.get(("g", 1)) == "a"
        assert cache.get(("g", 3)) == "c"
        assert len(cache) == 2


class TestSignatures:
    def test_constant_values_are_abstracted(self):
        a = graph_of("SELECT * WHERE { ?a <urn:p> <urn:c1> . ?a <urn:q> ?b }")
        b = graph_of("SELECT * WHERE { ?x <urn:p> <urn:c2> . ?x <urn:q> ?y }")
        assert graph_signature(a) == graph_signature(b)

    def test_variable_vs_constant_endpoint_differs(self):
        a = graph_of("ASK { ?a <urn:p> ?b }")
        b = graph_of("ASK { ?a <urn:p> <urn:const> }")
        assert graph_signature(a) != graph_signature(b)

    def test_structure_differs(self):
        chain = graph_of("ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }")
        star = graph_of("ASK { ?a <urn:p> ?b . ?a <urn:q> ?c }")
        assert graph_signature(chain) != graph_signature(star)

    def test_multiplicity_and_loops_matter(self):
        single = graph_of("ASK { ?a <urn:p> ?b }")
        parallel = graph_of("ASK { ?a <urn:p> ?b . ?a <urn:q> ?b }")
        loop = graph_of("ASK { ?a <urn:p> ?a }")
        signatures = {
            graph_signature(g) for g in (single, parallel, loop)
        }
        assert len(signatures) == 3

    def test_hypergraph_constant_predicates_abstracted(self):
        a = hypergraph_of("ASK { ?a ?p ?b . ?b <urn:k1> ?c }")
        b = hypergraph_of("ASK { ?a ?p ?b . ?b <urn:k2> ?c }")
        assert hypergraph_signature(a) == hypergraph_signature(b)

    def test_hypergraph_structure_differs(self):
        a = hypergraph_of("ASK { ?a ?p ?b . ?b <urn:k> ?c }")
        b = hypergraph_of("ASK { ?a ?p ?b . ?c <urn:k> ?d }")
        assert hypergraph_signature(a) != hypergraph_signature(b)
