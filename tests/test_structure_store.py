"""Tests for the persistent cross-run structure store.

The correctness gate of the store is *transparency*: cache-on ≡
cache-off ≡ warm ≡ cold, byte-identical reports — including when the
store file is corrupted or truncated, where the run must degrade to
cold with a warning, never crash.
"""

from __future__ import annotations

import json
import sqlite3
import subprocess
import sys
import warnings
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.structure_store import (
    CODE_VERSION,
    STORE_SCHEMA_VERSION,
    StoreBackedStructureCache,
    StructureStore,
    open_structure_cache,
)
from repro.api import analyze_corpora
from repro.cli import main

#: Templated corpus: few distinct structural signatures, many queries —
#: exactly the workload the store accelerates.
TEMPLATED = [
    template.format(i=i)
    for i in range(30)
    for template in (
        "SELECT ?a WHERE {{ ?a <http://p/{i}> ?b . ?b <http://q/{i}> ?c }}",
        "ASK {{ ?x <http://r/{i}> ?y }}",
        "SELECT ?s WHERE {{ ?s <http://one/{i}> ?t . ?t <http://two/{i}> ?s }}",
    )
]

#: Queries with predicate variables, so the hypergraph ("h") entries
#: get exercised too.
HYPER = [
    f"SELECT ?a WHERE {{ ?a ?p <http://o/{i}> . ?a <http://q/{i}> ?b }}"
    for i in range(20)
]

CORPUS = {"templated": TEMPLATED, "hyper": HYPER}


def run_study(store_path=None, **kwargs):
    return analyze_corpora(
        CORPUS,
        structure_cache_path=None if store_path is None else str(store_path),
        **kwargs,
    )


@pytest.fixture()
def baseline():
    return run_study().render("text")


def entry_rows(path):
    with sqlite3.connect(str(path)) as connection:
        return sorted(
            connection.execute("SELECT sig, kind, code_version FROM entries")
        )


class TestTransparency:
    def test_cold_run_matches_store_less_run(self, tmp_path, baseline):
        cold = run_study(tmp_path / "cache.db")
        assert cold.render("text") == baseline

    def test_warm_run_is_byte_identical_and_serves_entries(
        self, tmp_path, baseline
    ):
        store = tmp_path / "cache.db"
        run_study(store)
        warm = run_study(store, profile=True)
        assert warm.render("text") == baseline
        assert warm.profile.store_hits > 0

    def test_warm_run_in_fresh_process_is_byte_identical(self, tmp_path):
        """Populate the store, then re-analyze from a brand-new process:
        the only shared state is the store file itself."""
        log = tmp_path / "endpoint.rq"
        log.write_text("\n".join(TEMPLATED) + "\n", encoding="utf-8")
        store = tmp_path / "cache.db"
        src = Path(__file__).resolve().parent.parent / "src"

        def analyze_subprocess():
            return subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "analyze",
                    str(log),
                    "--structure-cache",
                    str(store),
                ],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
                check=True,
            ).stdout

        cold = analyze_subprocess()
        assert entry_rows(store)
        warm = analyze_subprocess()
        assert warm == cold

    def test_warm_sharded_run_is_byte_identical(self, tmp_path, baseline):
        store = tmp_path / "cache.db"
        run_study(store)
        warm = run_study(store, workers=2, chunk_size=16, profile=True)
        assert warm.render("text") == baseline
        assert warm.profile.store_hits > 0

    def test_store_with_zero_lru_capacity_still_serves(self, tmp_path, baseline):
        store = tmp_path / "cache.db"
        run_study(store)
        warm = run_study(store, cache_size=0, profile=True)
        assert warm.render("text") == baseline
        assert warm.profile.store_hits > 0


class TestConcurrentFlush:
    def test_multi_worker_flush_loses_and_duplicates_nothing(self, tmp_path):
        serial_store = tmp_path / "serial.db"
        sharded_store = tmp_path / "sharded.db"
        run_study(serial_store)
        run_study(sharded_store, workers=2, chunk_size=8)
        serial_rows = entry_rows(serial_store)
        assert serial_rows  # the corpus produces structural entries
        assert entry_rows(sharded_store) == serial_rows
        # The primary key makes duplicates impossible; check anyway that
        # repeated flushes of recurring shapes collapsed via the upsert.
        assert len(serial_rows) == len({row[0:2] for row in serial_rows})

    def test_repeated_runs_do_not_grow_the_store(self, tmp_path):
        store = tmp_path / "cache.db"
        run_study(store)
        before = entry_rows(store)
        run_study(store, workers=2, chunk_size=8)
        assert entry_rows(store) == before


class TestCodeVersionInvalidation:
    def test_entries_from_another_code_version_are_not_served(self, tmp_path):
        store_path = tmp_path / "cache.db"
        run_study(store_path)
        assert all(row[2] == CODE_VERSION for row in entry_rows(store_path))
        # Rewrite every entry as if an older classifier produced it.
        with sqlite3.connect(str(store_path)) as connection:
            connection.execute("UPDATE entries SET code_version = 'older-code'")
            connection.commit()
        warm = run_study(store_path, profile=True)
        assert warm.profile.store_hits == 0
        # The re-run re-persisted its results under the current version;
        # the stale rows coexist (and would be reported by `cache stats`).
        versions = {row[2] for row in entry_rows(store_path)}
        assert versions == {"older-code", CODE_VERSION}

    def test_store_open_with_explicit_version_filters(self, tmp_path):
        store_path = tmp_path / "cache.db"
        run_study(store_path)
        store = StructureStore.open(store_path, version="something-else")
        try:
            assert store.stats()["current"] == 0
            assert store.stats()["stale"] == store.stats()["entries"] > 0
        finally:
            store.close()


class TestCorruption:
    def assert_degrades(self, tmp_path, baseline):
        store = tmp_path / "cache.db"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_study(store)
        assert result.render("text") == baseline
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)

    def test_garbage_file_degrades_to_cold(self, tmp_path, baseline):
        (tmp_path / "cache.db").write_bytes(b"this is not a database" * 64)
        self.assert_degrades(tmp_path, baseline)

    def test_truncated_store_degrades_to_cold(self, tmp_path, baseline):
        store = tmp_path / "cache.db"
        run_study(store)
        data = store.read_bytes()
        store.write_bytes(data[: len(data) // 3])
        self.assert_degrades(tmp_path, baseline)

    def test_foreign_schema_version_degrades_to_cold(self, tmp_path, baseline):
        store = tmp_path / "cache.db"
        with sqlite3.connect(str(store)) as connection:
            connection.execute("CREATE TABLE entries (x)")
            connection.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION + 7}")
            connection.commit()
        self.assert_degrades(tmp_path, baseline)

    def test_undecodable_payload_degrades_to_recompute(self, tmp_path, baseline):
        store = tmp_path / "cache.db"
        run_study(store)
        with sqlite3.connect(str(store)) as connection:
            connection.execute("UPDATE entries SET payload = '[not json'")
            connection.commit()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warm = run_study(store, profile=True)
        assert warm.render("text") == baseline
        assert warm.profile.store_hits == 0
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(garbage=st.binary(min_size=0, max_size=512))
    def test_arbitrary_bytes_never_crash_the_open(self, tmp_path, garbage):
        store = tmp_path / f"fuzz-{len(garbage)}.db"
        store.write_bytes(garbage)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            handle = StructureStore.open(store)
        if handle is not None:  # empty bytes are a valid fresh database
            handle.put_many([("g", "sig", "{}")])
            handle.close()


class TestStoreBackedCache:
    def test_plain_behavior_without_a_store(self):
        cache = StoreBackedStructureCache(4, None)
        assert cache.enabled
        assert cache.get(("g", (1,))) is None
        cache.put(("g", (1,)), "entry")
        assert cache.get(("g", (1,))) == "entry"
        assert cache.take_pending() == []

    def test_store_hit_is_promoted_but_not_requeued(self, tmp_path):
        store = StructureStore.open(tmp_path / "cache.db")
        writer = StoreBackedStructureCache(4, store)
        key = ("h", ((0, 1),))
        from repro.analysis.context import HypertreeEntry

        writer.put(key, HypertreeEntry(width=2, node_count=3))
        writer.flush()
        reader = StoreBackedStructureCache(4, store)
        assert reader.get(key) == HypertreeEntry(width=2, node_count=3)
        assert reader.store_hits == 1
        # Promotion must not re-ship a store-served entry.
        assert reader.take_pending() == []
        # Second lookup is an LRU hit, not another store read.
        served_before = store.served
        assert reader.get(key) is not None
        assert store.served == served_before
        store.close()

    def test_open_structure_cache_without_path_is_plain_lru(self):
        from repro.analysis.context import AnalysisOptions, StructureCache

        cache = open_structure_cache(AnalysisOptions())
        assert type(cache) is StructureCache


class TestCacheVerb:
    def test_stats_reports_counts(self, tmp_path, capsys):
        store = tmp_path / "cache.db"
        run_study(store)
        assert main(["cache", "stats", str(store)]) == 0
        output = capsys.readouterr().out
        assert "entries:" in output
        assert CODE_VERSION in output

    def test_clear_empties_the_store(self, tmp_path, capsys):
        store = tmp_path / "cache.db"
        run_study(store)
        assert entry_rows(store)
        assert main(["cache", "clear", str(store)]) == 0
        assert "cleared" in capsys.readouterr().out
        assert entry_rows(store) == []

    def test_stats_on_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["cache", "stats", str(tmp_path / "absent.db")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_stats_on_corrupt_file_exits_2(self, tmp_path, capsys):
        store = tmp_path / "cache.db"
        store.write_bytes(b"junk" * 100)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert main(["cache", "stats", str(store)]) == 2
        assert "not a usable" in capsys.readouterr().err

    def test_clear_on_corrupt_file_removes_it(self, tmp_path, capsys):
        store = tmp_path / "cache.db"
        store.write_bytes(b"junk" * 100)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert main(["cache", "clear", str(store)]) == 0
        assert "removed" in capsys.readouterr().out
        assert not store.exists()

    def test_analyze_cache_size_flag(self, tmp_path, capsys):
        log = tmp_path / "q.rq"
        log.write_text("ASK { ?s <urn:p> ?o }\n", encoding="utf-8")
        assert main(["analyze", str(log)]) == 0
        default = capsys.readouterr().out
        assert main(["analyze", str(log), "--cache-size", "0"]) == 0
        assert capsys.readouterr().out == default

    def test_analyze_cache_size_rejects_negative(self, tmp_path, capsys):
        log = tmp_path / "q.rq"
        log.write_text("ASK { ?s <urn:p> ?o }\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["analyze", str(log), "--cache-size", "-1"])
        assert "must be >= 0" in capsys.readouterr().err


class TestSidecar:
    def test_sidecar_records_entry_count(self, tmp_path):
        store = tmp_path / "cache.db"
        run_study(store)
        sidecar = json.loads((tmp_path / "cache.db.meta.json").read_text())
        assert sidecar["store_schema"] == STORE_SCHEMA_VERSION
        assert sidecar["code_version"] == CODE_VERSION
        assert sidecar["entries"] == len(entry_rows(store))
