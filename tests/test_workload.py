"""Unit tests for schema, graph generation, and query workloads."""

import pytest

from repro.analysis import canonical_graph, classify_shape
from repro.exceptions import WorkloadError
from repro.rdf import IRI
from repro.sparql import parse_query
from repro.workload import (
    DegreeDistribution,
    GraphSchema,
    Predicate,
    chain_query,
    cycle_query,
    flower_query,
    generate_graph,
    generate_workload,
    star_chain_query,
    star_query,
)


class TestDegreeDistribution:
    def test_constant(self):
        import random

        dist = DegreeDistribution("constant", 3, 3)
        assert dist.sample(random.Random(0)) == 3

    def test_uniform_bounds(self):
        import random

        dist = DegreeDistribution("uniform", 1, 5)
        rng = random.Random(0)
        samples = [dist.sample(rng) for _ in range(200)]
        assert min(samples) >= 1 and max(samples) <= 5

    def test_zipfian_bounds_and_skew(self):
        import random

        dist = DegreeDistribution("zipfian", 0, 20)
        rng = random.Random(0)
        samples = [dist.sample(rng) for _ in range(500)]
        assert min(samples) >= 0 and max(samples) <= 20
        # Zipfian: most samples are small.
        assert sum(1 for s in samples if s <= 2) > len(samples) / 2

    def test_invalid_kind(self):
        with pytest.raises(WorkloadError):
            DegreeDistribution("gaussianish", 0, 5)

    def test_invalid_bounds(self):
        with pytest.raises(WorkloadError):
            DegreeDistribution("uniform", 5, 2)


class TestSchema:
    def test_bib_schema_valid(self, schema):
        assert abs(sum(schema.node_types.values()) - 1.0) < 1e-9
        assert schema.predicate("cites").source == "Paper"

    def test_bad_proportions_rejected(self):
        with pytest.raises(WorkloadError):
            GraphSchema("urn:x/", {"A": 0.5, "B": 0.2})

    def test_unknown_predicate_type_rejected(self):
        with pytest.raises(WorkloadError):
            GraphSchema(
                "urn:x/",
                {"A": 1.0},
                [Predicate("p", "A", "Nope", DegreeDistribution("constant", 1, 1))],
            )

    def test_steps_from_includes_reverse(self, schema):
        steps = schema.steps_from("Journal")
        # Journal has no outgoing predicates but two incoming.
        assert steps
        assert all(reverse for _, reverse, _ in steps)

    def test_unknown_predicate_lookup(self, schema):
        with pytest.raises(WorkloadError):
            schema.predicate("nothere")


class TestGraphGeneration:
    def test_deterministic(self, schema):
        g1 = generate_graph(schema, 100, seed=5)
        g2 = generate_graph(schema, 100, seed=5)
        assert set(g1) == set(g2)

    def test_different_seeds_differ(self, schema):
        g1 = generate_graph(schema, 100, seed=5)
        g2 = generate_graph(schema, 100, seed=6)
        assert set(g1) != set(g2)

    def test_type_triples_present(self, schema):
        graph = generate_graph(schema, 50, seed=0)
        type_predicate = IRI(schema.namespace + "type")
        assert graph.count_matches(p=type_predicate) >= 50 * 0.9

    def test_edges_respect_types(self, schema):
        graph = generate_graph(schema, 80, seed=1)
        cites = IRI(schema.namespace + "cites")
        for triple in graph.match(p=cites):
            assert "/paper/" in triple.subject.value
            assert "/paper/" in triple.object.value

    def test_invalid_size(self, schema):
        with pytest.raises(WorkloadError):
            generate_graph(schema, 0)


class TestQueryShapes:
    def shape_of(self, text):
        return classify_shape(canonical_graph(parse_query(text).pattern))

    @pytest.mark.parametrize("length", [1, 3, 5, 8])
    def test_chain_queries(self, schema, length):
        q = chain_query(schema, length, seed=length)
        profile = self.shape_of(q.text)
        assert profile.chain
        assert q.length == length

    @pytest.mark.parametrize("length", [3, 4, 6, 8])
    def test_cycle_queries(self, schema, length):
        q = cycle_query(schema, length, seed=length)
        profile = self.shape_of(q.text)
        assert profile.cycle
        assert profile.shortest_cycle == length

    def test_star_queries(self, schema):
        q = star_query(schema, 4, seed=2)
        assert self.shape_of(q.text).star

    def test_star_chain_is_tree(self, schema):
        q = star_chain_query(schema, 3, 3, seed=2)
        profile = self.shape_of(q.text)
        assert profile.tree and not profile.chain

    def test_flower_query(self, schema):
        q = flower_query(schema, petals=2, stamens=2, petal_length=2, seed=3)
        profile = self.shape_of(q.text)
        assert profile.flower and not profile.tree

    def test_select_form(self, schema):
        q = chain_query(schema, 3, seed=1, query_form="SELECT")
        parsed = parse_query(q.text)
        assert parsed.query_type.value == "SELECT"

    def test_chain_length_validation(self, schema):
        with pytest.raises(WorkloadError):
            chain_query(schema, 0)

    def test_cycle_length_validation(self, schema):
        with pytest.raises(WorkloadError):
            cycle_query(schema, 2)

    def test_workload_size_and_determinism(self, schema):
        w1 = generate_workload(schema, "chain", 4, 10, seed=1)
        w2 = generate_workload(schema, "chain", 4, 10, seed=1)
        assert len(w1) == 10
        assert [q.text for q in w1] == [q.text for q in w2]

    def test_workload_unknown_shape(self, schema):
        with pytest.raises(WorkloadError):
            generate_workload(schema, "moebius", 4, 10)

    def test_workload_queries_all_parse(self, schema):
        for shape, length in (("chain", 5), ("cycle", 5), ("star", 5)):
            for q in generate_workload(schema, shape, length, 5, seed=4):
                parse_query(q.text)  # must not raise
