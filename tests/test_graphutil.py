"""Unit tests for the multigraph utility."""

from repro.analysis.graphutil import Multigraph


def build(*edges):
    g = Multigraph()
    for u, v in edges:
        g.add_edge(u, v)
    return g


class TestBasics:
    def test_counts(self):
        g = build((1, 2), (2, 3))
        assert g.node_count() == 3
        assert g.edge_count() == 2

    def test_parallel_edges(self):
        g = build((1, 2), (1, 2))
        assert g.edge_count() == 2
        assert g.multiplicity(1, 2) == 2
        assert g.has_parallel_edges()

    def test_loops(self):
        g = build((1, 1))
        assert g.has_loops()
        assert g.loops_at(1) == 1
        assert g.degree(1) == 2  # loops count twice
        assert g.simple_degree(1) == 0

    def test_degree(self):
        g = build((1, 2), (1, 3), (1, 2))
        assert g.degree(1) == 3
        assert g.simple_degree(1) == 2

    def test_is_simple(self):
        assert build((1, 2), (2, 3)).is_simple()
        assert not build((1, 1)).is_simple()
        assert not build((1, 2), (1, 2)).is_simple()

    def test_add_node_isolated(self):
        g = Multigraph()
        g.add_node("x")
        assert g.node_count() == 1
        assert g.edge_count() == 0

    def test_edge_triples(self):
        g = build((1, 2), (1, 2), (2, 2))
        triples = list(g.edge_triples())
        assert (2, 2, 1) in triples  # the loop, multiplicity 1
        non_loops = [(u, v, m) for u, v, m in triples if u != v]
        assert len(non_loops) == 1
        assert non_loops[0][2] == 2  # parallel pair reported once, m=2


class TestComponents:
    def test_connected(self):
        assert build((1, 2), (2, 3)).is_connected()
        assert not build((1, 2), (3, 4)).is_connected()

    def test_empty_graph_connected(self):
        assert Multigraph().is_connected()

    def test_components(self):
        g = build((1, 2), (3, 4), (4, 5))
        components = sorted(g.connected_components(), key=len)
        assert [len(c) for c in components] == [2, 3]

    def test_induced_subgraph(self):
        g = build((1, 2), (2, 3), (3, 1))
        sub = g.induced_subgraph({1, 2})
        assert sub.node_count() == 2
        assert sub.edge_count() == 1

    def test_induced_subgraph_keeps_loops_and_multiplicity(self):
        g = build((1, 1), (1, 2), (1, 2))
        sub = g.induced_subgraph({1, 2})
        assert sub.loops_at(1) == 1
        assert sub.multiplicity(1, 2) == 2

    def test_remove_node(self):
        g = build((1, 2), (2, 3))
        removed = g.remove_node(2)
        assert removed.node_count() == 2
        assert removed.edge_count() == 0
        # original untouched
        assert g.node_count() == 3

    def test_copy(self):
        g = build((1, 2))
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.node_count() == 2
        assert clone.node_count() == 3


class TestAcyclicity:
    def test_forest(self):
        assert build((1, 2), (2, 3), (4, 5)).is_acyclic_simple()

    def test_cycle_not_acyclic(self):
        assert not build((1, 2), (2, 3), (3, 1)).is_acyclic_simple()

    def test_loop_not_acyclic(self):
        assert not build((1, 1)).is_acyclic_simple()

    def test_parallel_not_acyclic(self):
        assert not build((1, 2), (1, 2)).is_acyclic_simple()


class TestGirth:
    def test_acyclic_girth_none(self):
        assert build((1, 2), (2, 3)).girth() is None

    def test_triangle(self):
        assert build((1, 2), (2, 3), (3, 1)).girth() == 3

    def test_square(self):
        assert build((1, 2), (2, 3), (3, 4), (4, 1)).girth() == 4

    def test_loop_is_one(self):
        assert build((1, 1), (1, 2)).girth() == 1

    def test_parallel_is_two(self):
        assert build((1, 2), (1, 2)).girth() == 2

    def test_shortest_of_two_cycles(self):
        g = build(
            (1, 2), (2, 3), (3, 1),  # triangle
            (3, 4), (4, 5), (5, 6), (6, 3),  # square
        )
        assert g.girth() == 3

    def test_long_cycle(self):
        edges = [(i, i + 1) for i in range(13)] + [(13, 0)]
        assert build(*edges).girth() == 14
