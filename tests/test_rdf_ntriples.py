"""Unit tests for N-Triples reading and writing."""

import io

import pytest

from repro.rdf import IRI, BlankNode, Graph, Literal, Triple, ntriples
from repro.rdf.ntriples import NTriplesError


SAMPLE = """\
# a comment
<urn:s> <urn:p> <urn:o> .
<urn:s> <urn:p> "hello" .
<urn:s> <urn:p> "bonjour"@fr .
<urn:s> <urn:p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <urn:p> _:b1 .

<urn:s> <urn:q> "tab\\there" .
"""


class TestLoads:
    def test_counts(self):
        graph = ntriples.loads(SAMPLE)
        assert len(graph) == 6

    def test_language_literal(self):
        graph = ntriples.loads(SAMPLE)
        assert Triple(IRI("urn:s"), IRI("urn:p"), Literal("bonjour", language="fr")) in graph

    def test_typed_literal(self):
        graph = ntriples.loads(SAMPLE)
        expected = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert Triple(IRI("urn:s"), IRI("urn:p"), expected) in graph

    def test_blank_nodes(self):
        graph = ntriples.loads(SAMPLE)
        assert Triple(BlankNode("b0"), IRI("urn:p"), BlankNode("b1")) in graph

    def test_escape_decoding(self):
        graph = ntriples.loads(SAMPLE)
        assert Triple(IRI("urn:s"), IRI("urn:q"), Literal("tab\there")) in graph

    def test_unicode_escape(self):
        graph = ntriples.loads('<urn:s> <urn:p> "\\u00e9" .')
        assert Triple(IRI("urn:s"), IRI("urn:p"), Literal("é")) in graph

    def test_missing_dot_rejected(self):
        with pytest.raises(NTriplesError) as info:
            ntriples.loads("<urn:s> <urn:p> <urn:o>")
        assert info.value.line_number == 1

    def test_literal_subject_rejected(self):
        with pytest.raises(NTriplesError):
            ntriples.loads('"lit" <urn:p> <urn:o> .')

    def test_blank_predicate_rejected(self):
        with pytest.raises(NTriplesError):
            ntriples.loads("<urn:s> _:b <urn:o> .")

    def test_garbage_rejected_with_line_number(self):
        with pytest.raises(NTriplesError) as info:
            ntriples.loads("<urn:s> <urn:p> <urn:o> .\n???")
        assert info.value.line_number == 2


class TestDumps:
    def test_round_trip(self):
        graph = ntriples.loads(SAMPLE)
        again = ntriples.loads(ntriples.dumps(graph))
        assert set(again) == set(graph)

    def test_deterministic_order(self):
        graph = ntriples.loads(SAMPLE)
        assert ntriples.dumps(graph) == ntriples.dumps(graph.copy())

    def test_dump_load_file_objects(self):
        graph = ntriples.loads(SAMPLE)
        buffer = io.StringIO()
        ntriples.dump(graph, buffer)
        buffer.seek(0)
        assert set(ntriples.load(buffer)) == set(graph)

    def test_escapes_survive_round_trip(self):
        g = Graph()
        g.add(Triple(IRI("urn:s"), IRI("urn:p"), Literal('a"b\\c\nd')))
        assert set(ntriples.loads(ntriples.dumps(g))) == set(g)
