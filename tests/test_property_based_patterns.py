"""Property-based tests over richer pattern grammars.

Extends the CQ-only strategies of ``test_property_based`` with
OPTIONAL / UNION / FILTER structure, checking the invariants that tie
the analyses together: round-trips, fragment-membership monotonicity,
engine agreement, and study accounting.
"""


from hypothesis import given, settings, strategies as st

from repro.analysis import classify_fragments, classify_operators, extract_features
from repro.engine import IndexedEngine, NestedLoopEngine
from repro.rdf import IRI, Graph, Literal, Triple, Variable
from repro.sparql import ast, parse_query, serialize_query

_names = st.sampled_from(["a", "b", "c", "x", "y", "z", "s", "o"])
_iris = st.sampled_from([IRI(f"urn:p{i}") for i in range(5)])


@st.composite
def triple_patterns(draw):
    subject = Variable(draw(_names))
    predicate = draw(st.one_of(_iris, st.builds(Variable, _names)))
    obj = draw(
        st.one_of(
            st.builds(Variable, _names),
            _iris,
            st.builds(Literal, st.sampled_from(["v1", "v2"])),
        )
    )
    return ast.TriplePattern(subject, predicate, obj)


@st.composite
def simple_filters(draw):
    variable = Variable(draw(_names))
    value = Literal(str(draw(st.integers(0, 9))),
                    datatype="http://www.w3.org/2001/XMLSchema#integer")
    return ast.FilterPattern(
        ast.Comparison(
            draw(st.sampled_from(["=", "!=", "<", ">"])),
            ast.TermExpression(variable),
            ast.TermExpression(value),
        )
    )


@st.composite
def aof_patterns(draw, depth=2):
    elements = draw(st.lists(triple_patterns(), min_size=1, max_size=3))
    if depth > 0 and draw(st.booleans()):
        elements.append(
            ast.OptionalPattern(draw(aof_patterns(depth=depth - 1)))
        )
    if draw(st.booleans()):
        elements.append(draw(simple_filters()))
    return ast.GroupPattern(tuple(elements))


@st.composite
def general_patterns(draw):
    base = draw(aof_patterns())
    if draw(st.booleans()):
        other = draw(aof_patterns(depth=0))
        return ast.GroupPattern((ast.UnionPattern(base, other),))
    return base


@st.composite
def queries(draw):
    return ast.Query(
        query_type=ast.QueryType.ASK,
        pattern=draw(general_patterns()),
    )


@settings(max_examples=80, deadline=None)
@given(queries())
def test_round_trip_rich_patterns(query):
    reparsed = parse_query(serialize_query(query))
    assert reparsed.pattern == query.pattern


@settings(max_examples=80, deadline=None)
@given(queries())
def test_fragment_nesting(query):
    profile = classify_fragments(query)
    if profile.is_cq:
        assert profile.is_cpf
    if profile.is_cqf:
        assert profile.is_cpf
        assert profile.is_aof
    if profile.is_cqof:
        assert profile.is_aof
        assert profile.is_well_designed


@settings(max_examples=80, deadline=None)
@given(queries())
def test_operator_classification_consistent_with_features(query):
    features = extract_features(query)
    classification = classify_operators(query)
    if classification.pure:
        letters = classification.letters
        assert ("Filter" in features.keywords) == ("F" in letters)
        assert ("Union" in features.keywords) == ("U" in letters)
        assert ("Opt" in features.keywords) == ("O" in letters)


@settings(max_examples=40, deadline=None)
@given(queries())
def test_engines_agree(query):
    graph = Graph()
    p0, p1 = IRI("urn:p0"), IRI("urn:p1")
    nodes = [IRI(f"urn:n{i}") for i in range(4)]
    for i, node in enumerate(nodes):
        graph.add(Triple(node, p0, nodes[(i + 1) % 4]))
        graph.add(Triple(node, p1, Literal(str(i),
                  datatype="http://www.w3.org/2001/XMLSchema#integer")))
    indexed = IndexedEngine(graph).evaluate(query)
    scanned = NestedLoopEngine(graph).evaluate(query)
    assert indexed == scanned  # both are bools for ASK
