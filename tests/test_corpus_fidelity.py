"""Corpus-fidelity tests: the generator must track the paper's
per-dataset signatures when sampled at a reasonable scale.

These are statistical tests with generous tolerances (the corpus is
random); they pin down the *signatures* the paper calls out per
dataset, which the benchmarks then compare in aggregate.
"""


from repro.analysis.study import study_corpus
from repro.logs import build_query_log
from repro.workload import DATASET_PROFILES, generate_dataset


def study_one(name, scale, seed=11):
    profile = DATASET_PROFILES[name]
    entries = generate_dataset(profile, scale=scale, seed=seed)
    log = build_query_log(name, entries)
    return log, study_corpus({name: log})


class TestDatasetSignatures:
    def test_britm_distinct_heavy(self):
        """Paper: 97% of BritM14 queries use DISTINCT."""
        _, study = study_one("BritM14", scale=2e-3)
        stats = study.datasets["BritM14"]
        share = stats.keyword_counts.get("Distinct", 0) / stats.queries
        assert share > 0.8

    def test_biop13_graph_heavy(self):
        """Paper: 80% of BioP13 queries use GRAPH."""
        _, study = study_one("BioP13", scale=3e-4)
        stats = study.datasets["BioP13"]
        share = stats.keyword_counts.get("Graph", 0) / stats.queries
        assert share > 0.6

    def test_biomed_describe_heavy(self):
        """Paper: ~85% of BioMed13 queries are DESCRIBE."""
        _, study = study_one("BioMed13", scale=8e-3)
        stats = study.datasets["BioMed13"]
        share = stats.keyword_counts.get("Describe", 0) / stats.queries
        assert share > 0.6

    def test_lgd13_construct_heavy(self):
        """Paper: 71% of LGD13 queries are CONSTRUCT."""
        _, study = study_one("LGD13", scale=8e-4)
        stats = study.datasets["LGD13"]
        share = stats.keyword_counts.get("Construct", 0) / stats.queries
        assert share > 0.5

    def test_wikidata_paths_and_subqueries(self):
        """Paper: WikiData17 has 29.87% property paths, 9.74% subqueries,
        42% ORDER BY — an order of magnitude above the other logs."""
        profile = DATASET_PROFILES["WikiData17"]
        # WikiData17 has only 308 queries; sample it at full scale.
        entries = generate_dataset(profile, scale=1.0, seed=5)
        log = build_query_log("WikiData17", entries)
        study = study_corpus({"WikiData17": log})
        stats = study.datasets["WikiData17"]
        path_queries = sum(
            1
            for parsed in log.unique_queries()
            if ("*" in parsed.text or "/" in parsed.text.split("WHERE")[-1])
        )
        assert study.subquery_count / stats.queries > 0.03
        assert stats.keyword_counts.get("Order By", 0) / stats.queries > 0.2
        assert study.property_path_total / stats.queries > 0.1

    def test_swdf_limit_heavy(self):
        """Paper: 47% of SWDF13 queries use LIMIT."""
        _, study = study_one("SWDF13", scale=2e-4)
        stats = study.datasets["SWDF13"]
        share = stats.keyword_counts.get("Limit", 0) / stats.queries
        assert share > 0.3

    def test_biop_one_triple_dominated(self):
        """Paper Figure 1: BioP13 queries are almost all 1 triple."""
        _, study = study_one("BioP13", scale=3e-4)
        stats = study.datasets["BioP13"]
        assert stats.triple_hist_percentages()["1"] > 65

    def test_britm_large_queries(self):
        """Paper Figure 1: BritM14 Avg#T = 5.47, the largest."""
        _, study = study_one("BritM14", scale=2e-3)
        stats = study.datasets["BritM14"]
        assert stats.average_triples > 3.5

    def test_duplication_profiles(self):
        """BioMed13 dedups ~33x; WikiData17 not at all (Table 1)."""
        biomed_log, _ = study_one("BioMed13", scale=8e-3)
        assert biomed_log.valid / max(biomed_log.unique, 1) > 5
        profile = DATASET_PROFILES["WikiData17"]
        entries = generate_dataset(profile, scale=1.0, seed=5)
        wikidata_log = build_query_log("WikiData17", entries)
        assert wikidata_log.unique == wikidata_log.valid
