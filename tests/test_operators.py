"""Unit tests for Table 3 operator-set classification."""

from repro.analysis import classify_operators
from repro.analysis.operators import TABLE3_ROWS, Operator
from repro.sparql import parse_query


def classify(text):
    return classify_operators(parse_query(text))


class TestOperatorSets:
    def test_none(self):
        c = classify("SELECT * WHERE { ?s <urn:p> ?o }")
        assert c.operators == frozenset()
        assert c.pure

    def test_bodyless_query_is_none(self):
        c = classify("DESCRIBE <urn:x>")
        assert c.operators == frozenset() and c.pure

    def test_filter_only(self):
        c = classify("SELECT * WHERE { ?s <urn:p> ?o FILTER(?o > 1) }")
        assert c.letters == frozenset("F")

    def test_and_only(self):
        c = classify("SELECT * WHERE { ?s <urn:p> ?o . ?o <urn:q> ?z }")
        assert c.letters == frozenset("A")

    def test_and_filter(self):
        c = classify(
            "SELECT * WHERE { ?s <urn:p> ?o . ?o <urn:q> ?z FILTER(?z = 1) }"
        )
        assert c.letters == frozenset("AF")

    def test_full_aouf(self):
        c = classify(
            "SELECT * WHERE { ?s <urn:p> ?o . ?o <urn:q> ?z "
            "OPTIONAL { ?z <urn:r> ?w } "
            "{ ?s <urn:x> ?a } UNION { ?s <urn:y> ?a } FILTER(?o != 1) }"
        )
        assert c.letters == frozenset("AOUF")
        assert c.pure

    def test_graph(self):
        c = classify("SELECT * WHERE { GRAPH <urn:g> { ?s ?p ?o } }")
        assert c.letters == frozenset("G")

    def test_property_path_impure(self):
        c = classify("SELECT * WHERE { ?s <urn:p>* ?o }")
        assert not c.pure

    def test_bind_impure(self):
        assert not classify("SELECT * WHERE { ?s ?p ?o BIND(1 AS ?x) }").pure

    def test_minus_impure(self):
        assert not classify(
            "SELECT * WHERE { ?s ?p ?o MINUS { ?s <urn:q> ?o } }"
        ).pure

    def test_subquery_impure(self):
        assert not classify(
            "SELECT * WHERE { { SELECT ?x WHERE { ?x <urn:p> ?y } } }"
        ).pure

    def test_exists_filter_impure(self):
        c = classify("SELECT * WHERE { ?s ?p ?o FILTER EXISTS { ?s <urn:q> ?z } }")
        assert not c.pure

    def test_values_impure(self):
        assert not classify("SELECT * WHERE { VALUES ?x { 1 } ?x <urn:p> ?y }").pure


class TestCPF:
    def test_cpf_membership(self):
        assert classify("SELECT * WHERE { ?s <urn:p> ?o }").is_cpf()
        assert classify(
            "SELECT * WHERE { ?s <urn:p> ?o . ?o <urn:q> ?z FILTER(?z > 1) }"
        ).is_cpf()
        assert not classify(
            "SELECT * WHERE { ?s ?p ?o OPTIONAL { ?o <urn:q> ?z } }"
        ).is_cpf()

    def test_cpf_plus_opt(self):
        c = classify(
            "SELECT * WHERE { ?s <urn:p> ?o OPTIONAL { ?o <urn:q> ?z } }"
        )
        assert c.in_cpf_plus(Operator.OPT)
        assert not c.in_cpf_plus(Operator.UNION)

    def test_cpf_plus_excludes_mixed(self):
        c = classify(
            "SELECT * WHERE { ?s <urn:p> ?o OPTIONAL { ?o <urn:q> ?z } "
            "{ ?s <urn:a> ?b } UNION { ?s <urn:c> ?b } }"
        )
        assert not c.in_cpf_plus(Operator.OPT)
        assert not c.in_cpf_plus(Operator.UNION)


class TestTable3Rows:
    def test_row_count_matches_paper(self):
        # 14 operator-set rows (incl. "none"), as in Table 3.
        assert len(TABLE3_ROWS) == 14

    def test_nested_groups_of_one_do_not_count_as_and(self):
        c = classify("SELECT * WHERE { { ?s <urn:p> ?o } }")
        assert c.letters == frozenset()

    def test_union_branches_with_single_triples(self):
        c = classify(
            "SELECT * WHERE { { ?s <urn:a> ?o } UNION { ?s <urn:b> ?o } }"
        )
        assert c.letters == frozenset("U")
