"""The parallel runtime: pools, adaptive chunking, transport, tree merge.

Invariant 10 under test (docs/ARCHITECTURE.md): the shape of the merge
tree — one long left fold, the binary-counter pairwise reduction, or
any arbitrary contiguous grouping — never changes the result, byte for
byte.  Plus the runtime mechanics: persistent pools are created lazily,
reused across runs of one :class:`~repro.api.AnalysisSession`, and
produce the same bytes as fresh-pool and serial runs; the adaptive
chunk schedule is deterministic; ``workers="auto"`` resolves and
validates everywhere; transport counters ride the pass profile and its
snapshot codec stays backward compatible.
"""

from functools import lru_cache, reduce
from itertools import islice

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.parallel import (
    DEFAULT_STREAM_CHUNK_SIZE,
    TransportStats,
    WorkerPool,
    adaptive_chunk_sizes,
    imap_bounded,
    iter_scheduled_chunks,
    measure_chunk,
    merge_shards,
    merge_studies,
    resolve_workers,
    tree_merge,
)
from repro.analysis.passes import PassProfile
from repro.analysis.streaks import StreakAccumulator
from repro.analysis.study import study_corpus
from repro.api import AnalysisRequest, AnalysisSession
from repro.cli import main
from repro.logs import LogShard, build_query_log, process_entries
from repro.reporting import render_study
from repro.reporting.tables import render_pass_profile
from repro.workload import generate_corpus, generate_day_log

QUERIES = [
    "SELECT ?s WHERE { ?s ?p ?o }",
    "SELECT ?s WHERE { ?s ?p ?o . ?o ?q ?r }",
    "ASK { ?s ?p ?o }",
    "SELECT ?name WHERE { ?s ?p ?name FILTER(?name != 'x') }",
    "SELECT * WHERE { ?a ?b ?c } LIMIT 10",
]


@lru_cache(maxsize=1)
def corpus_entries():
    return generate_corpus(scale=4e-6, seed=0)


@lru_cache(maxsize=1)
def day_log():
    return generate_day_log(300, session_rate=0.35, seed=9)


def fold_merge(items, merge_fn):
    return reduce(merge_fn, items)


# ---------------------------------------------------------------------------
# Invariant 10: merge-tree shape never changes a byte
# ---------------------------------------------------------------------------


class TestTreeMergeInvariance:
    def test_tree_merge_empty_and_single(self):
        assert tree_merge([], lambda a, b: a.merge(b)) is None
        acc = StreakAccumulator(window=5)
        assert tree_merge([acc], lambda a, b: a.merge(b)) is acc

    def test_merge_shards_empty_gives_empty_shard(self):
        merged = merge_shards([])
        assert merged.total == 0 and merged.valid == 0

    def test_merge_studies_empty_explicit_dedup(self):
        merged = merge_studies([], dedup=False)
        assert merged.dedup is False and not merged.datasets

    @settings(max_examples=40, deadline=None)
    @given(
        picks=st.lists(st.integers(min_value=0, max_value=4), min_size=0, max_size=60),
        cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=6),
    )
    def test_streak_tree_equals_fold_equals_serial(self, picks, cuts):
        texts = [QUERIES[i] for i in picks]
        bounds = sorted({0, len(texts), *[min(c, len(texts)) for c in cuts]})
        chunks = [
            texts[lo:hi] for lo, hi in zip(bounds, bounds[1:])
        ] or [texts]

        def accumulators():
            built = []
            for chunk in chunks:
                acc = StreakAccumulator(window=7)
                for text in chunk:
                    acc.push(text)
                built.append(acc)
            return built

        serial = StreakAccumulator(window=7)
        for text in texts:
            serial.push(text)
        tree = tree_merge(accumulators(), lambda a, b: a.merge(b))
        fold = fold_merge(accumulators(), lambda a, b: a.merge(b))
        assert tree == serial
        assert fold == serial
        assert tree.to_dict() == serial.to_dict()

    @settings(max_examples=15, deadline=None)
    @given(
        chunk_size=st.integers(min_value=1, max_value=40),
        group_cuts=st.lists(st.integers(min_value=1, max_value=30), max_size=4),
    )
    def test_study_merge_grouping_invariance(self, chunk_size, group_cuts):
        """Arbitrary contiguous grouping ≡ pairwise tree ≡ serial study."""
        name, entries = next(iter(corpus_entries().items()))
        log = build_query_log(name, entries)
        serial = study_corpus({name: log}, dedup=True)

        def partials():
            queries = list(log.unique_queries())
            return [
                measure_chunk(name, queries[lo : lo + chunk_size])
                for lo in range(0, len(queries), chunk_size)
            ]

        def seeded(merged_partials):
            from repro.analysis.study import CorpusStudy, DatasetStats

            study = CorpusStudy(dedup=True)
            study.datasets[name] = DatasetStats(
                name=name, total=log.total, valid=log.valid, unique=log.unique
            )
            if merged_partials is not None:
                study.merge(merged_partials)
            return study

        tree = seeded(tree_merge(partials(), lambda a, b: a.merge(b)))
        # Arbitrary two-level tree: fold random contiguous groups first.
        parts = partials()
        bounds = sorted({0, len(parts), *[min(c, len(parts)) for c in group_cuts]})
        groups = [
            fold_merge(parts[lo:hi], lambda a, b: a.merge(b))
            for lo, hi in zip(bounds, bounds[1:])
            if parts[lo:hi]
        ]
        grouped = seeded(tree_merge(groups, lambda a, b: a.merge(b)) if groups else None)

        logs = {name: log}
        assert render_study(tree, logs) == render_study(serial, logs)
        assert render_study(grouped, logs) == render_study(serial, logs)
        assert tree == serial
        assert grouped == serial


# ---------------------------------------------------------------------------
# Adaptive chunk schedule
# ---------------------------------------------------------------------------


class TestAdaptiveChunking:
    def test_workers1_is_a_single_chunk(self):
        sizes = adaptive_chunk_sizes(5000, workers=1)
        assert next(sizes) == 5000
        assert next(sizes) == 5000  # schedule never runs dry

    def test_grows_geometrically_to_the_cap(self):
        total, workers = 100_000, 4
        sizes = list(islice(adaptive_chunk_sizes(total, workers), 12))
        cap = -(-total // (workers * 8))
        assert sizes[0] == 64
        assert all(b == min(a * 2, cap) for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] == cap

    def test_tiny_input_stays_small(self):
        sizes = list(islice(adaptive_chunk_sizes(100, workers=4), 4))
        assert all(size == 64 for size in sizes)

    def test_unsized_stream_caps_at_stream_chunk(self):
        sizes = list(islice(adaptive_chunk_sizes(None, workers=4), 10))
        assert sizes[0] == 64
        assert sizes[-1] == DEFAULT_STREAM_CHUNK_SIZE

    def test_deterministic(self):
        first = list(islice(adaptive_chunk_sizes(12345, 3), 20))
        second = list(islice(adaptive_chunk_sizes(12345, 3), 20))
        assert first == second

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=3000),
        workers=st.integers(min_value=1, max_value=8),
    )
    def test_scheduled_chunks_cover_everything_in_order(self, n, workers):
        items = list(range(n))
        chunks = list(
            iter_scheduled_chunks(iter(items), adaptive_chunk_sizes(n, workers))
        )
        assert [x for chunk in chunks for x in chunk] == items
        assert all(chunks for chunks in chunks)  # no empty chunks


# ---------------------------------------------------------------------------
# Worker pools: lazy, persistent, reused by sessions
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_lazy_and_idempotent_close(self):
        pool = WorkerPool(2)
        assert pool.workers == 2
        assert not pool.started  # no processes until first submit
        pool.close()
        pool.close()
        assert not pool.started

    def test_auto_resolution(self):
        assert WorkerPool("auto").workers == resolve_workers(None)
        assert WorkerPool(None).workers == resolve_workers(None)

    def test_context_manager_runs_work(self):
        with WorkerPool(2) as pool:
            results = list(
                imap_bounded(len, [[1], [2, 3], [4], [5, 6, 7]], pool.workers, pool=pool)
            )
            assert results == [1, 2, 1, 3]
            assert pool.started
        assert not pool.started

    def test_single_payload_collapses_without_processes(self):
        with WorkerPool(4) as pool:
            assert list(imap_bounded(len, [[1, 2]], pool.workers, pool=pool)) == [2]
            assert not pool.started  # <=1 payload ran in-process


class TestSessionPoolReuse:
    def test_two_runs_one_pool_identical_bytes(self):
        request = AnalysisRequest(
            corpora={"day": day_log()}, metrics=("streaks",), workers=2
        )
        with AnalysisSession() as session:
            first = session.run(request)
            pool = session._pool
            assert pool is not None
            second = session.run(request)
            assert session._pool is pool  # reused, not recreated
        with AnalysisSession() as fresh_session:
            fresh = fresh_session.run(request)
        serial = AnalysisSession().run(
            AnalysisRequest(corpora={"day": day_log()}, metrics=("streaks",), workers=1)
        )
        assert first.render("text") == second.render("text")
        assert first.render("text") == fresh.render("text")
        assert first.render("text") == serial.render("text")

    def test_serial_sessions_never_spawn_a_pool(self):
        request = AnalysisRequest(corpora={"day": day_log()}, metrics=("streaks",))
        with AnalysisSession() as session:
            session.run(request)
            assert session._pool is None

    def test_worker_count_change_replaces_the_pool(self):
        with AnalysisSession() as session:
            session.run(
                AnalysisRequest(corpora={"q": QUERIES * 40}, workers=2)
            )
            pool = session._pool
            session.run(
                AnalysisRequest(corpora={"q": QUERIES * 40}, workers=3)
            )
            assert session._pool is not pool
            assert session._pool.workers == 3


# ---------------------------------------------------------------------------
# workers="auto" plumbing
# ---------------------------------------------------------------------------


class TestWorkersAuto:
    def test_resolve_workers_auto(self):
        assert resolve_workers("auto") == resolve_workers(None) >= 1

    def test_resolve_workers_rejects_other_strings(self):
        with pytest.raises(ValueError, match="auto"):
            resolve_workers("fast")

    def test_request_validate_accepts_auto(self):
        AnalysisRequest(corpora={"q": QUERIES}, workers="auto").validate()

    def test_request_validate_rejects_bad_strings_and_zero(self):
        with pytest.raises(ValueError, match="auto"):
            AnalysisRequest(corpora={"q": QUERIES}, workers="many").validate()
        with pytest.raises(ValueError, match=">= 1"):
            AnalysisRequest(corpora={"q": QUERIES}, workers=0).validate()

    def test_cli_accepts_auto(self, tmp_path, capsys):
        sample = tmp_path / "sample.rq"
        sample.write_text("\n".join(QUERIES) + "\n", encoding="utf-8")
        assert main(["analyze", str(sample)]) == 0
        serial = capsys.readouterr().out
        assert main(["analyze", "--workers", "auto", str(sample)]) == 0
        assert capsys.readouterr().out == serial

    def test_cli_still_rejects_nonpositive_and_junk(self, capsys):
        for bad in ("0", "-2", "turbo"):
            with pytest.raises(SystemExit) as excinfo:
                main(["analyze", "--workers", bad, "whatever.rq"])
            assert excinfo.value.code == 2
        capsys.readouterr()


# ---------------------------------------------------------------------------
# Transport counters: profile plumbing + snapshot codec
# ---------------------------------------------------------------------------


class TestTransportCounters:
    def test_sharded_profiled_run_records_transport(self):
        request = AnalysisRequest(
            corpora={"day": day_log()}, metrics=("streaks",),
            workers=2, profile=True,
        )
        with AnalysisSession() as session:
            result = session.run(request)
        profile = result.profile
        assert profile is not None
        assert profile.chunks_shipped > 0
        assert profile.shipped_bytes > 0
        assert profile.merge_seconds >= 0.0
        assert "shard transport:" in render_pass_profile(profile)

    def test_serial_profiled_run_ships_nothing(self):
        request = AnalysisRequest(
            corpora={"day": day_log()}, metrics=("streaks",),
            workers=1, profile=True,
        )
        with AnalysisSession() as session:
            result = session.run(request)
        profile = result.profile
        assert profile is not None
        assert profile.chunks_shipped == 0
        assert profile.shipped_bytes == 0
        assert "shard transport:" not in render_pass_profile(profile)

    def test_transport_stats_fold_into_profile(self):
        profile = PassProfile()
        TransportStats(chunks_shipped=3, shipped_bytes=999, merge_seconds=0.25).add_to_profile(profile)
        TransportStats(chunks_shipped=1, shipped_bytes=1, merge_seconds=0.25).add_to_profile(profile)
        assert profile.chunks_shipped == 4
        assert profile.shipped_bytes == 1000
        assert profile.merge_seconds == 0.5

    def test_profile_merge_adds_transport(self):
        a = PassProfile(chunks_shipped=2, shipped_bytes=10, merge_seconds=0.125)
        b = PassProfile(chunks_shipped=5, shipped_bytes=20, merge_seconds=0.25)
        a.merge(b)
        assert (a.chunks_shipped, a.shipped_bytes, a.merge_seconds) == (7, 30, 0.375)

    def test_profile_snapshot_round_trip(self):
        profile = PassProfile(
            seconds={"shallow": 0.5}, queries=10, cache_hits=3, cache_misses=7,
            store_hits=2, chunks_shipped=4, shipped_bytes=4096, merge_seconds=0.25,
        )
        rebuilt = PassProfile.from_dict(profile.to_dict())
        assert rebuilt == profile

    def test_profile_snapshot_backward_compatible(self):
        legacy = {
            "seconds": {"shallow": 0.5},
            "queries": 10,
            "cache_hits": 3,
            "cache_misses": 7,
        }
        profile = PassProfile.from_dict(legacy)
        assert profile.chunks_shipped == 0
        assert profile.shipped_bytes == 0
        assert profile.merge_seconds == 0.0

    def test_ingestion_pool_transport_is_counted(self):
        texts = [QUERIES[i % len(QUERIES)] for i in range(400)]
        transport = TransportStats()
        with WorkerPool(2) as pool:
            from repro.analysis.parallel import build_query_log_parallel

            pooled = build_query_log_parallel(
                "q", texts, pool=pool, transport=transport
            )
        serial_log = build_query_log("q", texts)
        assert pooled.summary_row() == serial_log.summary_row()
        assert transport.chunks_shipped > 0
        assert transport.shipped_bytes > 0


class TestPoolDriversByteIdentity:
    """Persistent-pool code paths ≡ serial, for ingestion and measure."""

    def test_pooled_full_analysis_matches_serial(self):
        corpora = dict(list(corpus_entries().items())[:3])
        serial = AnalysisSession().run(AnalysisRequest(corpora=corpora))
        with AnalysisSession() as session:
            pooled = session.run(
                AnalysisRequest(corpora=corpora, workers=2, chunk_size=11)
            )
            assert session._pool is not None
        assert pooled.render("text") == serial.render("text")

    def test_pooled_measure_phase_matches_serial(self):
        name, entries = next(iter(corpus_entries().items()))
        logs = {name: build_query_log(name, entries)}
        serial = study_corpus(logs, dedup=True)
        with WorkerPool(2) as pool:
            pooled = study_corpus(logs, dedup=True, pool=pool, chunk_size=7)
        assert render_study(pooled, logs) == render_study(serial, logs)
        assert pooled == serial

    def test_shard_merge_order_matches_stream(self):
        shards = [
            process_entries([text]) for text in QUERIES
        ]
        merged = merge_shards(shards)
        expected = process_entries(QUERIES)
        assert merged.to_query_log("q").summary_row() == expected.to_query_log(
            "q"
        ).summary_row()
        assert list(merged.order) == list(expected.order)
