"""Unit tests for the corpus study driver."""

import pytest

from repro.analysis.study import study_corpus
from repro.logs import build_query_log


def study_of(queries, name="test", dedup=True):
    log = build_query_log(name, queries)
    return study_corpus({name: log}, dedup=dedup)


class TestKeywordAccounting:
    def test_keyword_table(self):
        study = study_of(
            [
                "SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y } LIMIT 5",
                "ASK { ?s <urn:p> ?o . ?o <urn:q> ?z }",
            ]
        )
        table = dict((k, a) for k, a, _ in study.keyword_table())
        assert table["Select"] == 1
        assert table["Ask"] == 1
        assert table["Distinct"] == 1
        assert table["Limit"] == 1
        assert table["And"] == 1

    def test_dedup_vs_valid_weighting(self):
        queries = ["SELECT * WHERE { ?s ?p ?o }"] * 4 + ["ASK { ?a <urn:p> ?b }"]
        unique_study = study_of(queries, dedup=True)
        valid_study = study_of(queries, dedup=False)
        assert unique_study.query_count == 2
        assert valid_study.query_count == 5
        assert valid_study.keyword_counts["Select"] == 4

    def test_no_body_counted(self):
        study = study_of(["DESCRIBE <urn:x>"])
        assert study.no_body_count == 1


class TestOperatorAccounting:
    def test_table3_rows(self):
        study = study_of(
            [
                "SELECT * WHERE { ?s <urn:p> ?o }",  # none
                "SELECT * WHERE { ?s <urn:p> ?o FILTER(?o > 1) }",  # F
                "SELECT * WHERE { ?s <urn:p> ?o . ?o <urn:q> ?z }",  # A
                "SELECT * WHERE { ?s <urn:p>* ?o }",  # other features
            ]
        )
        table = {label: count for label, count, _ in study.operator_table()}
        assert table["none"] == 1
        assert table["F"] == 1
        assert table["A"] == 1
        assert table["CPF subtotal"] == 3
        assert study.operator_other_features == 1

    def test_cpf_plus_increments(self):
        study = study_of(
            [
                "SELECT * WHERE { ?s <urn:p> ?o OPTIONAL { ?o <urn:q> ?z } }",
                "SELECT * WHERE { GRAPH <urn:g> { ?s <urn:p> ?o } }",
            ]
        )
        opt_increment, _ = study.cpf_plus("O")
        graph_increment, _ = study.cpf_plus("G")
        union_increment, _ = study.cpf_plus("U")
        assert opt_increment == 1
        assert graph_increment == 1
        assert union_increment == 0


class TestProjectionAccounting:
    def test_bounds(self):
        study = study_of(
            [
                "SELECT ?s WHERE { ?s <urn:p> ?o }",  # projects
                "SELECT * WHERE { ?s <urn:p> ?o }",  # no
                "SELECT ?s ?o WHERE { ?s <urn:p> ?o BIND(1 AS ?b) }",  # indeterminate
                "ASK { <urn:a> <urn:b> <urn:c> }",  # no (no vars)
            ]
        )
        low, high = study.projection_bounds()
        assert low == pytest.approx(25.0)
        assert high == pytest.approx(50.0)

    def test_subquery_count(self):
        study = study_of(
            ["SELECT * WHERE { { SELECT ?x WHERE { ?x <urn:p> ?y } } }"]
        )
        assert study.subquery_count == 1


class TestStructureAccounting:
    def test_fragments_and_shapes(self):
        study = study_of(
            [
                "ASK { ?a <urn:p> ?b }",  # single edge CQ
                "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }",  # chain CQ
                "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a }",  # cycle
            ]
        )
        assert study.aof_count == 3
        assert study.cq_count == 3
        assert study.cqof_count == 3
        cq_shapes = study.shape_counts["CQ"]
        assert cq_shapes["single edge"] == 1
        assert cq_shapes["chain"] == 2
        assert cq_shapes["cycle"] == 1
        assert cq_shapes["flower set"] == 3
        assert study.treewidth_counts["CQ"][1] == 2
        assert study.treewidth_counts["CQ"][2] == 1
        assert study.girth_hist[3] == 1

    def test_shape_table_has_treewidth_rows(self):
        study = study_of(["ASK { ?a <urn:p> ?b }"])
        rows = dict((label, count) for label, count, _ in study.shape_table("CQ"))
        assert rows["treewidth <= 2"] == 1
        assert rows["treewidth = 3"] == 0
        assert rows["total"] == 1

    def test_constants_tracking(self):
        study = study_of(
            [
                "ASK { ?a <urn:p> <urn:const> }",
                "ASK { ?a <urn:p> ?b }",
            ]
        )
        assert study.single_edge_cq == 2
        assert study.single_edge_cq_with_constants == 1

    def test_predicate_variable_hypergraph(self):
        study = study_of(
            [
                "ASK { ?a ?p ?b . ?b <urn:q> ?c }",  # acyclic, hw 1
                "ASK WHERE { ?x1 ?x2 ?x3 . ?x3 <urn:a> ?x4 . ?x4 ?x2 ?x5 }",  # hw 2
            ]
        )
        assert study.predicate_variable_cqof == 2
        assert study.hypertree_widths[1] == 1
        assert study.hypertree_widths[2] == 1

    def test_cq_size_histograms(self):
        study = study_of(
            [
                "ASK { ?a <urn:p> ?b }",
                "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }",
            ]
        )
        assert study.cq_sizes[1] == 1
        assert study.cq_sizes[2] == 1


class TestPathAccounting:
    def test_path_taxonomy(self):
        study = study_of(
            [
                "ASK { ?s !<urn:a> ?o }",
                "ASK { ?s <urn:a>* ?o }",
                "ASK { ?s (<urn:a>/<urn:b>)* ?o }",
            ]
        )
        assert study.property_path_total == 3
        assert study.simple_path_forms["!a"] == 1
        assert study.path_types["a*"] == 1
        assert study.path_types["(a/b)*"] == 1
        assert study.non_ctract  # (a/b)* recorded

    def test_wikidata_service_stripped(self):
        queries = [
            "SELECT * WHERE { ?s <urn:p> ?o "
            "SERVICE <urn:wikibase:label> { ?o <urn:l> ?l } }"
        ]
        log = build_query_log("WikiData17", queries)
        study = study_corpus({"WikiData17": log})
        # After stripping, the query is a plain 1-triple Select: pure.
        assert study.operator_other_features == 0


class TestDatasetStats:
    def test_per_dataset_histograms(self):
        study = study_of(
            [
                "SELECT * WHERE { ?s <urn:p> ?o }",
                "SELECT * WHERE { ?s <urn:p> ?o . ?o <urn:q> ?z }",
                "DESCRIBE <urn:x>",
            ]
        )
        stats = study.datasets["test"]
        assert stats.queries == 3
        assert stats.select_ask == 2
        assert stats.select_ask_share == pytest.approx(2 / 3)
        buckets = stats.triple_hist_percentages()
        assert buckets["1"] == pytest.approx(50.0)
        assert buckets["2"] == pytest.approx(50.0)
        assert stats.average_triples == pytest.approx(1.0)
