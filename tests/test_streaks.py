"""Unit tests for Levenshtein distance and streak detection (§8)."""

import pytest

from repro.analysis import (
    find_streaks,
    levenshtein,
    queries_similar,
    streak_length_histogram,
    strip_prefixes,
)
from repro.analysis.streaks import StreakDetector


class TestLevenshtein:
    def test_identity(self):
        assert levenshtein("abc", "abc") == 0

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_strings(self):
        assert levenshtein("", "") == 0
        assert levenshtein("", "abc") == 3

    def test_symmetry(self):
        assert levenshtein("flaw", "lawn") == levenshtein("lawn", "flaw")

    def test_banded_equals_full_within_budget(self):
        pairs = [("kitten", "sitting"), ("abcdef", "azcdef"), ("x", "xy")]
        for a, b in pairs:
            full = levenshtein(a, b)
            banded = levenshtein(a, b, max_distance=full)
            assert banded == full

    def test_banded_gives_up_over_budget(self):
        assert levenshtein("kitten", "sitting", max_distance=2) is None

    def test_banded_length_gap_short_circuit(self):
        assert levenshtein("a", "a" * 50, max_distance=5) is None

    def test_zero_budget(self):
        assert levenshtein("abc", "abc", max_distance=0) == 0
        assert levenshtein("abc", "abd", max_distance=0) is None


class TestStripPrefixes:
    def test_strips_prefix_declarations(self):
        text = "PREFIX foaf: <urn:f:>\nSELECT ?x WHERE { ?x ?p ?o }"
        assert strip_prefixes(text) == "SELECT ?x WHERE { ?x ?p ?o }"

    def test_keeps_text_without_keyword(self):
        assert strip_prefixes("garbage") == "garbage"

    def test_case_insensitive(self):
        assert strip_prefixes("PREFIX a: <urn:> select ?x").startswith("select")

    def test_all_four_query_forms(self):
        for keyword in ("SELECT", "ASK", "CONSTRUCT", "DESCRIBE"):
            text = f"PREFIX a: <urn:>\n{keyword} stuff"
            assert strip_prefixes(text) == f"{keyword} stuff"


class TestSimilarity:
    def test_prefixes_do_not_create_similarity(self):
        a = "PREFIX verylongprefix: <urn:averylongiri:>\nSELECT ?a WHERE { ?a <urn:x> 1 }"
        b = "PREFIX verylongprefix: <urn:averylongiri:>\nASK { ?completely ?different <urn:thing> }"
        assert not queries_similar(a, b)

    def test_small_edit_is_similar(self):
        a = "SELECT ?x WHERE { ?x <urn:name> \"Alice\" }"
        b = "SELECT ?x WHERE { ?x <urn:name> \"Alicia\" }"
        assert queries_similar(a, b)

    def test_different_queries_not_similar(self):
        a = "SELECT ?x WHERE { ?x <urn:name> ?n }"
        b = "CONSTRUCT { ?a <urn:b> ?c } WHERE { ?a <urn:other> ?c . ?c <urn:more> ?d }"
        assert not queries_similar(a, b)

    def test_threshold_boundary(self):
        # 4 chars changed of 40 → 10% ≤ 25%.
        a = "SELECT ?x WHERE { ?x <urn:p> \"aaaa\" } ##"
        b = "SELECT ?x WHERE { ?x <urn:p> \"bbbb\" } ##"
        assert queries_similar(a, b)


class TestStreakDetection:
    def test_refinement_chain_forms_one_streak(self):
        base = 'SELECT ?x WHERE { ?x <urn:name> "Alice%d" }'
        queries = [base % i for i in range(5)]
        streaks = find_streaks(queries, window=30)
        assert len(streaks) == 1
        assert streaks[0].length == 5

    def test_unrelated_queries_form_singletons(self):
        queries = [
            "SELECT ?x WHERE { ?x <urn:aaaaaaaaaa> ?y }",
            "CONSTRUCT { ?q <urn:w> ?e } WHERE { ?q <urn:zzzz> ?e . ?e ?r ?t }",
            "ASK { <urn:completely> <urn:different> <urn:thing> }",
        ]
        streaks = find_streaks(queries, window=30)
        assert sorted(s.length for s in streaks) == [1, 1, 1]

    def test_window_limits_matching(self):
        similar_a = 'SELECT ?x WHERE { ?x <urn:name> "Alice" }'
        similar_b = 'SELECT ?x WHERE { ?x <urn:name> "Alize" }'
        # Fillers must be dissimilar both to the Alice queries and to
        # one another (wildly different lengths and vocabulary).
        fillers = [
            "ASK { <urn:zz> <urn:yy> <urn:xx> }",
            "CONSTRUCT { ?q <urn:w> ?e } WHERE { ?q <urn:building> ?e . "
            "?e <urn:architect> ?t . ?t <urn:country> <urn:France> }",
            "DESCRIBE <urn:some/very/long/resource/identifier/123456789>",
            "SELECT (COUNT(*) AS ?total) WHERE { ?s ?p ?o } GROUP BY ?s",
            "ASK { ?m <urn:museum> ?c . ?c <urn:city> <urn:Rome> }",
        ]
        queries = [similar_a] + fillers + [similar_b]
        wide = find_streaks(queries, window=10)
        narrow = find_streaks(queries, window=2)
        assert max(s.length for s in wide) == 2
        assert max(s.length for s in narrow) == 1

    def test_interleaved_streaks(self):
        a = ['SELECT ?x WHERE { ?x <urn:aaaa> "a%d" }' % i for i in range(3)]
        b = ['ASK { ?ppppp <urn:zzzz> "zzz%d" . ?ppppp ?q ?r }' % i for i in range(3)]
        queries = [a[0], b[0], a[1], b[1], a[2], b[2]]
        streaks = find_streaks(queries, window=30)
        lengths = sorted(s.length for s in streaks)
        assert lengths == [3, 3]

    def test_streak_indices_are_positions(self):
        queries = [
            "ASK { <urn:unrelated> <urn:filler> <urn:entry> }",
            'SELECT ?x WHERE { ?x <urn:name> "Bob" }',
            'SELECT ?x WHERE { ?x <urn:name> "Bobby" }',
        ]
        streaks = find_streaks(queries, window=30)
        two = next(s for s in streaks if s.length == 2)
        assert two.indices == [1, 2]

    def test_detector_close_flushes_active(self):
        detector = StreakDetector(window=5)
        detector.push("SELECT ?x WHERE { ?x <urn:p> 1 }")
        assert detector.finished == []
        finished = detector.close()
        assert len(finished) == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            StreakDetector(window=0)


class TestHistogram:
    def test_bucket_edges(self):
        class FakeStreak:
            def __init__(self, length):
                self.length = length

        streaks = [FakeStreak(n) for n in (1, 10, 11, 30, 100, 101, 169)]
        histogram = streak_length_histogram(streaks)
        assert histogram["1-10"] == 2
        assert histogram["11-20"] == 1
        assert histogram["21-30"] == 1
        assert histogram["91-100"] == 1
        assert histogram[">100"] == 2

    def test_all_table6_buckets_present(self):
        histogram = streak_length_histogram([])
        assert list(histogram) == [
            "1-10", "11-20", "21-30", "31-40", "41-50", "51-60",
            "61-70", "71-80", "81-90", "91-100", ">100",
        ]
