"""Unit tests for SPARQL results serialization."""

import json

import pytest

from repro.engine import IndexedEngine
from repro.engine.results import (
    boolean_to_json,
    results_from_json,
    results_to_csv,
    results_to_json,
)
from repro.rdf import IRI, BlankNode, Literal, Variable


@pytest.fixture()
def solutions():
    return [
        {
            Variable("s"): IRI("urn:alice"),
            Variable("n"): Literal("Alice"),
        },
        {
            Variable("s"): BlankNode("b0"),
            Variable("n"): Literal("25", datatype="http://www.w3.org/2001/XMLSchema#integer"),
        },
        {
            Variable("s"): IRI("urn:carol"),
            # ?n unbound
        },
    ]


class TestJson:
    def test_structure(self, solutions):
        document = json.loads(results_to_json(solutions))
        assert document["head"]["vars"] == ["s", "n"]
        assert len(document["results"]["bindings"]) == 3

    def test_term_types(self, solutions):
        document = json.loads(results_to_json(solutions))
        first = document["results"]["bindings"][0]
        assert first["s"] == {"type": "uri", "value": "urn:alice"}
        assert first["n"] == {"type": "literal", "value": "Alice"}
        second = document["results"]["bindings"][1]
        assert second["s"]["type"] == "bnode"
        assert second["n"]["datatype"].endswith("integer")

    def test_language_tag(self):
        solutions = [{Variable("l"): Literal("bonjour", language="fr")}]
        document = json.loads(results_to_json(solutions))
        assert document["results"]["bindings"][0]["l"]["xml:lang"] == "fr"

    def test_unbound_omitted(self, solutions):
        document = json.loads(results_to_json(solutions))
        assert "n" not in document["results"]["bindings"][2]

    def test_round_trip(self, solutions):
        text = results_to_json(solutions)
        assert results_from_json(text) == solutions

    def test_explicit_variable_order(self, solutions):
        text = results_to_json(solutions, variables=[Variable("n"), Variable("s")])
        assert json.loads(text)["head"]["vars"] == ["n", "s"]

    def test_boolean(self):
        assert json.loads(boolean_to_json(True))["boolean"] is True
        assert json.loads(boolean_to_json(False))["boolean"] is False

    def test_typed_literal_legacy_alias(self):
        text = json.dumps(
            {
                "head": {"vars": ["x"]},
                "results": {
                    "bindings": [
                        {"x": {"type": "typed-literal", "value": "5",
                               "datatype": "urn:t"}}
                    ]
                },
            }
        )
        parsed = results_from_json(text)
        assert parsed[0][Variable("x")] == Literal("5", datatype="urn:t")


class TestCsv:
    def test_header_and_rows(self, solutions):
        text = results_to_csv(solutions)
        lines = text.strip().split("\r\n")
        assert lines[0] == "s,n"
        assert lines[1] == "urn:alice,Alice"
        assert lines[2] == "_:b0,25"
        assert lines[3] == "urn:carol,"

    def test_quoting(self):
        solutions = [{Variable("v"): Literal('has,comma "and quotes"')}]
        text = results_to_csv(solutions)
        assert '"has,comma ""and quotes"""' in text

    def test_empty_results(self):
        assert results_to_csv([]) == "\r\n"


class TestEngineIntegration:
    def test_engine_output_serializes(self, social_graph):
        engine = IndexedEngine(social_graph)
        rows = engine.evaluate(
            "SELECT ?x ?n WHERE { ?x <urn:name> ?n } ORDER BY ?n"
        )
        document = json.loads(results_to_json(rows))
        values = [b["n"]["value"] for b in document["results"]["bindings"]]
        assert values == ["Alice", "Bob", "Carol"]
        csv_text = results_to_csv(rows)
        assert "Alice" in csv_text
