"""Unit tests for AST traversal utilities."""

from repro.sparql import parse_query, walk


class TestIterPatterns:
    def test_counts_all_nodes(self):
        q = parse_query(
            "SELECT * WHERE { ?s <urn:p> ?o OPTIONAL { ?o <urn:q> ?z } "
            "FILTER(?o > 1) }"
        )
        kinds = [type(n).__name__ for n in walk.iter_patterns(q.pattern)]
        assert kinds.count("TriplePattern") == 2
        assert kinds.count("OptionalPattern") == 1
        assert kinds.count("FilterPattern") == 1

    def test_enters_exists_patterns(self):
        q = parse_query(
            "SELECT * WHERE { ?s ?p ?o FILTER EXISTS { ?s <urn:q> ?z } }"
        )
        triples = list(walk.iter_triple_patterns(q.pattern))
        assert len(triples) == 2

    def test_subquery_control(self):
        q = parse_query(
            "SELECT * WHERE { { SELECT ?x WHERE { ?x <urn:p> ?y } } }"
        )
        with_sub = list(walk.iter_triple_patterns(q.pattern, enter_subqueries=True))
        without = list(walk.iter_triple_patterns(q.pattern, enter_subqueries=False))
        assert len(with_sub) == 1
        assert len(without) == 0

    def test_none_pattern(self):
        assert list(walk.iter_patterns(None)) == []

    def test_document_order(self):
        q = parse_query("ASK { ?a <urn:p1> ?b . ?b <urn:p2> ?c . ?c <urn:p3> ?d }")
        predicates = [t.predicate.value for t in walk.iter_triple_patterns(q.pattern)]
        assert predicates == ["urn:p1", "urn:p2", "urn:p3"]


class TestVariables:
    def test_pattern_variables(self):
        q = parse_query(
            "SELECT * WHERE { ?s <urn:p> ?o FILTER(?f > 1) BIND(1 AS ?b) "
            "GRAPH ?g { ?x ?p ?y } }"
        )
        names = {v.name for v in walk.pattern_variables(q.pattern)}
        assert names == {"s", "o", "f", "b", "g", "x", "p", "y"}

    def test_subselect_exports_only_projection(self):
        q = parse_query(
            "SELECT * WHERE { { SELECT ?x WHERE { ?x <urn:p> ?hidden } } }"
        )
        names = {v.name for v in walk.pattern_variables(q.pattern)}
        assert names == {"x"}

    def test_expression_variables_in_exists(self):
        q = parse_query("ASK { ?s ?p ?o FILTER EXISTS { ?inner <urn:q> ?o } }")
        filter_node = q.pattern.elements[1]
        names = {v.name for v in walk.expression_variables(filter_node.expression)}
        assert "inner" in names

    def test_query_variables_include_projection(self):
        q = parse_query("SELECT (STRLEN(?n) AS ?l) WHERE { ?x <urn:n> ?n }")
        names = {v.name for v in walk.query_variables(q)}
        assert {"x", "n", "l"} <= names


class TestStripServices:
    def test_removes_service_block(self):
        q = parse_query(
            "SELECT * WHERE { ?s <urn:p> ?o "
            'SERVICE <urn:lang> { ?o <urn:label> ?l } }'
        )
        stripped = walk.strip_services(q)
        kinds = {type(n).__name__ for n in walk.iter_patterns(stripped.pattern)}
        assert "ServicePattern" not in kinds
        assert len(list(walk.iter_triple_patterns(stripped.pattern))) == 1

    def test_noop_without_service(self):
        q = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert walk.strip_services(q) is q

    def test_service_inside_optional(self):
        q = parse_query(
            "SELECT * WHERE { ?s ?p ?o OPTIONAL { SERVICE <urn:e> { ?a ?b ?c } } }"
        )
        stripped = walk.strip_services(q)
        kinds = [type(n).__name__ for n in walk.iter_patterns(stripped.pattern)]
        assert "ServicePattern" not in kinds
        # The OPTIONAL became empty and was dropped entirely.
        assert "OptionalPattern" not in kinds

    def test_union_branch_removal(self):
        q = parse_query(
            "SELECT * WHERE { { ?s ?p ?o } UNION { SERVICE <urn:e> { ?a ?b ?c } } }"
        )
        stripped = walk.strip_services(q)
        kinds = [type(n).__name__ for n in walk.iter_patterns(stripped.pattern)]
        assert "UnionPattern" not in kinds
        assert kinds.count("TriplePattern") == 1

    def test_iter_subqueries(self):
        q = parse_query(
            "SELECT * WHERE { { SELECT ?x WHERE { "
            "{ SELECT ?y WHERE { ?y <urn:p> ?x } } ?x <urn:q> ?z } } }"
        )
        assert len(list(walk.iter_subqueries(q))) == 2
