"""Unit tests for the refined streak metrics (§8 future work)."""

import pytest

from repro.analysis import compute_streak_metrics, find_streaks, keyword_evolution
from repro.analysis.streaks import Streak


class TestKeywordEvolution:
    def test_added_keyword(self):
        added, removed = keyword_evolution(
            "SELECT ?x WHERE { ?x <urn:p> 1 }",
            "SELECT DISTINCT ?x WHERE { ?x <urn:p> 1 } ORDER BY ?x",
        )
        assert "DISTINCT" in added and "ORDER" in added
        assert removed == ()

    def test_removed_keyword(self):
        added, removed = keyword_evolution(
            "SELECT ?x WHERE { ?x <urn:p> 1 } LIMIT 10",
            "SELECT ?x WHERE { ?x <urn:p> 1 }",
        )
        assert "LIMIT" in removed

    def test_case_insensitive(self):
        added, _ = keyword_evolution(
            "select ?x where { ?x <urn:p> 1 }",
            "select ?x where { ?x <urn:p> 1 } limit 5",
        )
        assert "LIMIT" in added

    def test_variable_names_not_keywords(self):
        added, removed = keyword_evolution(
            "SELECT ?limit WHERE { ?limit <urn:p> 1 }",
            "SELECT ?limit WHERE { ?limit <urn:p> 2 }",
        )
        # ?limit contains the word but as a variable; \b matches it —
        # both sides contain it, so no evolution either way.
        assert added == () and removed == ()


class TestMetrics:
    def make_log_and_streak(self, texts):
        streak = Streak(
            indices=list(range(len(texts))),
            tail_text=texts[-1],
            tail_stripped=texts[-1],
        )
        return texts, streak

    def test_singleton_metrics(self):
        log, streak = self.make_log_and_streak(["SELECT ?x WHERE { ?x ?p 1 }"])
        metrics = compute_streak_metrics(streak, log)
        assert metrics.length == 1
        assert metrics.span == 1
        assert metrics.density == 1.0
        assert metrics.drift == 0.0
        assert metrics.mean_step == 0.0

    def test_directed_refinement(self):
        log, streak = self.make_log_and_streak(
            [
                'SELECT ?x WHERE { ?x <urn:name> "A" }',
                'SELECT ?x WHERE { ?x <urn:name> "AB" }',
                'SELECT ?x WHERE { ?x <urn:name> "ABC" }',
                'SELECT ?x WHERE { ?x <urn:name> "ABCD" }',
            ]
        )
        metrics = compute_streak_metrics(streak, log)
        assert metrics.length == 4
        assert metrics.drift > metrics.mean_step
        assert metrics.is_directed

    def test_oscillating_refinement(self):
        log, streak = self.make_log_and_streak(
            [
                'SELECT ?x WHERE { ?x <urn:name> "AAAA" }',
                'SELECT ?x WHERE { ?x <urn:name> "BBBB" }',
                'SELECT ?x WHERE { ?x <urn:name> "AAAA" }',
            ]
        )
        metrics = compute_streak_metrics(streak, log)
        assert metrics.drift == 0.0
        assert metrics.mean_step > 0.0
        assert not metrics.is_directed

    def test_span_and_density_with_gaps(self):
        texts = [
            'SELECT ?x WHERE { ?x <urn:name> "A" }',
            "ASK { <urn:other> <urn:noise> <urn:entry> }",
            'SELECT ?x WHERE { ?x <urn:name> "B" }',
        ]
        streak = Streak(indices=[0, 2], tail_text=texts[2], tail_stripped=texts[2])
        metrics = compute_streak_metrics(streak, texts)
        assert metrics.span == 3
        assert metrics.density == pytest.approx(2 / 3)

    def test_end_to_end_with_detector(self):
        log = [
            'SELECT ?x WHERE { ?x <urn:name> "Alice" }',
            'SELECT ?x WHERE { ?x <urn:name> "Alice" } LIMIT 10',
            'SELECT DISTINCT ?x WHERE { ?x <urn:name> "Alice" } LIMIT 10',
        ]
        streaks = find_streaks(log, window=30)
        longest = max(streaks, key=lambda s: s.length)
        metrics = compute_streak_metrics(longest, log)
        assert metrics.length == 3
        assert "LIMIT" in metrics.keywords_added
        assert "DISTINCT" in metrics.keywords_added
