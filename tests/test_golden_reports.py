"""Golden-report tests: rendered study output is pinned byte-for-byte.

Small fixture logs live in ``tests/goldens/`` next to the expected
``render_study`` / :mod:`repro.reporting.tables` output.  Any change to
parsing, measurement, merge order, or table formatting shows up as a
golden diff in review instead of slipping through silently.

To regenerate after an *intentional* output change::

    PYTHONPATH=src python -m pytest tests/test_golden_reports.py --update-goldens

and commit the diff.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.parallel import build_query_logs_parallel
from repro.analysis.study import CorpusStudy, study_corpus
from repro.logs import build_query_log, dataset_name, iter_entries, read_entries
from repro.reporting import render_report, render_study
from repro.reporting.tables import render_dataset_highlights, render_table1

GOLDEN_DIR = Path(__file__).parent / "goldens"
FIXTURE_LOGS = [GOLDEN_DIR / "endpoint_a.log", GOLDEN_DIR / "endpoint_b.rq"]


def check_golden(name: str, actual: str, update: bool) -> None:
    path = GOLDEN_DIR / name
    if update:
        path.write_text(actual, encoding="utf-8")
        return
    if not path.exists():
        pytest.fail(
            f"golden file {path} is missing; run pytest --update-goldens "
            "and commit the result"
        )
    expected = path.read_text(encoding="utf-8")
    assert actual == expected, (
        f"{name} drifted from its golden copy; if the change is intentional, "
        "regenerate with pytest --update-goldens and review the diff"
    )


@pytest.fixture(scope="module")
def fixture_logs():
    return {
        dataset_name(path): build_query_log(dataset_name(path), read_entries(path))
        for path in FIXTURE_LOGS
    }


class TestGoldenReports:
    def test_full_study_report(self, fixture_logs, update_goldens):
        study = study_corpus(fixture_logs)
        check_golden(
            "study_report.txt", render_study(study, fixture_logs), update_goldens
        )

    def test_valid_corpus_report(self, fixture_logs, update_goldens):
        study = study_corpus(fixture_logs, dedup=False)
        check_golden(
            "study_report_valid.txt",
            render_study(study, fixture_logs),
            update_goldens,
        )

    def test_dataset_highlights_table(self, fixture_logs, update_goldens):
        study = study_corpus(fixture_logs)
        check_golden(
            "dataset_highlights.txt",
            render_dataset_highlights(study),
            update_goldens,
        )

    def test_table1(self, fixture_logs, update_goldens):
        check_golden("table1.txt", render_table1(fixture_logs), update_goldens)

    def test_study_snapshot_json(self, fixture_logs, update_goldens):
        """The serialized snapshot layout is pinned byte-for-byte: any
        schema drift (field rename, ordering change, encoding change)
        surfaces as a golden diff — which is the moment to bump
        SCHEMA_VERSION, not to let old snapshots rot silently."""
        study = study_corpus(fixture_logs)
        payload = json.dumps(study.to_dict(), indent=2) + "\n"
        check_golden("study_snapshot.json", payload, update_goldens)

    def test_golden_snapshot_reloads_and_rerenders(self, fixture_logs, update_goldens):
        """A snapshot from disk must reproduce the golden text report
        with no QueryLog objects around (Table 1 travels on the stats)."""
        if update_goldens:
            pytest.skip("goldens are regenerated from the direct path")
        data = json.loads(
            (GOLDEN_DIR / "study_snapshot.json").read_text(encoding="utf-8")
        )
        study = CorpusStudy.from_dict(data)
        assert study == study_corpus(fixture_logs)
        expected = (GOLDEN_DIR / "study_report.txt").read_text(encoding="utf-8")
        assert render_report(study, "text") == expected

    def test_streamed_ingestion_reproduces_golden(self, update_goldens):
        """The streamed path must hit the same golden bytes as the
        materialized one — report drift *and* streaming drift both
        fail here."""
        if update_goldens:
            pytest.skip("goldens are regenerated from the materialized path")
        logs = build_query_logs_parallel(
            {dataset_name(path): iter_entries(path) for path in FIXTURE_LOGS},
            workers=2,
            chunk_size=3,
        )
        study = study_corpus(logs, workers=2, chunk_size=3)
        expected = (GOLDEN_DIR / "study_report.txt").read_text(encoding="utf-8")
        assert render_study(study, logs) == expected
