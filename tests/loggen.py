"""Deterministic synthetic large-log generator for streaming tests.

Real endpoint logs are huge and duplicate-heavy (the paper's Valid vs
Unique gap in Table 1).  This helper writes access-log files with that
profile at whatever scale a test needs — ``n_entries`` lines drawn from
``n_unique`` distinct queries — so bounded-memory claims can be
exercised against a log that is much bigger than the chunk window,
without checking megabytes of fixtures into the repo.

Everything is seeded: the same arguments always produce the same bytes,
so streamed/materialized/serial comparisons stay reproducible.
"""

from __future__ import annotations

import gzip
import random
from pathlib import Path
from typing import Iterator, List

from repro.logs import encode_access_log_line

__all__ = ["synthetic_queries", "unique_query_pool", "write_synthetic_log"]

#: Query templates spanning the features the study measures: plain CQs,
#: DISTINCT/FILTER/OPTIONAL/UNION, a property path, an ASK, and one
#: syntactically broken entry (so Valid < Total, like real logs).
_TEMPLATES = [
    "SELECT ?x WHERE {{ ?x <urn:p{i}> ?y . ?y <urn:q{i}> ?z }}",
    "SELECT DISTINCT ?x WHERE {{ ?x <urn:p{i}> ?y FILTER(?y > {i}) }}",
    "ASK {{ ?a <urn:p{i}> ?b . ?b <urn:p{i}> ?a }}",
    "SELECT * WHERE {{ ?x <urn:p{i}> ?y OPTIONAL {{ ?y <urn:r{i}> ?z }} }}",
    "SELECT ?x WHERE {{ {{ ?x <urn:p{i}> ?y }} UNION {{ ?x <urn:q{i}> ?y }} }}",
    "SELECT ?x WHERE {{ ?x <urn:p{i}>/<urn:q{i}> ?y }} LIMIT {limit}",
    "BROKEN QUERY {i} {{",
]


def unique_query_pool(n_unique: int) -> List[str]:
    """The first *n_unique* queries of the deterministic template cycle."""
    pool = []
    for index in range(n_unique):
        template = _TEMPLATES[index % len(_TEMPLATES)]
        pool.append(template.format(i=index, limit=10 + index))
    return pool


def synthetic_queries(n_entries: int, n_unique: int, seed: int = 0) -> Iterator[str]:
    """Yield *n_entries* queries drawn (seeded-uniformly) from a pool of
    *n_unique* distinct texts.  The first ``n_unique`` entries walk the
    pool in order so every unique query is guaranteed to appear."""
    pool = unique_query_pool(n_unique)
    rng = random.Random(seed)
    for index in range(n_entries):
        if index < len(pool):
            yield pool[index]
        else:
            yield pool[rng.randrange(len(pool))]


def write_synthetic_log(
    path: Path, n_entries: int, n_unique: int = 64, seed: int = 0
) -> Path:
    """Write a synthetic access log to *path* (gzipped iff it ends ``.gz``)."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wt", encoding="utf-8") as handle:  # type: ignore[operator]
        for query in synthetic_queries(n_entries, n_unique, seed=seed):
            handle.write(encode_access_log_line(query) + "\n")
    return path
