"""Unit tests for well-designedness and pattern trees (§5.2)."""

from repro.analysis.welldesigned import (
    AlgebraEmpty,
    AlgebraJoin,
    AlgebraLeftJoin,
    AlgebraTriple,
    build_pattern_tree,
    interface_width,
    is_well_designed,
    to_binary_algebra,
    tree_is_variable_connected,
)
from repro.sparql import parse_query


def algebra(text):
    return to_binary_algebra(parse_query(text).pattern)


class TestBinaryAlgebra:
    def test_single_triple(self):
        node = algebra("ASK { ?a <urn:p> ?b }")
        assert isinstance(node, AlgebraTriple)

    def test_join_of_two(self):
        node = algebra("ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }")
        assert isinstance(node, AlgebraJoin)

    def test_optional_becomes_leftjoin(self):
        node = algebra("ASK { ?a <urn:p> ?b OPTIONAL { ?b <urn:q> ?c } }")
        assert isinstance(node, AlgebraLeftJoin)
        assert isinstance(node.left, AlgebraTriple)

    def test_leading_optional_has_empty_left(self):
        node = algebra("ASK { OPTIONAL { ?a <urn:p> ?b } }")
        assert isinstance(node, AlgebraLeftJoin)
        assert isinstance(node.left, AlgebraEmpty)

    def test_variables(self):
        node = algebra("ASK { ?a <urn:p> ?b OPTIONAL { ?b <urn:q> ?c } }")
        assert {v.name for v in node.variables()} == {"a", "b", "c"}

    def test_filter_variables_included(self):
        node = algebra("ASK { ?a <urn:p> ?b FILTER(?f > 1) }")
        assert {v.name for v in node.variables()} == {"a", "b", "f"}


class TestWellDesigned:
    def test_simple_cq_well_designed(self):
        assert is_well_designed(algebra("ASK { ?a <urn:p> ?b . ?b <urn:q> ?c }"))

    def test_optional_variable_leaking_right(self):
        # ?E appears after the OPTIONAL that introduced it.
        node = algebra(
            "ASK { ?A <urn:name> ?N OPTIONAL { ?A <urn:email> ?E } "
            "?X <urn:uses> ?E }"
        )
        assert not is_well_designed(node)

    def test_optional_variable_leaking_left(self):
        # Leading OPTIONAL introduces ?A used later: also not well designed.
        node = algebra(
            "ASK { OPTIONAL { ?A <urn:email> ?E } ?A <urn:name> ?N }"
        )
        assert not is_well_designed(node)

    def test_shared_variable_is_fine(self):
        node = algebra(
            "ASK { ?A <urn:name> ?N OPTIONAL { ?A <urn:email> ?E } }"
        )
        assert is_well_designed(node)

    def test_sibling_optionals_sharing_optional_var(self):
        # ?E occurs in two different OPTIONALs: each occurrence is
        # outside the other, so not well designed.
        node = algebra(
            "ASK { ?A <urn:name> ?N OPTIONAL { ?A <urn:a> ?E } "
            "OPTIONAL { ?A <urn:b> ?E } }"
        )
        assert not is_well_designed(node)

    def test_filter_variable_counts_as_occurrence(self):
        node = algebra(
            "ASK { ?A <urn:name> ?N OPTIONAL { ?A <urn:email> ?E } "
            "FILTER(?E != 1) }"
        )
        assert not is_well_designed(node)


class TestPatternTrees:
    def test_p1_tree_shape(self):
        # ((name) Opt (email)) Opt (webPage): root with two children.
        tree = build_pattern_tree(
            algebra(
                "ASK { ?A <urn:name> ?N OPTIONAL { ?A <urn:email> ?E } "
                "OPTIONAL { ?A <urn:webPage> ?W } }"
            )
        )
        assert len(tree.triples) == 1
        assert len(tree.children) == 2
        assert all(not child.children for child in tree.children)

    def test_p2_tree_shape(self):
        # (name) Opt ((email) Opt (webPage)): a chain of depth 3.
        tree = build_pattern_tree(
            algebra(
                "ASK { ?A <urn:name> ?N OPTIONAL { ?A <urn:email> ?E "
                "OPTIONAL { ?A <urn:webPage> ?W } } }"
            )
        )
        assert len(tree.children) == 1
        assert len(tree.children[0].children) == 1
        assert tree.size() == 3

    def test_interface_width_one(self):
        tree = build_pattern_tree(
            algebra(
                "ASK { ?A <urn:name> ?N OPTIONAL { ?A <urn:email> ?E } }"
            )
        )
        assert interface_width(tree) == 1

    def test_interface_width_two(self):
        tree = build_pattern_tree(
            algebra(
                "ASK { ?A <urn:name> ?W OPTIONAL { ?A <urn:webPage> ?W } }"
            )
        )
        assert interface_width(tree) == 2

    def test_interface_width_zero_without_opt(self):
        tree = build_pattern_tree(algebra("ASK { ?a <urn:p> ?b }"))
        assert interface_width(tree) == 0

    def test_variable_connectedness_positive(self):
        tree = build_pattern_tree(
            algebra(
                "ASK { ?A <urn:name> ?N OPTIONAL { ?A <urn:email> ?E "
                "OPTIONAL { ?E <urn:domain> ?D } } }"
            )
        )
        assert tree_is_variable_connected(tree)

    def test_variable_connectedness_negative(self):
        # ?N skips a level: root and grandchild use it, child does not.
        tree = build_pattern_tree(
            algebra(
                "ASK { ?A <urn:name> ?N OPTIONAL { ?A <urn:email> ?E "
                "OPTIONAL { ?E <urn:alias> ?N } } }"
            )
        )
        assert not tree_is_variable_connected(tree)

    def test_filters_attach_to_their_node(self):
        tree = build_pattern_tree(
            algebra(
                "ASK { ?A <urn:name> ?N FILTER(?N != 1) "
                "OPTIONAL { ?A <urn:email> ?E FILTER(?E != 2) } }"
            )
        )
        assert len(tree.filters) == 1
        assert len(tree.children[0].filters) == 1
