"""Unit tests for the table/figure renderers."""

from repro.analysis.study import study_corpus
from repro.engine import QueryRunResult, WorkloadRunResult
from repro.logs import build_query_log
from repro.reporting import (
    render_figure1,
    render_figure3,
    render_figure5,
    render_fragments,
    render_hypertree,
    render_projection,
    render_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
)


def sample_study():
    queries = [
        "SELECT ?s WHERE { ?s <urn:p> ?o }",
        "ASK { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a }",
        "SELECT * WHERE { ?s <urn:p>* ?o }",
        "ASK { ?s !<urn:x> ?o }",
        "DESCRIBE <urn:thing>",
    ]
    logs = {"sample": build_query_log("sample", queries)}
    return logs, study_corpus(logs)


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table("T", ("a", "bb"), [("x", "1"), ("yyyy", "22")])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_table1(self):
        logs, _ = sample_study()
        text = render_table1(logs)
        assert "Table 1" in text
        assert "sample" in text
        assert "Total" in text

    def test_table2(self):
        _, study = sample_study()
        text = render_table2(study)
        assert "Select" in text and "Ask" in text
        assert "%" in text

    def test_figure1(self):
        _, study = sample_study()
        text = render_figure1(study)
        assert "11+" in text
        assert "Avg#T" in text
        assert "S/A" in text

    def test_table3(self):
        _, study = sample_study()
        text = render_table3(study)
        assert "CPF subtotal" in text
        assert "CPF+O" in text
        assert "other features" in text

    def test_projection(self):
        _, study = sample_study()
        text = render_projection(study)
        assert "projection bounds" in text

    def test_fragments(self):
        _, study = sample_study()
        text = render_fragments(study)
        assert "AOF patterns" in text
        assert "CQOF" in text

    def test_figure5(self):
        _, study = sample_study()
        text = render_figure5(study)
        assert "11+" in text

    def test_table4(self):
        _, study = sample_study()
        text = render_table4(study)
        assert "single edge" in text
        assert "flower set" in text
        assert "treewidth <= 2" in text
        assert "constants" in text

    def test_table5(self):
        _, study = sample_study()
        text = render_table5(study)
        assert "a*" in text
        assert "Ctract" in text

    def test_hypertree(self):
        _, study = sample_study()
        text = render_hypertree(study)
        assert "Hypertree" in text or "hypertree" in text

    def test_table6(self):
        histograms = {
            "DBP'14": {"1-10": 5, "11-20": 1},
            "DBP'15": {"1-10": 7, "11-20": 0},
        }
        text = render_table6(histograms)
        assert "DBP'14" in text and "1-10" in text

    def test_figure3(self):
        runs = (
            QueryRunResult(elapsed=0.01, timed_out=False),
            QueryRunResult(elapsed=0.3, timed_out=True),
        )
        results = [
            WorkloadRunResult(engine="BG", workload="chain-3", runs=runs),
            WorkloadRunResult(engine="PG", workload="cycle-3", runs=runs),
        ]
        text = render_figure3(results)
        assert "chain-3 BG" in text
        assert "1/2 t/o" in text

    def test_small_percentage_formatting(self):
        _, study = sample_study()
        # Smoke-check the <0.01% path via render_table2 on tiny counts.
        assert "%" in render_table2(study)

    def test_dataset_highlights(self):
        from repro.reporting import render_dataset_highlights

        _, study = sample_study()
        text = render_dataset_highlights(study)
        assert "sample" in text
        assert "Distinct" in text and "Graph" in text
