"""Tests for the pluggable reporter registry (repro.reporting.reporters)."""

import csv
import io
import json

import pytest

from repro.analysis.study import CorpusStudy, study_corpus
from repro.logs import build_query_log
from repro.reporting import (
    get_reporter,
    register_reporter,
    render_report,
    render_study,
    reporter_names,
)
from repro.reporting import reporters as reporters_module

TEXTS = [
    "SELECT ?x WHERE { ?x <urn:p> ?y }",
    "ASK { ?a <urn:q> ?b . ?b <urn:r> ?a }",
    "SELECT DISTINCT ?s WHERE { ?s <urn:p> ?o . FILTER(?o > 3) }",
    "ASK { ?s <urn:p>+ ?o }",
]


@pytest.fixture(scope="module")
def logs():
    return {
        "alpha": build_query_log("alpha", TEXTS),
        "beta": build_query_log("beta", TEXTS[:2]),
    }


@pytest.fixture(scope="module")
def study(logs):
    return study_corpus(logs)


class TestRegistry:
    def test_builtin_formats_registered(self):
        assert reporter_names() == (
            "text", "json", "jsonl", "csv", "markdown", "diff",
        )

    def test_unknown_format_raises_with_available_list(self):
        with pytest.raises(ValueError, match="available: text"):
            get_reporter("yaml")

    def test_duplicate_registration_is_loud(self):
        with pytest.raises(ValueError, match="already registered"):
            register_reporter(reporters_module.TextReporter())

    def test_duplicate_registration_error_is_typed(self):
        # The collision error is part of the library hierarchy (so
        # `except ReproError` pipelines catch it) while remaining a
        # ValueError for pre-typed callers.
        from repro.exceptions import ReporterRegistrationError, ReproError

        with pytest.raises(ReporterRegistrationError, match="'text'"):
            register_reporter(reporters_module.TextReporter())
        assert issubclass(ReporterRegistrationError, ReproError)
        assert issubclass(ReporterRegistrationError, ValueError)

    def test_custom_reporter_plugs_in(self, study):
        class TallyReporter:
            name = "tally"
            description = "just the query count"

            def render(self, study):
                return f"{study.query_count}\n"

        register_reporter(TallyReporter())
        try:
            assert render_report(study, "tally") == f"{study.query_count}\n"
            assert "tally" in reporter_names()
        finally:
            del reporters_module._REGISTRY["tally"]

    def test_replace_requires_opt_in(self, study):
        class Silent:
            name = "text"
            description = "override"

            def render(self, study):
                return "quiet\n"

        original = get_reporter("text")
        register_reporter(Silent(), replace=True)
        try:
            assert render_report(study, "text") == "quiet\n"
        finally:
            register_reporter(original, replace=True)


class TestFormats:
    def test_text_matches_legacy_render_study(self, study, logs):
        # The contract that keeps goldens stable across the redesign.
        assert render_report(study, "text") == render_study(study, logs)

    def test_every_format_renders_nonempty(self, study):
        for name in reporter_names():
            output = render_report(study, name)
            assert output
            if name != "text":  # text keeps render_study's no-trailing-\n shape
                assert output.endswith("\n")

    def test_json_is_a_loadable_snapshot(self, study):
        data = json.loads(render_report(study, "json"))
        assert CorpusStudy.from_dict(data) == study

    def test_jsonl_one_line_per_dataset(self, study):
        lines = render_report(study, "jsonl").splitlines()
        assert len(lines) == len(study.datasets)
        records = [json.loads(line) for line in lines]
        assert [record["dataset"] for record in records] == list(study.datasets)
        assert records[0]["total"] == study.datasets["alpha"].total
        assert "average_triples" in records[0]

    def test_csv_is_parseable_long_format(self, study):
        output = render_report(study, "csv")
        rows = list(csv.reader(io.StringIO(output)))
        assert rows[0] == ["section", "row", "column", "value"]
        sections = {row[0] for row in rows[1:]}
        assert {"table1", "table2", "table3", "table5"} <= sections
        # Table 1 totals present and numeric.
        total_row = next(
            row for row in rows[1:]
            if row[0] == "table1" and row[1] == "Total" and row[2] == "total"
        )
        assert int(total_row[3]) == sum(s.total for s in study.datasets.values())

    def test_markdown_has_pipe_tables(self, study):
        output = render_report(study, "markdown")
        assert "## Table 2: Keyword count in queries" in output
        assert "| Element | Absolute | Relative |" in output
        assert output.count("| --- |") >= 5

    def test_markdown_covers_every_text_report_section(self, study):
        # Markdown must not silently drop measurements the text and
        # csv reporters carry.
        output = render_report(study, "markdown")
        for heading in (
            "## Table 1", "## Table 2", "## Figure 1", "## Table 3",
            "## Sec 4.4", "## Sec 5.2", "## Figure 5", "## Table 4 (CQ)",
            "## Table 4 (CQF)", "## Table 4 (CQOF)", "## Sec 6.1",
            "## Sec 6.2", "## Table 5",
        ):
            assert heading in output, f"markdown report lacks {heading}"
        assert "interface width > 1" in output

    def test_reporters_are_pure(self, study):
        before = study.to_dict()
        for name in reporter_names():
            first = render_report(study, name)
            assert render_report(study, name) == first
        assert study.to_dict() == before
