"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main, read_query_file
from repro.logs import encode_access_log_line


@pytest.fixture()
def query_file(tmp_path):
    path = tmp_path / "queries.rq"
    path.write_text(
        "SELECT ?x WHERE { ?x <urn:p> ?y }\n"
        "ASK { ?a <urn:q> ?b . ?b <urn:r> ?a }\n"
        "BROKEN {\n"
    )
    return path


class TestReadQueryFile:
    def test_line_format(self, query_file):
        queries = read_query_file(query_file)
        assert len(queries) == 3

    def test_escaped_newlines(self, tmp_path):
        path = tmp_path / "q.rq"
        path.write_text("SELECT ?x WHERE {\\n ?x <urn:p> ?y\\n}\n")
        queries = read_query_file(path)
        assert len(queries) == 1
        assert "\n" in queries[0]

    def test_blank_line_blocks(self, tmp_path):
        path = tmp_path / "q.rq"
        path.write_text(
            "SELECT ?x WHERE {\n  ?x <urn:p> ?y\n}\n"
            "\n"
            "ASK { ?s ?p ?o }\n"
        )
        queries = read_query_file(path)
        assert len(queries) == 2
        assert queries[0].startswith("SELECT")

    def test_access_log_format(self, tmp_path):
        path = tmp_path / "access.log"
        lines = [
            encode_access_log_line("ASK { ?s ?p ?o }"),
            encode_access_log_line("SELECT * WHERE { ?s ?p ?o }"),
        ]
        path.write_text("\n".join(lines) + "\n")
        queries = read_query_file(path)
        assert queries == ["ASK { ?s ?p ?o }", "SELECT * WHERE { ?s ?p ?o }"]

    def test_gzip_input(self, tmp_path):
        import gzip

        path = tmp_path / "access.log.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(encode_access_log_line("ASK { ?s ?p ?o }") + "\n")
        assert read_query_file(path) == ["ASK { ?s ?p ?o }"]


class TestCommands:
    def test_analyze(self, query_file, capsys):
        exit_code = main(["analyze", str(query_file)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 1" in output
        assert "Table 2" in output
        assert "queries" in output  # table1 row present

    def test_analyze_keep_duplicates(self, query_file, capsys):
        assert main(["analyze", "--keep-duplicates", str(query_file)]) == 0

    def test_analyze_workers_output_identical(self, query_file, capsys):
        assert main(["analyze", str(query_file)]) == 0
        serial = capsys.readouterr().out
        assert main(["analyze", "--workers", "2", str(query_file)]) == 0
        assert capsys.readouterr().out == serial

    def test_analyze_chunk_size(self, query_file, capsys):
        assert main(["analyze", str(query_file)]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["analyze", "--workers", "2", "--chunk-size", "1", str(query_file)])
            == 0
        )
        assert capsys.readouterr().out == serial

    def test_corpus(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        exit_code = main(
            ["corpus", "--scale", "5e-7", "--out", str(out_dir)]
        )
        assert exit_code == 0
        files = list(out_dir.glob("*.log"))
        assert len(files) == 13
        # Generated files are themselves parseable by `analyze`.
        sample = next(f for f in files if f.stat().st_size > 0)
        assert main(["analyze", str(sample)]) == 0

    def test_figure3(self, capsys):
        exit_code = main(
            [
                "figure3", "--nodes", "150", "--timeout", "2.0",
                "--queries", "2", "--lengths", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "chain-W3 BG" in output
        assert "cycle-W3 PG" in output

    def test_analyze_stream_output_identical(self, query_file, capsys):
        assert main(["analyze", str(query_file)]) == 0
        serial = capsys.readouterr().out
        assert main(["analyze", "--stream", str(query_file)]) == 0
        assert capsys.readouterr().out == serial
        assert (
            main(
                [
                    "analyze", "--stream", "--workers", "2",
                    "--chunk-size", "1", str(query_file),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == serial

    def test_analyze_directory_input(self, tmp_path, capsys):
        log_dir = tmp_path / "logs"
        log_dir.mkdir()
        (log_dir / "a.log").write_text(
            encode_access_log_line("ASK { ?s ?p ?o }") + "\n"
        )
        (log_dir / "b.rq").write_text("SELECT * WHERE { ?a ?b ?c }\n")
        assert main(["analyze", str(log_dir)]) == 0
        serial = capsys.readouterr().out
        assert "logs" in serial
        assert main(["analyze", "--stream", str(log_dir)]) == 0
        assert capsys.readouterr().out == serial

    def test_streaks_synthetic(self, capsys):
        exit_code = main(["streaks", "--synthetic", "60"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 6" in output

    def test_streaks_file(self, tmp_path, capsys):
        path = tmp_path / "day.log"
        path.write_text(
            'SELECT ?x WHERE { ?x <urn:name> "A" }\n'
            'SELECT ?x WHERE { ?x <urn:name> "B" }\n'
        )
        assert main(["streaks", str(path)]) == 0
        assert "longest streak" in capsys.readouterr().out

    def test_streaks_requires_input(self, capsys):
        assert main(["streaks"]) == 2

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["nope"])


class TestArgumentValidation:
    """`--workers <= 0` and `--chunk-size <= 0` must die with a clear
    argparse error (exit code 2), not a crash or a silent hang."""

    @pytest.mark.parametrize("value", ["0", "-1", "-4"])
    def test_rejects_nonpositive_workers(self, query_file, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--workers", value, str(query_file)])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_rejects_nonpositive_chunk_size(self, query_file, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--chunk-size", value, str(query_file)])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_rejects_non_integer_workers(self, query_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--workers", "two", str(query_file)])
        assert excinfo.value.code == 2

    def test_rejects_colliding_dataset_names(self, tmp_path, capsys):
        # day.log and day.rq both map to dataset "day"; a corpora dict
        # would silently drop one file's entries from the report.
        first = tmp_path / "day.log"
        first.write_text("ASK { ?s ?p ?o }\n")
        second = tmp_path / "day.rq"
        second.write_text("SELECT * WHERE { ?a ?b ?c }\n")
        assert main(["analyze", str(first), str(second)]) == 2
        assert "dataset name" in capsys.readouterr().err
