"""Unit tests for the command-line interface."""

import json

import pytest

from repro.analysis.snapshot import SCHEMA_VERSION, load_study
from repro.cli import main
from repro.logs import encode_access_log_line, read_entries


@pytest.fixture()
def query_file(tmp_path):
    path = tmp_path / "queries.rq"
    path.write_text(
        "SELECT ?x WHERE { ?x <urn:p> ?y }\n"
        "ASK { ?a <urn:q> ?b . ?b <urn:r> ?a }\n"
        "BROKEN {\n"
    )
    return path


class TestReadEntries:
    def test_line_format(self, query_file):
        queries = read_entries(query_file)
        assert len(queries) == 3

    def test_escaped_newlines(self, tmp_path):
        path = tmp_path / "q.rq"
        path.write_text("SELECT ?x WHERE {\\n ?x <urn:p> ?y\\n}\n")
        queries = read_entries(path)
        assert len(queries) == 1
        assert "\n" in queries[0]

    def test_blank_line_blocks(self, tmp_path):
        path = tmp_path / "q.rq"
        path.write_text(
            "SELECT ?x WHERE {\n  ?x <urn:p> ?y\n}\n"
            "\n"
            "ASK { ?s ?p ?o }\n"
        )
        queries = read_entries(path)
        assert len(queries) == 2
        assert queries[0].startswith("SELECT")

    def test_access_log_format(self, tmp_path):
        path = tmp_path / "access.log"
        lines = [
            encode_access_log_line("ASK { ?s ?p ?o }"),
            encode_access_log_line("SELECT * WHERE { ?s ?p ?o }"),
        ]
        path.write_text("\n".join(lines) + "\n")
        queries = read_entries(path)
        assert queries == ["ASK { ?s ?p ?o }", "SELECT * WHERE { ?s ?p ?o }"]

    def test_gzip_input(self, tmp_path):
        import gzip

        path = tmp_path / "access.log.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(encode_access_log_line("ASK { ?s ?p ?o }") + "\n")
        assert read_entries(path) == ["ASK { ?s ?p ?o }"]


class TestCommands:
    def test_analyze(self, query_file, capsys):
        exit_code = main(["analyze", str(query_file)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 1" in output
        assert "Table 2" in output
        assert "queries" in output  # table1 row present

    def test_analyze_keep_duplicates(self, query_file, capsys):
        assert main(["analyze", "--keep-duplicates", str(query_file)]) == 0

    def test_analyze_workers_output_identical(self, query_file, capsys):
        assert main(["analyze", str(query_file)]) == 0
        serial = capsys.readouterr().out
        assert main(["analyze", "--workers", "2", str(query_file)]) == 0
        assert capsys.readouterr().out == serial

    def test_analyze_chunk_size(self, query_file, capsys):
        assert main(["analyze", str(query_file)]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["analyze", "--workers", "2", "--chunk-size", "1", str(query_file)])
            == 0
        )
        assert capsys.readouterr().out == serial

    def test_corpus(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        exit_code = main(
            ["corpus", "--scale", "5e-7", "--out", str(out_dir)]
        )
        assert exit_code == 0
        files = list(out_dir.glob("*.log"))
        assert len(files) == 13
        # Generated files are themselves parseable by `analyze`.
        sample = next(f for f in files if f.stat().st_size > 0)
        assert main(["analyze", str(sample)]) == 0

    def test_figure3(self, capsys):
        exit_code = main(
            [
                "figure3", "--nodes", "150", "--timeout", "2.0",
                "--queries", "2", "--lengths", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "chain-W3 BG" in output
        assert "cycle-W3 PG" in output

    def test_analyze_stream_output_identical(self, query_file, capsys):
        assert main(["analyze", str(query_file)]) == 0
        serial = capsys.readouterr().out
        assert main(["analyze", "--stream", str(query_file)]) == 0
        assert capsys.readouterr().out == serial
        assert (
            main(
                [
                    "analyze", "--stream", "--workers", "2",
                    "--chunk-size", "1", str(query_file),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == serial

    def test_analyze_directory_input(self, tmp_path, capsys):
        log_dir = tmp_path / "logs"
        log_dir.mkdir()
        (log_dir / "a.log").write_text(
            encode_access_log_line("ASK { ?s ?p ?o }") + "\n"
        )
        (log_dir / "b.rq").write_text("SELECT * WHERE { ?a ?b ?c }\n")
        assert main(["analyze", str(log_dir)]) == 0
        serial = capsys.readouterr().out
        assert "logs" in serial
        assert main(["analyze", "--stream", str(log_dir)]) == 0
        assert capsys.readouterr().out == serial

    def test_streaks_synthetic(self, capsys):
        exit_code = main(["streaks", "--synthetic", "60"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 6" in output

    def test_streaks_file(self, tmp_path, capsys):
        path = tmp_path / "day.log"
        path.write_text(
            'SELECT ?x WHERE { ?x <urn:name> "A" }\n'
            'SELECT ?x WHERE { ?x <urn:name> "B" }\n'
        )
        assert main(["streaks", str(path)]) == 0
        assert "longest streak" in capsys.readouterr().out

    def test_streaks_requires_input(self, capsys):
        assert main(["streaks"]) == 2

    def test_streaks_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["streaks", str(tmp_path / "missing.log")]) == 2
        assert "streaks:" in capsys.readouterr().err

    def test_streaks_sharded_matches_serial(self, capsys):
        assert main(["streaks", "--synthetic", "80"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                [
                    "streaks", "--synthetic", "80",
                    "--workers", "2", "--chunk-size", "7",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == serial

    def test_analyze_metrics_streaks(self, tmp_path, capsys):
        path = tmp_path / "day.log"
        path.write_text(
            'SELECT ?x WHERE { ?x <urn:name> "A" }\n'
            'SELECT ?x WHERE { ?x <urn:name> "B" }\n'
        )
        assert main(["analyze", "--metrics", "streaks", str(path)]) == 0
        output = capsys.readouterr().out
        assert "Table 6" in output
        assert "longest streak: 2 queries" in output
        # Default runs must not pay for (or print) streak detection.
        assert main(["analyze", str(path)]) == 0
        assert "Table 6" not in capsys.readouterr().out

    def test_analyze_streak_window_threads_through(self, tmp_path, capsys):
        path = tmp_path / "day.log"
        similar = 'SELECT ?x WHERE {{ ?x <urn:name> "A{}" }}'
        fillers = [
            "ASK { <urn:completely> <urn:unrelated> <urn:thing> }",
            "DESCRIBE <urn:some/very/long/resource/identifier/123456789>",
        ]
        path.write_text(
            "\n".join([similar.format(1), *fillers, similar.format(2)]) + "\n"
        )
        assert (
            main(
                [
                    "analyze", "--metrics", "streaks",
                    "--streak-window", "2", str(path),
                ]
            )
            == 0
        )
        narrow = capsys.readouterr().out
        assert "longest streak: 1 queries" in narrow  # gap 3 > window 2
        assert main(["analyze", "--metrics", "streaks", str(path)]) == 0
        assert "longest streak: 2 queries" in capsys.readouterr().out

    def test_streaks_snapshot_reloads_table6(self, tmp_path, capsys):
        path = tmp_path / "day.log"
        path.write_text(
            'SELECT ?x WHERE { ?x <urn:name> "A" }\n'
            'SELECT ?x WHERE { ?x <urn:name> "B" }\n'
        )
        snapshot = tmp_path / "study.json"
        assert (
            main(
                [
                    "analyze", "--metrics", "streaks",
                    "--save-study", str(snapshot), str(path),
                ]
            )
            == 0
        )
        direct = capsys.readouterr().out
        assert main(["report", str(snapshot)]) == 0
        assert capsys.readouterr().out == direct

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["nope"])


class TestArgumentValidation:
    """`--workers <= 0` and `--chunk-size <= 0` must die with a clear
    argparse error (exit code 2), not a crash or a silent hang."""

    @pytest.mark.parametrize("value", ["0", "-1", "-4"])
    def test_rejects_nonpositive_workers(self, query_file, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--workers", value, str(query_file)])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_rejects_nonpositive_chunk_size(self, query_file, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--chunk-size", value, str(query_file)])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_rejects_non_integer_workers(self, query_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--workers", "two", str(query_file)])
        assert excinfo.value.code == 2

    def test_rejects_colliding_dataset_names(self, tmp_path, capsys):
        # day.log and day.rq both map to dataset "day"; a corpora dict
        # would silently drop one file's entries from the report.
        first = tmp_path / "day.log"
        first.write_text("ASK { ?s ?p ?o }\n")
        second = tmp_path / "day.rq"
        second.write_text("SELECT * WHERE { ?a ?b ?c }\n")
        assert main(["analyze", str(first), str(second)]) == 2
        assert "dataset name" in capsys.readouterr().err


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        # Semantic-looking version, from package metadata or the source tree.
        assert out.split()[1][0].isdigit()


class TestSnapshotVerbs:
    """`analyze --save-study`, `merge`, and `report` round trips."""

    @pytest.fixture()
    def two_files(self, tmp_path):
        first = tmp_path / "alpha.rq"
        first.write_text(
            "SELECT ?x WHERE { ?x <urn:p> ?y }\n"
            "ASK { ?a <urn:q> ?b . ?b <urn:r> ?a }\n"
        )
        second = tmp_path / "beta.rq"
        second.write_text(
            "SELECT DISTINCT ?s WHERE { ?s <urn:p> ?o . FILTER(?o > 3) }\n"
            "ASK { ?s <urn:p>+ ?o }\n"
        )
        return first, second

    def test_save_study_writes_loadable_snapshot(self, two_files, tmp_path, capsys):
        first, _ = two_files
        out = tmp_path / "study.json"
        assert main(["analyze", str(first), "--save-study", str(out)]) == 0
        capsys.readouterr()
        study = load_study(out)
        assert study.query_count == 2
        assert "alpha" in study.datasets

    def test_report_text_matches_analyze_output(self, two_files, tmp_path, capsys):
        first, second = two_files
        assert main(["analyze", str(first), str(second)]) == 0
        direct = capsys.readouterr().out
        out = tmp_path / "study.json"
        assert main(
            ["analyze", str(first), str(second), "--save-study", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        assert capsys.readouterr().out == direct

    def test_merge_equals_direct_multi_file_run(self, two_files, tmp_path, capsys):
        first, second = two_files
        assert main(["analyze", str(first), str(second)]) == 0
        direct = capsys.readouterr().out
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["analyze", str(first), "--save-study", str(a)]) == 0
        assert main(["analyze", str(second), "--save-study", str(b)]) == 0
        merged = tmp_path / "merged.json"
        assert main(["merge", str(a), str(b), "--out", str(merged)]) == 0
        capsys.readouterr()
        assert main(["report", str(merged)]) == 0
        assert capsys.readouterr().out == direct

    def test_merge_without_out_prints_snapshot_json(self, two_files, tmp_path, capsys):
        first, _ = two_files
        a = tmp_path / "a.json"
        assert main(["analyze", str(first), "--save-study", str(a)]) == 0
        capsys.readouterr()
        assert main(["merge", str(a)]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["schema"] == SCHEMA_VERSION

    def test_analyze_format_json_is_loadable(self, two_files, capsys):
        first, _ = two_files
        assert main(["analyze", str(first), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "repro.corpus_study"

    @pytest.mark.parametrize("fmt", ["text", "json", "jsonl", "csv", "markdown"])
    def test_report_every_registered_format(self, two_files, tmp_path, capsys, fmt):
        first, _ = two_files
        out = tmp_path / "study.json"
        assert main(["analyze", str(first), "--save-study", str(out)]) == 0
        capsys.readouterr()
        assert main(["report", str(out), "--format", fmt]) == 0
        assert capsys.readouterr().out


class TestSnapshotErrorPaths:
    """Missing/corrupt/mis-versioned snapshots and unknown formats must
    exit 2 with a clear message, never crash with a traceback."""

    @pytest.fixture()
    def snapshot(self, tmp_path, capsys):
        source = tmp_path / "q.rq"
        source.write_text("ASK { ?s ?p ?o }\n")
        path = tmp_path / "study.json"
        assert main(["analyze", str(source), "--save-study", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert "report:" in capsys.readouterr().err

    def test_report_corrupt_json(self, tmp_path, capsys):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(["report", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_report_schema_version_mismatch(self, snapshot, tmp_path, capsys):
        data = json.loads(snapshot.read_text())
        data["schema"] = SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        assert main(["report", str(path)]) == 2
        assert "schema version" in capsys.readouterr().err

    def test_report_wrong_kind(self, snapshot, tmp_path, capsys):
        data = json.loads(snapshot.read_text())
        data["kind"] = "something.else"
        path = tmp_path / "kind.json"
        path.write_text(json.dumps(data))
        assert main(["report", str(path)]) == 2
        assert "kind" in capsys.readouterr().err

    def test_report_missing_field(self, snapshot, tmp_path, capsys):
        data = json.loads(snapshot.read_text())
        del data["keyword_counts"]
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(data))
        assert main(["report", str(path)]) == 2
        assert "keyword_counts" in capsys.readouterr().err

    def test_report_unhashable_counter_key(self, snapshot, tmp_path, capsys):
        # A corrupted pair list with a non-scalar key must be a clean
        # snapshot error, not an unhashable-key TypeError traceback.
        data = json.loads(snapshot.read_text())
        data["keyword_counts"] = [[[1, 2], 3]]
        path = tmp_path / "unhashable.json"
        path.write_text(json.dumps(data))
        assert main(["report", str(path)]) == 2
        assert "not a string or int" in capsys.readouterr().err

    def test_analyze_save_study_unwritable_path(self, tmp_path, capsys):
        source = tmp_path / "q.rq"
        source.write_text("ASK { ?s ?p ?o }\n")
        target = tmp_path / "no-such-dir" / "s.json"
        assert main(["analyze", str(source), "--save-study", str(target)]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_merge_out_unwritable_path(self, snapshot, tmp_path, capsys):
        target = tmp_path / "no-such-dir" / "m.json"
        assert main(["merge", str(snapshot), "--out", str(target)]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_analyze_missing_input_file(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.log")]) == 2
        assert "analyze:" in capsys.readouterr().err

    def test_report_unknown_format(self, snapshot, capsys):
        assert main(["report", str(snapshot), "--format", "yaml"]) == 2
        err = capsys.readouterr().err
        assert "unknown report format" in err
        # The message lists what IS available, so the fix is self-evident.
        assert "available:" in err
        assert "text" in err and "json" in err
        assert "text" in err  # the message lists what IS available

    def test_analyze_unknown_format(self, tmp_path, capsys):
        source = tmp_path / "q.rq"
        source.write_text("ASK { ?s ?p ?o }\n")
        assert main(["analyze", str(source), "--format", "yaml"]) == 2
        err = capsys.readouterr().err
        assert "unknown report format" in err
        assert "available:" in err

    def test_merge_missing_file(self, snapshot, tmp_path, capsys):
        assert main(["merge", str(snapshot), str(tmp_path / "gone.json")]) == 2
        assert "merge:" in capsys.readouterr().err

    def test_merge_schema_mismatch_names_offending_file(
        self, snapshot, tmp_path, capsys
    ):
        # With a dozen shards on the command line, "schema version 99"
        # alone is not actionable: the message must name the file.
        data = json.loads(snapshot.read_text())
        data["schema"] = 99
        future = tmp_path / "future-shard.json"
        future.write_text(json.dumps(data))
        assert main(["merge", str(snapshot), str(future)]) == 2
        err = capsys.readouterr().err
        assert "future-shard.json" in err
        assert "schema version 99" in err
        assert "Traceback" not in err

    def test_merge_parameter_clash_names_offending_file(
        self, tmp_path, capsys
    ):
        source = tmp_path / "q.rq"
        source.write_text("ASK { ?s ?p ?o }\n" * 3)
        narrow = tmp_path / "narrow.json"
        wide = tmp_path / "wide-window.json"
        base = ["analyze", str(source), "--metrics", "streaks"]
        assert main(base + ["--streak-window", "5", "--save-study", str(narrow)]) == 0
        assert main(base + ["--streak-window", "9", "--save-study", str(wide)]) == 0
        capsys.readouterr()
        assert main(["merge", str(narrow), str(wide)]) == 2
        err = capsys.readouterr().err
        assert "wide-window.json" in err
        assert "Traceback" not in err

    def test_merge_rejects_mixed_corpus_flavours(self, tmp_path, capsys):
        source = tmp_path / "q.rq"
        source.write_text("ASK { ?s ?p ?o }\nASK { ?s ?p ?o }\n")
        unique = tmp_path / "unique.json"
        valid = tmp_path / "valid.json"
        assert main(["analyze", str(source), "--save-study", str(unique)]) == 0
        assert main(
            [
                "analyze", "--keep-duplicates", str(source),
                "--save-study", str(valid),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["merge", str(unique), str(valid)]) == 2
        assert "cannot merge" in capsys.readouterr().err
