"""Bounded-memory regression test for the streaming ingestion path.

The PR 2 invariant: peak ingestion memory is a fixed multiple of the
chunk window — O(workers × chunk_size) plus the deduplicated unique
state — never of the log size.  This test *exercises* the claim: it
generates a ~100k-entry access log (~19 MB, far larger than the chunk
window), streams it through ``build_query_logs_parallel`` with
``tracemalloc`` armed, and fails if peak traced allocation approaches
what materializing the raw stream costs (~11 MiB measured; streaming
peaks ~1.4 MiB).

Runs single-worker so every allocation stays in the traced process.
Marked ``slow``: the decode of 100k access-log lines would dominate
the CI matrix job, which excludes the marker; the bench-smoke job runs
it once.  (A plain local ``pytest -x -q`` still includes it.)
"""

import tracemalloc

import pytest

from loggen import write_synthetic_log
from repro.analysis.parallel import build_query_logs_parallel
from repro.logs import iter_entries

N_ENTRIES = 100_000
N_UNIQUE = 64  # 9 of the 64 pool queries are deliberately invalid
EXPECTED_UNIQUE = 55
CHUNK_SIZE = 1024

#: Allowed peak = this multiple of one chunk's raw text bytes.  Streaming
#: measures ~7× (chunk buffers + per-chunk parse cache + accumulators);
#: materializing the raw log measures ~60×.  24× catches any return to
#: whole-stream buffering while leaving slack for allocator noise.
CHUNK_BUDGET_MULTIPLIER = 24


@pytest.mark.slow
def test_streaming_peak_memory_bounded_by_chunk_size(tmp_path):
    path = tmp_path / "big.log"
    write_synthetic_log(path, n_entries=N_ENTRIES, n_unique=N_UNIQUE, seed=3)
    file_bytes = path.stat().st_size
    avg_entry_bytes = file_bytes / N_ENTRIES

    tracemalloc.start()
    try:
        logs = build_query_logs_parallel(
            {"big": iter_entries(path)}, workers=1, chunk_size=CHUNK_SIZE
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    # The stream really went through — duplicates merged, junk dropped.
    log = logs["big"]
    assert log.total == N_ENTRIES
    assert log.unique == EXPECTED_UNIQUE
    assert log.valid > log.unique  # duplicate-heavy by construction

    budget = CHUNK_BUDGET_MULTIPLIER * CHUNK_SIZE * avg_entry_bytes
    assert peak < budget, (
        f"streaming ingestion peaked at {peak / 1024:.0f} KiB, over the "
        f"{budget / 1024:.0f} KiB chunk budget "
        f"({CHUNK_BUDGET_MULTIPLIER}x a {CHUNK_SIZE}-entry chunk)"
    )
    # And nowhere near materializing the raw stream.
    assert peak < file_bytes / 3, (
        f"streaming ingestion peaked at {peak / 1024:.0f} KiB for a "
        f"{file_bytes / 1024:.0f} KiB log — memory is scaling with log "
        "size, not chunk size"
    )
